"""Tests for the topology model and proximity-aware engines."""

from __future__ import annotations

import random

import pytest

from repro.core.exchange import ExchangeEngine
from repro.core.search import SearchEngine
from repro.sim.builder import GridBuilder
from repro.sim.topology import (
    ProximityExchangeEngine,
    ProximitySearchEngine,
    Topology,
)
from tests.conftest import assert_routing_consistent, build_grid


class TestTopology:
    def test_coordinates_stable(self):
        topo = Topology(random.Random(1))
        assert topo.coordinates(5) == topo.coordinates(5)

    def test_coordinates_in_unit_square(self):
        topo = Topology(random.Random(2))
        for address in range(50):
            x, y = topo.coordinates(address)
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_latency_metric_properties(self):
        topo = Topology(random.Random(3))
        topo.place_all(list(range(10)))
        for a in range(10):
            assert topo.latency(a, a) == 0.0
            for b in range(10):
                assert topo.latency(a, b) == topo.latency(b, a)
                assert topo.latency(a, b) <= 2**0.5 + 1e-12

    def test_triangle_inequality(self):
        topo = Topology(random.Random(4))
        topo.place_all([0, 1, 2])
        assert topo.latency(0, 2) <= topo.latency(0, 1) + topo.latency(1, 2) + 1e-12

    def test_nearest_orders_by_distance(self):
        topo = Topology(random.Random(5))
        topo.place_all(list(range(20)))
        nearest = topo.nearest(0, list(range(1, 20)), 5)
        assert len(nearest) == 5
        distances = [topo.latency(0, a) for a in nearest]
        assert distances == sorted(distances)
        all_sorted = topo.nearest(0, list(range(1, 20)), 19)
        assert nearest == all_sorted[:5]

    def test_nearest_validates(self):
        topo = Topology(random.Random(6))
        with pytest.raises(ValueError):
            topo.nearest(0, [1, 2], -1)

    def test_path_latency(self):
        topo = Topology(random.Random(7))
        topo.place_all([0, 1, 2])
        expected = topo.latency(0, 1) + topo.latency(1, 2)
        assert topo.path_latency([0, 1, 2]) == pytest.approx(expected)
        assert topo.path_latency([0]) == 0.0


class TestLatencyAccounting:
    def test_base_engine_reports_latency_when_topology_attached(self):
        grid = build_grid(128, maxl=4, refmax=2, seed=111)
        topo = Topology(random.Random(8))
        topo.place_all(grid.addresses())
        engine = SearchEngine(grid, topology=topo)
        result = engine.query_from(0, "1010")
        assert result.found
        if result.messages:
            assert result.latency > 0.0
        else:
            assert result.latency == 0.0

    def test_latency_zero_without_topology(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=112)
        result = SearchEngine(grid).query_from(0, "0101")
        assert result.latency == 0.0


class TestProximityEngines:
    def test_proximity_search_finds_and_is_cheaper(self):
        grid = build_grid(256, maxl=5, refmax=4, seed=113)
        topo = Topology(random.Random(9))
        topo.place_all(grid.addresses())
        plain = SearchEngine(grid, topology=topo)
        near = ProximitySearchEngine(grid, topo)
        rng = random.Random(10)
        plain_latency = near_latency = 0.0
        for _ in range(100):
            key = format(rng.randrange(32), "05b")
            start = rng.choice(grid.addresses())
            a = plain.query_from(start, key)
            b = near.query_from(start, key)
            assert a.found and b.found
            plain_latency += a.latency
            near_latency += b.latency
        assert near_latency < plain_latency

    def test_proximity_search_deterministic(self):
        # nearest-first ordering consumes no randomness
        grid = build_grid(128, maxl=4, refmax=3, seed=114)
        topo = Topology(random.Random(11))
        topo.place_all(grid.addresses())
        near = ProximitySearchEngine(grid, topo)
        first = near.query_from(3, "1100")
        second = near.query_from(3, "1100")
        assert first.responder == second.responder
        assert first.latency == second.latency

    def test_proximity_retention_preserves_invariant(self):
        from repro.core.config import PGridConfig
        from repro.core.grid import PGrid

        config = PGridConfig(maxl=4, refmax=3, recmax=2, recursion_fanout=2)
        grid = PGrid(config, rng=random.Random(12))
        grid.add_peers(128)
        topo = Topology(random.Random(13))
        topo.place_all(grid.addresses())
        engine = ProximityExchangeEngine(grid, topo)
        report = GridBuilder(grid, engine=engine).build(
            max_exchanges=1_000_000
        )
        assert report.converged
        assert_routing_consistent(grid)

    def test_proximity_retention_yields_nearer_references(self):
        from repro.core.config import PGridConfig
        from repro.core.grid import PGrid

        def mean_ref_distance(engine_factory, seed):
            config = PGridConfig(maxl=4, refmax=3, recmax=2, recursion_fanout=2)
            grid = PGrid(config, rng=random.Random(seed))
            grid.add_peers(256)
            topo = Topology(random.Random(99))  # same coordinates both runs
            topo.place_all(grid.addresses())
            engine = engine_factory(grid, topo)
            GridBuilder(grid, engine=engine).build(max_exchanges=1_000_000)
            total = 0.0
            count = 0
            for peer in grid.peers():
                for _level, refs in peer.routing.iter_levels():
                    for ref in refs:
                        total += topo.latency(peer.address, ref)
                        count += 1
            return total / count

        random_mean = mean_ref_distance(
            lambda grid, _topo: ExchangeEngine(grid), seed=15
        )
        proximity_mean = mean_ref_distance(
            lambda grid, topo: ProximityExchangeEngine(grid, topo), seed=15
        )
        assert proximity_mean < random_mean
