"""Tests for ASCII reporting and CSV/JSON writers."""

from __future__ import annotations

import csv
import json

import pytest

from repro.report.csvout import results_dir, write_csv, write_json
from repro.report.hist import render_histogram, render_series
from repro.report.tables import format_value, render_table


class TestFormatValue:
    def test_none_blank(self):
        assert format_value(None) == ""

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_rounding(self):
        assert format_value(2.456) == "2.46"
        assert format_value(2.456, float_digits=1) == "2.5"

    def test_int_passthrough(self):
        assert format_value(17) == "17"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["n", "e"], [[1, 2.5], [100, 30.25]])
        lines = text.splitlines()
        assert lines[0] == "| n   | e     |"
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2] == "| 1   | 2.50  |"
        assert lines[3] == "| 100 | 30.25 |"

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "| a |" in text


class TestRenderHistogram:
    def test_empty(self):
        assert render_histogram([]) == "(empty histogram)"

    def test_bars_scale(self):
        text = render_histogram([(1, 2), (2, 4)], width=4)
        lines = text.splitlines()
        assert lines[0].count("#") == 2
        assert lines[1].count("#") == 4
        assert lines[0].endswith("2")
        assert lines[1].endswith("4")

    def test_zero_count_no_bar(self):
        text = render_histogram([(1, 0), (2, 10)], width=4)
        assert text.splitlines()[0].count("#") == 0

    def test_title_and_labels(self):
        text = render_histogram(
            [(1, 1)], title="T", value_label="factor", count_label="peers"
        )
        assert text.startswith("T\nfactor -> peers")


class TestRenderSeries:
    def test_multiple_series(self):
        text = render_series(
            {"a": [(1.0, 0.5)], "b": [(2.0, 0.75), (3.0, 1.0)]},
            title="Fig",
        )
        assert text.startswith("Fig")
        assert "-- a" in text and "-- b" in text
        assert "0.500" in text and "0.750" in text


class TestWriters:
    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]

    def test_write_csv_validates_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "out.csv", ["x"], [[1, 2]])

    def test_write_json(self, tmp_path):
        path = write_json(tmp_path / "out.json", {"b": 1, "a": [1, 2]})
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload == {"b": 1, "a": [1, 2]}

    def test_write_json_handles_non_serializable(self, tmp_path):
        path = write_json(tmp_path / "out.json", {"p": tmp_path})
        assert json.loads(path.read_text(encoding="utf-8"))["p"] == str(tmp_path)

    def test_results_dir_created(self, tmp_path):
        target = results_dir(tmp_path / "nested" / "results")
        assert target.is_dir()

    def test_writers_create_parents(self, tmp_path):
        assert write_csv(tmp_path / "a" / "b.csv", ["x"], [[1]]).exists()
        assert write_json(tmp_path / "c" / "d.json", []).exists()


class TestRenderPlot:
    def _series(self):
        return {
            "a": [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)],
            "b": [(0.0, 2.0), (2.0, 0.0)],
        }

    def test_empty(self):
        from repro.report.hist import render_plot

        assert render_plot({}) == "(empty plot)"
        assert render_plot({"a": []}) == "(empty plot)"

    def test_contains_markers_and_legend(self):
        from repro.report.hist import render_plot

        text = render_plot(self._series(), title="T")
        assert text.startswith("T")
        assert "* = a" in text
        assert "o = b" in text
        assert "*" in text and "o" in text

    def test_axis_labels_and_ranges(self):
        from repro.report.hist import render_plot

        text = render_plot(self._series(), x_label="time", y_label="depth")
        assert "depth (top=2" in text
        assert "time: 0 .. 2" in text

    def test_dimensions(self):
        from repro.report.hist import render_plot

        text = render_plot(self._series(), width=20, height=6)
        rows = [line for line in text.splitlines() if line.startswith("|")]
        assert len(rows) == 6
        assert all(len(row) == 21 for row in rows)

    def test_constant_series_handled(self):
        from repro.report.hist import render_plot

        text = render_plot({"flat": [(0.0, 5.0), (1.0, 5.0)]})
        assert "(empty plot)" not in text

    def test_validation(self):
        import pytest

        from repro.report.hist import render_plot

        with pytest.raises(ValueError):
            render_plot(self._series(), width=4)
        with pytest.raises(ValueError):
            render_plot(self._series(), height=2)
