"""Tests for meeting schedulers."""

from __future__ import annotations

import itertools
import random
from collections import Counter

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.sim.meetings import BiasedMeetings, RoundRobinMeetings, UniformMeetings


def grid_of(n: int) -> PGrid:
    grid = PGrid(PGridConfig(), rng=random.Random(0))
    grid.add_peers(n)
    return grid


class TestUniformMeetings:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            UniformMeetings(grid_of(1))

    def test_pairs_are_distinct(self):
        scheduler = UniformMeetings(grid_of(5))
        for _ in range(200):
            a, b = scheduler.next_pair()
            assert a != b

    def test_pairs_cover_population(self):
        scheduler = UniformMeetings(grid_of(6), rng=random.Random(1))
        seen = set()
        for _ in range(500):
            a, b = scheduler.next_pair()
            seen.update((a, b))
        assert seen == set(range(6))

    def test_roughly_uniform(self):
        scheduler = UniformMeetings(grid_of(4), rng=random.Random(2))
        counts = Counter()
        for _ in range(4000):
            counts[frozenset(scheduler.next_pair())] += 1
        # 6 unordered pairs; each should get ~666
        assert len(counts) == 6
        assert min(counts.values()) > 450

    def test_refresh_picks_up_new_peers(self):
        grid = grid_of(2)
        scheduler = UniformMeetings(grid, rng=random.Random(3))
        grid.add_peer()
        scheduler.refresh()
        seen = set()
        for _ in range(100):
            seen.update(scheduler.next_pair())
        assert 2 in seen

    def test_pairs_stream(self):
        scheduler = UniformMeetings(grid_of(3), rng=random.Random(4))
        stream = list(itertools.islice(scheduler.pairs(), 10))
        assert len(stream) == 10

    def test_membership_changes_seen_without_refresh(self):
        # The cached address list revalidates against the grid's
        # membership version, so explicit refresh() is optional.
        grid = grid_of(2)
        scheduler = UniformMeetings(grid, rng=random.Random(3))
        scheduler.next_pair()  # prime the cache
        grid.add_peer()
        seen = set()
        for _ in range(100):
            seen.update(scheduler.next_pair())
        assert 2 in seen

        grid.remove_peer(0)
        for _ in range(100):
            assert 0 not in scheduler.next_pair()


class TestBiasedMeetings:
    def test_bias_validated(self):
        with pytest.raises(ValueError):
            BiasedMeetings(grid_of(3), bias=1.5)

    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            BiasedMeetings(grid_of(1))

    def test_pairs_distinct(self):
        grid = grid_of(6)
        for address, peer in enumerate(grid.peers()):
            peer.set_path("01" if address % 2 else "00")
        scheduler = BiasedMeetings(grid, bias=0.9, rng=random.Random(5))
        for _ in range(200):
            a, b = scheduler.next_pair()
            assert a != b

    def test_bias_prefers_prefix_related(self):
        grid = grid_of(10)
        # two camps: prefixes 0... and 1...
        for address, peer in enumerate(grid.peers()):
            peer.set_path("00" if address < 5 else "11")
        biased = BiasedMeetings(grid, bias=1.0, rng=random.Random(6))
        same_camp = 0
        trials = 500
        for _ in range(trials):
            a, b = biased.next_pair()
            if (a < 5) == (b < 5):
                same_camp += 1
        # uniform would give ~44%; full bias must give far more
        assert same_camp / trials > 0.8

    def test_pairs_stream(self):
        grid = grid_of(4)
        scheduler = BiasedMeetings(grid, rng=random.Random(7))
        assert len(list(itertools.islice(scheduler.pairs(), 5))) == 5


class TestRoundRobinMeetings:
    def test_each_peer_initiates_once_per_round(self):
        grid = grid_of(8)
        scheduler = RoundRobinMeetings(grid, rng=random.Random(8))
        initiators = [scheduler.next_pair()[0] for _ in range(8)]
        assert sorted(initiators) == list(range(8))

    def test_pairs_distinct(self):
        scheduler = RoundRobinMeetings(grid_of(3), rng=random.Random(9))
        for _ in range(50):
            a, b = scheduler.next_pair()
            assert a != b

    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            RoundRobinMeetings(grid_of(1))

    def test_reshuffles_between_rounds(self):
        scheduler = RoundRobinMeetings(grid_of(16), rng=random.Random(10))
        round1 = [scheduler.next_pair()[0] for _ in range(16)]
        round2 = [scheduler.next_pair()[0] for _ in range(16)]
        assert sorted(round1) == sorted(round2)
        assert round1 != round2  # overwhelmingly likely


class CountingGrid(PGrid):
    """PGrid that counts sorted-address-list materializations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.address_builds = 0

    def addresses(self):
        self.address_builds += 1
        return super().addresses()


class TestAddressCacheInvalidation:
    def test_churn_storm_rebuilds_once_per_draw_burst(self):
        # A burst of membership events between draws must cost one
        # rebuild at the next draw, not one rebuild per event.
        grid = CountingGrid(PGridConfig(), rng=random.Random(11))
        grid.add_peers(4)
        scheduler = UniformMeetings(grid, rng=random.Random(11))
        grid.address_builds = 0

        scheduler.next_pair()
        assert grid.address_builds == 1  # lazy first materialization

        for _ in range(50):  # churn storm: 100 membership events
            victim = grid.addresses()[0]
            grid.remove_peer(victim)
            grid.add_peer()
        grid.address_builds = 0

        scheduler.next_pair()
        assert grid.address_builds == 1
        scheduler.next_pair()
        assert grid.address_builds == 1  # stable membership: cache hit

    def test_refresh_is_free_and_cache_stays_valid(self):
        grid = CountingGrid(PGridConfig(), rng=random.Random(12))
        grid.add_peers(3)
        scheduler = UniformMeetings(grid, rng=random.Random(12))
        scheduler.next_pair()
        grid.address_builds = 0
        for _ in range(25):
            scheduler.refresh()
        assert grid.address_builds == 0  # refresh no longer rebuilds
        scheduler.next_pair()
        assert grid.address_builds == 0  # unchanged membership: no rebuild
        new_peer = grid.add_peer().address
        seen = set()
        for _ in range(100):
            seen.update(scheduler.next_pair())
        assert new_peer in seen
        assert grid.address_builds == 1

    def test_all_schedulers_survive_churn(self):
        for factory in (
            lambda g: UniformMeetings(g, rng=random.Random(13)),
            lambda g: BiasedMeetings(g, bias=0.5, rng=random.Random(13)),
            lambda g: RoundRobinMeetings(g, rng=random.Random(13)),
        ):
            grid = grid_of(6)
            scheduler = factory(grid)
            scheduler.next_pair()
            removed = grid.addresses()[0]
            grid.remove_peer(removed)
            added = grid.add_peer().address
            seen = set()
            for _ in range(200):
                pair = scheduler.next_pair()
                assert removed not in pair
                seen.update(pair)
            assert added in seen
