"""Tests for measurement helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import (
    RateAccumulator,
    gini,
    histogram_bins,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.median == 2.5

    def test_odd_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_single_value(self):
        summary = summarize([7])
        assert summary.stdev == 0.0
        assert summary.median == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"count", "mean", "stdev", "min", "max", "median"}

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_bounds_hold(self, values):
        summary = summarize(values)
        ulp = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
        assert summary.minimum - ulp <= summary.mean <= summary.maximum + ulp
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.stdev >= 0


class TestRateAccumulator:
    def test_empty_rate_zero(self):
        acc = RateAccumulator()
        assert acc.rate == 0.0
        assert acc.confidence_halfwidth() == 0.0

    def test_rate(self):
        acc = RateAccumulator()
        for outcome in (True, True, False, True):
            acc.record(outcome)
        assert acc.rate == 0.75
        assert acc.trials == 4
        assert acc.successes == 3

    def test_confidence_shrinks_with_trials(self):
        small = RateAccumulator()
        large = RateAccumulator()
        for _ in range(10):
            small.record(True)
            small.record(False)
        for _ in range(1000):
            large.record(True)
            large.record(False)
        assert large.confidence_halfwidth() < small.confidence_halfwidth()


class TestHistogramBins:
    def test_plain(self):
        assert histogram_bins([1, 1, 2, 3, 3, 3]) == [(1, 2), (2, 1), (3, 3)]

    def test_empty(self):
        assert histogram_bins([]) == []

    def test_max_bins_merges_tail(self):
        bins = histogram_bins([1, 2, 3, 4, 5], max_bins=3)
        assert len(bins) == 3
        assert bins[:2] == [(1, 1), (2, 1)]
        assert bins[2] == (3, 3)  # 3,4,5 merged with total count 3

    def test_max_bins_no_merge_needed(self):
        assert histogram_bins([1, 2], max_bins=5) == [(1, 1), (2, 1)]

    def test_counts_preserved_under_merge(self):
        values = [1, 1, 2, 5, 9, 9, 9]
        bins = histogram_bins(values, max_bins=2)
        assert sum(count for _, count in bins) == len(values)


class TestGini:
    def test_perfect_equality(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_total_inequality_approaches_one(self):
        value = gini([0] * 99 + [100])
        assert value > 0.9

    def test_known_value(self):
        # For [1, 3]: gini = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini([1, 3]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert gini([0, 0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([1, -2])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=40))
    def test_range(self, values):
        assert 0.0 <= gini(values) < 1.0

    @given(st.lists(st.floats(0.01, 1e6), min_size=1, max_size=40))
    def test_scale_invariant(self, values):
        assert gini(values) == pytest.approx(
            gini([v * 3 for v in values]), abs=1e-9
        )


class TestBootstrapCI:
    def test_interval_contains_true_mean_usually(self):
        from repro.sim.metrics import bootstrap_ci

        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 20
        lower, upper = bootstrap_ci(values, seed=1)
        assert lower <= 3.0 <= upper
        assert lower < upper

    def test_narrows_with_more_data(self):
        from repro.sim.metrics import bootstrap_ci

        small = bootstrap_ci([1.0, 5.0] * 5, seed=2)
        large = bootstrap_ci([1.0, 5.0] * 500, seed=2)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_degenerate_sample(self):
        from repro.sim.metrics import bootstrap_ci

        lower, upper = bootstrap_ci([7.0, 7.0, 7.0], seed=3)
        assert lower == upper == 7.0

    def test_deterministic_for_seed(self):
        from repro.sim.metrics import bootstrap_ci

        values = [1.0, 2.0, 9.0, 4.0]
        assert bootstrap_ci(values, seed=4) == bootstrap_ci(values, seed=4)

    def test_validation(self):
        import pytest

        from repro.sim.metrics import bootstrap_ci

        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
