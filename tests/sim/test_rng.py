"""Tests for seeded RNG stream derivation."""

from __future__ import annotations

import random

from repro.sim.rng import derive, spawn


class TestDerive:
    def test_deterministic(self):
        assert derive(1, "a").random() == derive(1, "a").random()

    def test_streams_differ(self):
        assert derive(1, "a").random() != derive(1, "b").random()

    def test_seeds_differ(self):
        assert derive(1, "a").random() != derive(2, "a").random()

    def test_stable_across_processes(self):
        # SHA-256-based derivation must not depend on hash randomization;
        # pin one value forever.
        value = derive(0, "construction").randrange(10**6)
        assert value == derive(0, "construction").randrange(10**6)

    def test_stream_independence_statistical(self):
        # Consuming stream "a" must not perturb stream "b".
        a1 = derive(7, "a")
        b1 = derive(7, "b")
        a1_values = [a1.random() for _ in range(100)]
        b1_values = [b1.random() for _ in range(5)]

        b2 = derive(7, "b")
        assert [b2.random() for _ in range(5)] == b1_values
        assert len(set(a1_values)) > 90  # sanity: actually random


class TestSpawn:
    def test_spawn_deterministic_from_parent_state(self):
        parent1 = random.Random(3)
        parent2 = random.Random(3)
        assert spawn(parent1).random() == spawn(parent2).random()

    def test_spawn_advances_parent(self):
        parent = random.Random(3)
        first = spawn(parent)
        second = spawn(parent)
        assert first.random() != second.random()
