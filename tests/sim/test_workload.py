"""Tests for workload generators."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import keys as keyspace
from repro.sim.workload import (
    QueryStream,
    UniformKeyWorkload,
    ZipfKeyWorkload,
    generate_items,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert sum(zipf_weights(10)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, exponent=1.2)
        assert weights == sorted(weights, reverse=True)

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(5, exponent=0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=-1)


class TestUniformKeyWorkload:
    def test_key_shape(self):
        workload = UniformKeyWorkload(8, random.Random(0))
        for key in workload.keys(50):
            assert len(key) == 8
            assert keyspace.is_valid_key(key)

    def test_deterministic(self):
        a = UniformKeyWorkload(6, random.Random(1)).keys(20)
        b = UniformKeyWorkload(6, random.Random(1)).keys(20)
        assert a == b

    def test_roughly_uniform_first_bit(self):
        workload = UniformKeyWorkload(4, random.Random(2))
        counts = Counter(key[0] for key in workload.keys(4000))
        assert 1800 < counts["0"] < 2200

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeyWorkload(0, random.Random(0))
        with pytest.raises(ValueError):
            UniformKeyWorkload(4, random.Random(0)).keys(-1)


class TestZipfKeyWorkload:
    def test_key_shape(self):
        workload = ZipfKeyWorkload(6, random.Random(3), exponent=1.0)
        for key in workload.keys(50):
            assert len(key) == 6
            assert keyspace.is_valid_key(key)

    def test_skew_concentrates_on_low_values(self):
        workload = ZipfKeyWorkload(6, random.Random(4), exponent=1.5)
        keys = workload.keys(3000)
        low_half = sum(1 for key in keys if key[0] == "0")
        assert low_half / len(keys) > 0.7  # low ranks dominate

    def test_zero_exponent_behaves_uniform(self):
        workload = ZipfKeyWorkload(6, random.Random(5), exponent=0.0)
        keys = workload.keys(4000)
        low_half = sum(1 for key in keys if key[0] == "0")
        assert 0.45 < low_half / len(keys) < 0.55

    def test_next_key_single(self):
        workload = ZipfKeyWorkload(4, random.Random(6))
        assert len(workload.next_key()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyWorkload(0, random.Random(0))
        with pytest.raises(ValueError):
            # exact mode would materialize 2^30 weights
            ZipfKeyWorkload(30, random.Random(0), sampled=False)
        with pytest.raises(ValueError):
            ZipfKeyWorkload(4, random.Random(0)).keys(-1)


class TestZipfSampledMode:
    def test_exact_mode_stream_unchanged(self):
        """The cum_weights optimization must not shift the exact stream.

        Reproduces the historical draw (random.choices with raw weights)
        and asserts the optimized path emits the identical keys.
        """
        from repro.sim.workload import zipf_weights

        historical_rng = random.Random(42)
        weights = zipf_weights(2**8, exponent=1.2)
        population = range(2**8)
        historical = [
            format(value, "08b")
            for value in historical_rng.choices(population, weights=weights, k=64)
        ]
        workload = ZipfKeyWorkload(8, random.Random(42), exponent=1.2)
        assert workload.keys(64) == historical

    def test_auto_selects_sampled_beyond_24_bits(self):
        workload = ZipfKeyWorkload(64, random.Random(0))
        assert workload.sampled is True
        exact = ZipfKeyWorkload(8, random.Random(0))
        assert exact.sampled is False

    def test_sampled_key_shape(self):
        workload = ZipfKeyWorkload(64, random.Random(1), exponent=1.25)
        for key in workload.keys(200):
            assert len(key) == 64
            assert keyspace.is_valid_key(key)

    def test_sampled_deterministic(self):
        a = ZipfKeyWorkload(40, random.Random(3), exponent=1.0).keys(50)
        b = ZipfKeyWorkload(40, random.Random(3), exponent=1.0).keys(50)
        assert a == b

    def test_sampled_matches_exact_head_mass(self):
        """At a size where both modes exist, leading-prefix masses agree."""
        draws = 4000
        exact_keys = ZipfKeyWorkload(
            16, random.Random(11), exponent=1.25, sampled=False
        ).keys(draws)
        sampled_keys = ZipfKeyWorkload(
            16, random.Random(12), exponent=1.25, sampled=True
        ).keys(draws)
        for prefix_len in (1, 2, 4):
            exact_mass = sum(
                1 for key in exact_keys if key[:prefix_len] == "0" * prefix_len
            ) / draws
            sampled_mass = sum(
                1 for key in sampled_keys if key[:prefix_len] == "0" * prefix_len
            ) / draws
            assert abs(exact_mass - sampled_mass) < 0.05

    def test_sampled_rank_one_frequency(self):
        """P(rank 1) over 2^32 keys matches the analytic Zipf mass."""
        import math

        exponent = 1.25
        workload = ZipfKeyWorkload(32, random.Random(21), exponent=exponent)
        draws = 5000
        top = sum(1 for key in workload.keys(draws) if int(key, 2) == 0)
        # Analytic: 1 / zeta-like normalizer over 2^32 ranks; the tail
        # integral approximates the sum closely at this exponent.
        head = sum(1.0 / rank**exponent for rank in range(1, 65537))
        tail = (
            ((2**32 + 0.5) ** (1 - exponent) - 65536.5 ** (1 - exponent))
            / (1 - exponent)
        )
        expected = 1.0 / (head + tail)
        assert math.isclose(top / draws, expected, abs_tol=0.03)

    def test_sampled_exponent_one_log_tail(self):
        """The s=1 logarithmic tail branch draws valid, skewed keys."""
        workload = ZipfKeyWorkload(48, random.Random(31), exponent=1.0)
        keys = workload.keys(1000)
        assert all(len(key) == 48 for key in keys)
        low_half = sum(1 for key in keys if key[0] == "0")
        assert low_half / len(keys) > 0.9  # 2^47 split leaves ~1/48 mass above


class TestGenerateItems:
    def test_items_wrap_keys(self):
        items = generate_items(["01", "10"], payload_prefix="file")
        assert [item.key for item in items] == ["01", "10"]
        assert items[0].value == "file-0"
        assert items[1].value == "file-1"

    def test_empty(self):
        assert generate_items([]) == []


class TestQueryStream:
    def test_queries_shape(self):
        workload = UniformKeyWorkload(5, random.Random(7))
        stream = QueryStream([10, 20, 30], workload, random.Random(8))
        queries = list(stream.queries(40))
        assert len(queries) == 40
        for start, key in queries:
            assert start in (10, 20, 30)
            assert len(key) == 5

    def test_needs_addresses(self):
        workload = UniformKeyWorkload(5, random.Random(0))
        with pytest.raises(ValueError):
            QueryStream([], workload, random.Random(0))

    def test_negative_count(self):
        workload = UniformKeyWorkload(5, random.Random(0))
        stream = QueryStream([1], workload, random.Random(0))
        with pytest.raises(ValueError):
            list(stream.queries(-1))

    def test_deterministic(self):
        def run():
            workload = UniformKeyWorkload(5, random.Random(9))
            stream = QueryStream([1, 2], workload, random.Random(10))
            return list(stream.queries(10))

        assert run() == run()
