"""Tests for workload generators."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import keys as keyspace
from repro.sim.workload import (
    QueryStream,
    UniformKeyWorkload,
    ZipfKeyWorkload,
    generate_items,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert sum(zipf_weights(10)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, exponent=1.2)
        assert weights == sorted(weights, reverse=True)

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(5, exponent=0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=-1)


class TestUniformKeyWorkload:
    def test_key_shape(self):
        workload = UniformKeyWorkload(8, random.Random(0))
        for key in workload.keys(50):
            assert len(key) == 8
            assert keyspace.is_valid_key(key)

    def test_deterministic(self):
        a = UniformKeyWorkload(6, random.Random(1)).keys(20)
        b = UniformKeyWorkload(6, random.Random(1)).keys(20)
        assert a == b

    def test_roughly_uniform_first_bit(self):
        workload = UniformKeyWorkload(4, random.Random(2))
        counts = Counter(key[0] for key in workload.keys(4000))
        assert 1800 < counts["0"] < 2200

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeyWorkload(0, random.Random(0))
        with pytest.raises(ValueError):
            UniformKeyWorkload(4, random.Random(0)).keys(-1)


class TestZipfKeyWorkload:
    def test_key_shape(self):
        workload = ZipfKeyWorkload(6, random.Random(3), exponent=1.0)
        for key in workload.keys(50):
            assert len(key) == 6
            assert keyspace.is_valid_key(key)

    def test_skew_concentrates_on_low_values(self):
        workload = ZipfKeyWorkload(6, random.Random(4), exponent=1.5)
        keys = workload.keys(3000)
        low_half = sum(1 for key in keys if key[0] == "0")
        assert low_half / len(keys) > 0.7  # low ranks dominate

    def test_zero_exponent_behaves_uniform(self):
        workload = ZipfKeyWorkload(6, random.Random(5), exponent=0.0)
        keys = workload.keys(4000)
        low_half = sum(1 for key in keys if key[0] == "0")
        assert 0.45 < low_half / len(keys) < 0.55

    def test_next_key_single(self):
        workload = ZipfKeyWorkload(4, random.Random(6))
        assert len(workload.next_key()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeyWorkload(0, random.Random(0))
        with pytest.raises(ValueError):
            ZipfKeyWorkload(30, random.Random(0))  # would materialize 2^30
        with pytest.raises(ValueError):
            ZipfKeyWorkload(4, random.Random(0)).keys(-1)


class TestGenerateItems:
    def test_items_wrap_keys(self):
        items = generate_items(["01", "10"], payload_prefix="file")
        assert [item.key for item in items] == ["01", "10"]
        assert items[0].value == "file-0"
        assert items[1].value == "file-1"

    def test_empty(self):
        assert generate_items([]) == []


class TestQueryStream:
    def test_queries_shape(self):
        workload = UniformKeyWorkload(5, random.Random(7))
        stream = QueryStream([10, 20, 30], workload, random.Random(8))
        queries = list(stream.queries(40))
        assert len(queries) == 40
        for start, key in queries:
            assert start in (10, 20, 30)
            assert len(key) == 5

    def test_needs_addresses(self):
        workload = UniformKeyWorkload(5, random.Random(0))
        with pytest.raises(ValueError):
            QueryStream([], workload, random.Random(0))

    def test_negative_count(self):
        workload = UniformKeyWorkload(5, random.Random(0))
        stream = QueryStream([1], workload, random.Random(0))
        with pytest.raises(ValueError):
            list(stream.queries(-1))

    def test_deterministic(self):
        def run():
            workload = UniformKeyWorkload(5, random.Random(9))
            stream = QueryStream([1, 2], workload, random.Random(10))
            return list(stream.queries(10))

        assert run() == run()
