"""Tests for grid snapshots (save/load)."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.storage import DataItem, DataRef
from repro.errors import SnapshotFormatError
from repro.sim.persistence import (
    FORMAT_TAG,
    grid_from_dict,
    grid_to_dict,
    load_grid,
    save_grid,
)
from tests.conftest import build_grid


def decorate(grid):
    """Attach items, index entries and buddies so the round trip is rich."""
    first = grid.peer(0)
    first.store.store_item(DataItem(key="0101", value="payload"))
    first.store.add_ref(DataRef(key="0101", holder=3, version=2))
    first.add_buddy(9)
    return grid


class TestRoundTrip:
    def test_full_state_preserved(self, tmp_path):
        grid = decorate(build_grid(48, maxl=4, refmax=2, seed=17))
        path = save_grid(grid, tmp_path / "grid.json")
        clone = load_grid(path, rng=random.Random(1))

        assert len(clone) == len(grid)
        assert clone.config == grid.config
        for original, restored in zip(grid.peers(), clone.peers()):
            assert restored.address == original.address
            assert restored.path == original.path
            assert restored.routing.to_lists() == original.routing.to_lists()
            assert restored.buddies == original.buddies
        assert clone.peer(0).store.get_item("0101").value == "payload"
        assert clone.peer(0).store.version_of("0101", 3) == 2

    def test_dict_roundtrip_without_files(self):
        grid = decorate(build_grid(16, maxl=3, seed=18))
        clone = grid_from_dict(grid_to_dict(grid))
        assert grid_to_dict(clone) == grid_to_dict(grid)

    def test_loaded_grid_searches_like_original(self, tmp_path):
        from repro.core.search import SearchEngine

        grid = build_grid(64, maxl=4, refmax=2, seed=19)
        path = save_grid(grid, tmp_path / "grid.json")
        clone = load_grid(path, rng=random.Random(2))
        engine = SearchEngine(clone)
        for key in ("0000", "1111", "0101"):
            assert engine.query_from(0, key).found

    def test_save_creates_parent_dirs(self, tmp_path):
        grid = build_grid(8, maxl=2, seed=20)
        target = tmp_path / "deep" / "nested" / "grid.json"
        assert save_grid(grid, target).exists()


class TestFormatErrors:
    def test_wrong_format_tag(self):
        with pytest.raises(SnapshotFormatError):
            grid_from_dict({"format": "other/9", "config": {}, "peers": []})

    def test_non_dict_root(self):
        with pytest.raises(SnapshotFormatError):
            grid_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_missing_keys(self):
        with pytest.raises(SnapshotFormatError):
            grid_from_dict({"format": FORMAT_TAG, "peers": []})

    def test_malformed_peer_record(self):
        data = {
            "format": FORMAT_TAG,
            "config": {"maxl": 3, "refmax": 1, "recmax": 0,
                       "recursion_fanout": None,
                       "mutual_refs_in_case4": False,
                       "exchange_refs_all_levels": False},
            "peers": [{"address": 0}],
        }
        with pytest.raises(SnapshotFormatError):
            grid_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotFormatError):
            load_grid(path)

    def test_snapshot_is_valid_json(self, tmp_path):
        grid = build_grid(8, maxl=2, seed=22)
        path = save_grid(grid, tmp_path / "grid.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == FORMAT_TAG
        assert len(payload["peers"]) == 8


class TestGzipSnapshots:
    def test_gz_roundtrip(self, tmp_path):
        grid = decorate(build_grid(48, maxl=4, refmax=2, seed=23))
        path = save_grid(grid, tmp_path / "grid.json.gz")
        clone = load_grid(path, rng=random.Random(3))
        assert grid_to_dict(clone) == grid_to_dict(grid)

    def test_gz_is_actually_compressed(self, tmp_path):
        grid = build_grid(128, maxl=5, refmax=3, seed=24)
        plain = save_grid(grid, tmp_path / "grid.json")
        packed = save_grid(grid, tmp_path / "grid.json.gz")
        assert packed.stat().st_size < 0.7 * plain.stat().st_size

    def test_corrupt_gz_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        path.write_bytes(b"definitely not gzip")
        with pytest.raises(SnapshotFormatError):
            load_grid(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_grid(tmp_path / "absent.json")
