"""Tests for the construction driver (GridBuilder)."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.errors import NotConvergedError
from repro.sim.builder import GridBuilder


def fresh_grid(n: int = 32, **config_kwargs) -> PGrid:
    defaults = {"maxl": 3, "refmax": 2, "recmax": 2, "recursion_fanout": 2}
    defaults.update(config_kwargs)
    grid = PGrid(PGridConfig(**defaults), rng=random.Random(5))
    grid.add_peers(n)
    return grid


class TestBuild:
    def test_converges_small_grid(self):
        grid = fresh_grid()
        report = GridBuilder(grid).build()
        assert report.converged
        assert report.average_depth >= report.threshold
        assert report.peer_count == 32
        assert report.exchanges > 0
        assert report.exchanges_per_peer == pytest.approx(
            report.exchanges / 32
        )

    def test_threshold_semantics(self):
        grid = fresh_grid()
        report = GridBuilder(grid).build(threshold_fraction=0.5)
        assert report.threshold == pytest.approx(0.5 * 3)
        assert grid.average_path_length() >= 1.5

    def test_incremental_average_matches_rescan(self):
        grid = fresh_grid()
        builder = GridBuilder(grid)
        builder.build(max_meetings=200, threshold_fraction=1.0)
        assert builder._average_depth() == pytest.approx(
            grid.average_path_length()
        )

    def test_depth_offset_for_preloaded_grid(self):
        grid = fresh_grid(8)
        for peer in grid.peers():
            peer.set_path("0")  # pre-deepened outside any engine
        builder = GridBuilder(grid)
        assert builder._average_depth() == pytest.approx(1.0)

    def test_incremental_average_survives_membership_churn(self):
        grid = fresh_grid(48, maxl=4)
        builder = GridBuilder(grid)
        builder.build(max_meetings=150, threshold_fraction=1.0)

        # Leave: drop a third of the population, including deep peers.
        for address in list(grid.addresses())[::3]:
            grid.remove_peer(address)
        assert builder._average_depth() == pytest.approx(
            grid.average_path_length()
        )

        # Join: fresh root-path peers drag the average back down.
        grid.add_peers(16)
        assert builder._average_depth() == pytest.approx(
            grid.average_path_length()
        )

        # Continue building after churn: the incremental count must keep
        # matching the from-scratch rescan at the end.
        builder.build(max_meetings=150, threshold_fraction=1.0)
        assert builder._average_depth() == pytest.approx(
            grid.average_path_length()
        )

    def test_budget_stops_without_convergence(self):
        grid = fresh_grid(64, maxl=6)
        report = GridBuilder(grid).build(max_exchanges=10)
        assert not report.converged
        assert report.exchanges >= 10  # the final meeting may overshoot

    def test_budget_raises_when_requested(self):
        grid = fresh_grid(64, maxl=6)
        with pytest.raises(NotConvergedError) as excinfo:
            GridBuilder(grid).build(max_exchanges=5, raise_on_budget=True)
        assert excinfo.value.exchanges >= 5
        assert excinfo.value.average_depth < 6

    def test_zero_meeting_budget(self):
        grid = fresh_grid()
        report = GridBuilder(grid).build(max_meetings=0)
        assert not report.converged
        assert report.meetings == 0

    def test_trajectory_sampling(self):
        grid = fresh_grid(64, maxl=4)
        report = GridBuilder(grid).build(sample_every=50)
        assert report.trajectory
        meetings = [sample.meetings for sample in report.trajectory]
        assert meetings == sorted(meetings)
        depths = [sample.average_depth for sample in report.trajectory]
        assert depths == sorted(depths)  # depth only ever grows

    def test_already_converged_runs_no_meetings(self):
        grid = fresh_grid(8, maxl=1)
        for address, peer in enumerate(grid.peers()):
            peer.set_path(str(address % 2))
        report = GridBuilder(grid).build()
        assert report.converged
        assert report.meetings == 0

    def test_stats_snapshot_included(self):
        grid = fresh_grid()
        report = GridBuilder(grid).build()
        assert report.stats["calls"] == report.exchanges


class TestValidation:
    def test_needs_two_peers(self):
        grid = PGrid(PGridConfig(), rng=random.Random(0))
        grid.add_peer()
        with pytest.raises(ValueError):
            GridBuilder(grid)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold_fraction": 0.0},
            {"threshold_fraction": 1.5},
            {"max_meetings": -1},
            {"max_exchanges": -1},
            {"sample_every": 0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        builder = GridBuilder(fresh_grid())
        with pytest.raises(ValueError):
            builder.build(**kwargs)

    def test_external_engine_reused(self):
        grid = fresh_grid()
        engine = ExchangeEngine(grid)
        builder = GridBuilder(grid, engine=engine)
        report = builder.build()
        assert report.exchanges == engine.stats.calls
