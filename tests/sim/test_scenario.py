"""Tests for the declarative scenario runner."""

from __future__ import annotations

import pytest

from repro.core.config import PGridConfig
from repro.errors import InvalidConfigError
from repro.sim.scenario import (
    KeyDistribution,
    ScenarioSpec,
    run_scenario,
)


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        n_peers=96,
        config=PGridConfig(maxl=4, refmax=3, recmax=2, recursion_fanout=2),
        items_per_peer=2,
        key_length=6,
        operations=200,
        update_fraction=0.2,
        seed=33,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_peers": 1},
            {"items_per_peer": -1},
            {"key_length": 0},
            {"p_online": 0.0},
            {"p_online": 1.5},
            {"operations": -1},
            {"update_fraction": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidConfigError):
            small_spec(**kwargs)

    def test_frozen(self):
        spec = small_spec()
        with pytest.raises(AttributeError):
            spec.n_peers = 5  # type: ignore[misc]


class TestRunScenario:
    def test_failure_free_scenario(self):
        metrics = run_scenario(small_spec())
        assert metrics.construction_exchanges > 0
        assert metrics.average_depth >= 0.99 * 4
        assert metrics.seeded_entries > 0
        assert metrics.searches + metrics.updates == 200
        assert metrics.search_success_rate == 1.0
        # Reads-after-update can miss even failure-free: a BFS update that
        # starts *at* a hard-to-find replica updates only that replica
        # (the paper's "not all replicas are as likely to be found").
        assert metrics.read_success_rate > 0.9
        assert metrics.update_coverage_mean > 0
        assert metrics.invariant_violations == 0

    def test_churned_scenario_degrades_gracefully(self):
        metrics = run_scenario(small_spec(p_online=0.3, operations=300))
        assert 0.3 < metrics.search_success_rate <= 1.0
        assert metrics.update_coverage_mean < 1.0

    def test_zipf_scenario(self):
        metrics = run_scenario(
            small_spec(
                key_distribution=KeyDistribution.ZIPF, zipf_exponent=1.2
            )
        )
        assert metrics.searches > 0
        assert metrics.search_success_rate > 0.9

    def test_zero_operations(self):
        metrics = run_scenario(small_spec(operations=0))
        assert metrics.searches == 0
        assert metrics.updates == 0
        assert metrics.search_messages_mean == 0.0

    def test_no_updates(self):
        metrics = run_scenario(small_spec(update_fraction=0.0))
        assert metrics.updates == 0
        assert metrics.reads_after_update == 0
        assert metrics.searches == 200

    def test_deterministic(self):
        a = run_scenario(small_spec())
        b = run_scenario(small_spec())
        assert a.as_dict() == b.as_dict()

    def test_as_dict_keys(self):
        metrics = run_scenario(small_spec(operations=20))
        payload = metrics.as_dict()
        assert payload["n_peers"] == 96
        assert set(payload) >= {
            "search_success_rate",
            "update_coverage_mean",
            "invariant_violations",
        }
