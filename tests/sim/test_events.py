"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.sim.churn import SessionChurn
from repro.sim.events import (
    EventSimulator,
    MeetingProcess,
    PoissonProcess,
    SessionProcess,
    run_timed_construction,
)


class TestEventSimulator:
    def test_clock_starts_at_zero(self):
        assert EventSimulator().now == 0.0

    def test_events_run_in_time_order(self):
        simulator = EventSimulator()
        log = []
        simulator.schedule(3.0, lambda t: log.append(("c", t)))
        simulator.schedule(1.0, lambda t: log.append(("a", t)))
        simulator.schedule(2.0, lambda t: log.append(("b", t)))
        while simulator.run_next():
            pass
        assert [name for name, _ in log] == ["a", "b", "c"]
        assert simulator.now == 3.0

    def test_ties_run_in_schedule_order(self):
        simulator = EventSimulator()
        log = []
        simulator.schedule(1.0, lambda t: log.append("first"))
        simulator.schedule(1.0, lambda t: log.append("second"))
        simulator.run_until(2.0)
        assert log == ["first", "second"]

    def test_run_until_leaves_future_events(self):
        simulator = EventSimulator()
        log = []
        simulator.schedule(1.0, lambda t: log.append(t))
        simulator.schedule(5.0, lambda t: log.append(t))
        executed = simulator.run_until(2.0)
        assert executed == 1
        assert log == [1.0]
        assert simulator.pending == 1
        assert simulator.now == 2.0

    def test_events_can_schedule_events(self):
        simulator = EventSimulator()
        log = []

        def ping(time):
            log.append(time)
            if time < 3:
                simulator.schedule(1.0, ping)

        simulator.schedule(1.0, ping)
        simulator.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]

    def test_schedule_at_absolute(self):
        simulator = EventSimulator()
        log = []
        simulator.schedule_at(4.5, lambda t: log.append(t))
        simulator.run_until(5.0)
        assert log == [4.5]

    def test_validation(self):
        simulator = EventSimulator()
        with pytest.raises(ValueError):
            simulator.schedule(-1.0, lambda t: None)
        simulator.schedule(1.0, lambda t: None)
        simulator.run_until(2.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda t: None)
        with pytest.raises(ValueError):
            simulator.run_until(1.0)

    def test_max_events_truncation(self):
        simulator = EventSimulator()
        for _ in range(5):
            simulator.schedule(1.0, lambda t: None)
        executed = simulator.run_until(2.0, max_events=3)
        assert executed == 3
        assert simulator.pending == 2


class TestPoissonProcess:
    def test_arrival_count_near_rate_times_duration(self):
        simulator = EventSimulator()
        process = PoissonProcess(
            simulator, rate=10.0, action=lambda t: None, rng=random.Random(1)
        )
        process.start()
        simulator.run_until(100.0)
        # expect ~1000 arrivals; allow generous slack
        assert 850 < process.arrivals < 1150

    def test_stop_halts_arrivals(self):
        simulator = EventSimulator()
        process = PoissonProcess(
            simulator, rate=5.0, action=lambda t: None, rng=random.Random(2)
        )
        process.start()
        simulator.run_until(10.0)
        count = process.arrivals
        process.stop()
        simulator.run_until(50.0)
        assert process.arrivals == count

    def test_start_idempotent(self):
        simulator = EventSimulator()
        process = PoissonProcess(
            simulator, rate=1.0, action=lambda t: None, rng=random.Random(3)
        )
        process.start()
        process.start()
        simulator.run_until(1000.0)
        assert 900 < process.arrivals < 1120

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            PoissonProcess(
                EventSimulator(), rate=0.0, action=lambda t: None,
                rng=random.Random(0),
            )


class TestSessionProcess:
    def test_epochs_advance(self):
        simulator = EventSimulator()
        churn = SessionChurn(0.5, random.Random(4), range(100))
        process = SessionProcess(simulator, churn, epoch_length=1.0)
        process.start()
        simulator.run_until(5.5)
        assert churn.epoch == 5

    def test_stop(self):
        simulator = EventSimulator()
        churn = SessionChurn(0.5, random.Random(5), range(10))
        process = SessionProcess(simulator, churn, epoch_length=1.0)
        process.start()
        simulator.run_until(2.5)
        process.stop()
        simulator.run_until(10.0)
        assert churn.epoch == 2

    def test_epoch_length_validated(self):
        with pytest.raises(ValueError):
            SessionProcess(
                EventSimulator(),
                SessionChurn(0.5, random.Random(0), range(2)),
                epoch_length=0.0,
            )


class TestTimedConstruction:
    def _grid(self, n=64, maxl=4):
        grid = PGrid(
            PGridConfig(maxl=maxl, refmax=2, recmax=2, recursion_fanout=2),
            rng=random.Random(6),
        )
        grid.add_peers(n)
        return grid

    def test_converges_given_enough_time(self):
        grid = self._grid()
        report = run_timed_construction(
            grid, meeting_rate=64.0, duration=100.0, rng=random.Random(7)
        )
        assert report.converged
        assert report.average_depth >= 0.99 * 4
        assert report.meetings > 0
        assert report.duration == 100.0

    def test_short_duration_incomplete(self):
        grid = self._grid()
        report = run_timed_construction(
            grid, meeting_rate=64.0, duration=0.5, rng=random.Random(8)
        )
        assert report.average_depth < 4

    def test_trajectory_sampled_over_time(self):
        grid = self._grid()
        report = run_timed_construction(
            grid,
            meeting_rate=64.0,
            duration=20.0,
            sample_every=2.0,
            rng=random.Random(9),
        )
        times = [sample.time for sample in report.trajectory]
        assert times == sorted(times)
        assert len(times) >= 9
        depths = [sample.average_depth for sample in report.trajectory]
        assert depths == sorted(depths)

    def test_churn_slows_construction(self):
        fast = run_timed_construction(
            self._grid(128, maxl=5),
            meeting_rate=128.0,
            duration=30.0,
            rng=random.Random(10),
        )
        churned_grid = self._grid(128, maxl=5)
        churn = SessionChurn(0.3, random.Random(11), churned_grid.addresses())
        slow = run_timed_construction(
            churned_grid,
            meeting_rate=128.0,
            duration=30.0,
            churn=churn,
            rng=random.Random(10),
        )
        assert slow.average_depth < fast.average_depth or not slow.converged

    def test_offline_meetings_skipped(self):
        grid = self._grid(32, maxl=3)
        churn = SessionChurn(0.2, random.Random(12), grid.addresses())
        simulator = EventSimulator()
        grid.online_oracle = churn
        process = MeetingProcess(
            simulator, grid, rate=32.0, rng=random.Random(13)
        )
        process.start()
        simulator.run_until(20.0)
        assert process.skipped_offline > 0

    def test_validation(self):
        grid = self._grid()
        with pytest.raises(ValueError):
            run_timed_construction(grid, meeting_rate=1.0, duration=0.0)
        with pytest.raises(ValueError):
            run_timed_construction(
                grid, meeting_rate=1.0, duration=1.0, sample_every=0.0
            )
