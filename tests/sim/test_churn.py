"""Tests for availability (churn) models."""

from __future__ import annotations

import random

import pytest

from repro.sim.churn import BernoulliChurn, FixedOnlineSet, SessionChurn


class TestBernoulliChurn:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            BernoulliChurn(1.2, random.Random(0))
        with pytest.raises(ValueError):
            BernoulliChurn(-0.1, random.Random(0))

    def test_extremes(self):
        always = BernoulliChurn(1.0, random.Random(0))
        never = BernoulliChurn(0.0, random.Random(0))
        assert all(always.is_online(a) for a in range(100))
        assert not any(never.is_online(a) for a in range(100))

    def test_empirical_rate_close_to_p(self):
        churn = BernoulliChurn(0.3, random.Random(1))
        hits = sum(churn.is_online(0) for _ in range(20_000))
        assert 0.28 < hits / 20_000 < 0.32

    def test_memoryless_per_contact(self):
        # Same peer can flip between contacts: both outcomes occur.
        churn = BernoulliChurn(0.5, random.Random(2))
        outcomes = {churn.is_online(7) for _ in range(100)}
        assert outcomes == {True, False}

    def test_per_peer_override(self):
        churn = BernoulliChurn(
            0.0, random.Random(3), per_peer={42: 1.0}
        )
        assert churn.probability_for(42) == 1.0
        assert churn.probability_for(1) == 0.0
        assert churn.is_online(42)
        assert not churn.is_online(1)

    def test_per_peer_override_validated(self):
        with pytest.raises(ValueError):
            BernoulliChurn(0.5, random.Random(0), per_peer={1: 1.5})


class TestSessionChurn:
    def test_stable_within_epoch(self):
        churn = SessionChurn(0.5, random.Random(4), range(50))
        snapshot = {a: churn.is_online(a) for a in range(50)}
        for _ in range(5):
            assert {a: churn.is_online(a) for a in range(50)} == snapshot

    def test_advance_epoch_resamples(self):
        churn = SessionChurn(0.5, random.Random(5), range(200))
        before = churn.online_now
        churn.advance_epoch()
        assert churn.epoch == 1
        assert churn.online_now != before  # astronomically unlikely to match

    def test_fraction_roughly_p(self):
        churn = SessionChurn(0.3, random.Random(6), range(5000))
        assert 0.27 < len(churn.online_now) / 5000 < 0.33

    def test_track_new_peer(self):
        churn = SessionChurn(1.0, random.Random(7), range(3))
        churn.track(99)
        assert churn.is_online(99)

    def test_track_is_idempotent(self):
        churn = SessionChurn(1.0, random.Random(8), range(3))
        churn.track(99)
        churn.track(99)
        churn.advance_epoch()
        assert churn.is_online(99)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            SessionChurn(2.0, random.Random(0), range(3))


class TestFixedOnlineSet:
    def test_membership(self):
        oracle = FixedOnlineSet({1, 2})
        assert oracle.is_online(1)
        assert not oracle.is_online(3)

    def test_set_online_toggles(self):
        oracle = FixedOnlineSet()
        oracle.set_online(5)
        assert oracle.is_online(5)
        oracle.set_online(5, online=False)
        assert not oracle.is_online(5)

    def test_set_offline_absent_is_noop(self):
        oracle = FixedOnlineSet()
        oracle.set_online(9, online=False)
        assert not oracle.is_online(9)
