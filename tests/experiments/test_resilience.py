"""Resilience sweep: shape, determinism under --jobs, and tolerance gate."""

from __future__ import annotations

import pytest

from repro.experiments import resilience
from repro.experiments.resilience import HEADERS, check_deviations, resilience_profile


@pytest.fixture(scope="module")
def tiny_result():
    return resilience.run(scale="tiny", jobs=1)


class TestProfiles:
    def test_known_scales(self):
        for scale in ("tiny", "smoke", "full"):
            profile = resilience_profile(scale)
            assert profile.name == scale
            assert profile.key_length == profile.maxl - 1

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            resilience_profile("galactic")

    def test_population_holds_refmax(self):
        profile = resilience_profile("tiny")
        assert profile.n_peers(8) >= 2**profile.maxl * 8


class TestSweep:
    def test_result_shape(self, tiny_result):
        profile = resilience_profile("tiny")
        assert tiny_result.experiment_id == "resilience"
        assert tiny_result.headers == HEADERS
        expected_points = len(profile.p_values) * len(profile.refmax_values)
        assert len(tiny_result.rows) == expected_points
        for row in tiny_result.rows:
            assert len(row) == len(HEADERS)
            # Every column after (p, refmax) is a success rate.
            assert all(0.0 <= value <= 1.0 for value in row[2:])

    def test_tiny_scale_meets_its_tolerance(self, tiny_result):
        assert check_deviations(tiny_result) == []

    def test_parallel_rows_bit_identical_to_serial(self, tiny_result):
        parallel = resilience.run(scale="tiny", jobs=2)
        assert parallel.rows == tiny_result.rows

    def test_check_deviations_flags_a_bad_row(self, tiny_result):
        broken = list(tiny_result.rows[0])
        tol = tiny_result.config["tolerance"]
        broken[3] = broken[2] + 2 * tol  # push "model" outside tolerance
        import dataclasses

        bad = dataclasses.replace(tiny_result, rows=[broken])
        violations = check_deviations(bad)
        assert len(violations) == 1
        assert "model=" in violations[0]
