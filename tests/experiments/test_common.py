"""Tests for the experiment infrastructure."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import (
    ExperimentResult,
    SCALE_ENV_VAR,
    active_scale,
    build_section52_grid,
    section52_profile,
)


class TestProfiles:
    def test_all_scales_defined(self):
        for scale in ("quick", "scaled", "paper"):
            profile = section52_profile(scale)
            assert profile.name == scale
            assert profile.n_peers >= 2

    def test_paper_profile_matches_section52(self):
        profile = section52_profile("paper")
        assert profile.n_peers == 20_000
        assert profile.maxl == 10
        assert profile.refmax == 20
        assert profile.recmax == 2
        assert profile.p_online == 0.3
        assert profile.query_key_length == 9

    def test_scaled_profile_preserves_ratios(self):
        profile = section52_profile("scaled")
        # mean replication ballpark of the paper's ~19.5
        assert 8 <= profile.n_peers / 2**profile.maxl <= 40
        # same refmax so eq.(3) per-level survival is identical
        assert profile.refmax == 20

    def test_config_property(self):
        config = section52_profile("quick").config
        assert config.recursion_fanout == 2

    def test_cache_key_distinguishes_profiles(self):
        assert (
            section52_profile("quick").cache_key()
            != section52_profile("paper").cache_key()
        )


class TestActiveScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert active_scale() == "scaled"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "quick")
        assert active_scale() == "quick"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, " PAPER ")
        assert active_scale() == "paper"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "huge")
        with pytest.raises(ValueError):
            active_scale()


class TestGridCache:
    def test_build_and_cache_roundtrip(self, tmp_path):
        profile = section52_profile("quick")
        tiny = profile.__class__(
            **{**profile.__dict__, "name": "tiny", "n_peers": 60, "maxl": 3,
               "refmax": 3, "max_exchanges": 200_000}
        )
        first = build_section52_grid(tiny, cache_dir=tmp_path)
        cache_files = list(tmp_path.glob("*.json*"))
        assert len(cache_files) == 1
        second = build_section52_grid(tiny, cache_dir=tmp_path)
        assert [p.path for p in first.peers()] == [p.path for p in second.peers()]

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        profile = section52_profile("quick")
        tiny = profile.__class__(
            **{**profile.__dict__, "name": "tiny2", "n_peers": 40, "maxl": 3,
               "refmax": 2, "max_exchanges": 200_000}
        )
        build_section52_grid(tiny, cache_dir=tmp_path, use_cache=False)
        assert list(tmp_path.glob("*.json*")) == []


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            headers=["a", "b"],
            rows=[[1, 2.5], [3, 4.0]],
            config={"n": 1},
            notes="shape note",
            extra_text="figure text",
        )

    def test_to_text_contains_everything(self):
        text = self._result().to_text()
        assert "[demo] Demo" in text
        assert "shape note" in text
        assert "figure text" in text
        assert "| a" in text

    def test_save_writes_csv_and_json(self, tmp_path):
        self._result().save(tmp_path)
        csv_text = (tmp_path / "demo.csv").read_text(encoding="utf-8")
        assert csv_text.startswith("a,b")
        payload = json.loads((tmp_path / "demo.json").read_text(encoding="utf-8"))
        assert payload["experiment_id"] == "demo"
        assert payload["rows"] == [[1, 2.5], [3, 4.0]]
        assert payload["config"] == {"n": 1}


class TestCacheDirOverride:
    def test_env_override(self, monkeypatch, tmp_path):
        from repro.experiments.common import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_default_under_benchmarks(self, monkeypatch):
        from repro.experiments.common import default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.name == ".cache"
        assert path.parent.name == "benchmarks"
