"""Smoke + shape tests for every experiment runner at tiny scale.

These don't assert the paper's absolute numbers (the benchmarks do the
full-size runs); they assert the *structure* of each result and the cheap
shape invariants that must hold even at toy sizes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    ablations,
    analysis_example,
    fig4_replicas,
    fig5_update_strategies,
    scaling_comparison,
    search_reliability,
    table1_construction_scaling,
    table2_maxl,
    table3_recmax,
    table4_refmax,
    table6_tradeoff,
)
from repro.experiments.common import section52_profile


@pytest.fixture(scope="module")
def tiny_profile():
    base = section52_profile("quick")
    return dataclasses.replace(
        base,
        name="tiny",
        n_peers=150,
        maxl=4,
        refmax=5,
        n_searches=200,
        n_updates=5,
        queries_per_update=3,
        max_exchanges=500_000,
    )


@pytest.fixture(scope="module")
def tiny_grid(tiny_profile):
    from repro.experiments.common import build_section52_grid

    return build_section52_grid(tiny_profile, use_cache=False)


class TestConstructionTables:
    def test_table1_structure_and_linearity(self):
        result = table1_construction_scaling.run(
            peer_counts=(60, 120), recmax_values=(0, 2), maxl=3
        )
        assert result.experiment_id == "table1"
        assert len(result.rows) == 2
        n_small, n_large = result.rows[0], result.rows[1]
        # e grows with N but e/N stays within a small factor (linearity)
        assert n_large[1] > n_small[1]
        assert n_large[2] < 4 * n_small[2]

    def test_table1_paper_column_present_at_paper_sizes(self):
        result = table1_construction_scaling.run(
            peer_counts=(200,), recmax_values=(0,), maxl=3
        )
        assert result.rows[0][3] == 15942  # paper e for (200, 0)

    def test_table2_ratio_column(self):
        result = table2_maxl.run(
            n_peers=80, maxl_values=(2, 3), recmax_values=(0,), seed=5
        )
        assert result.rows[0][3] is None  # first level has no ratio
        assert result.rows[1][3] > 1.0  # deeper costs more

    def test_table3_reports_optimum(self):
        result = table3_recmax.run(
            n_peers=80, maxl=4, recmax_values=(0, 2), seed=5
        )
        assert result.config["optimal_recmax"] in (0, 2)
        assert result.rows[0][1] > result.rows[1][1]  # recursion helps

    def test_table4_and_5_variants(self):
        unbounded = table4_refmax.run(
            bounded_fanout=False, n_peers=120, maxl=3,
            refmax_values=(1, 3), seed=5,
        )
        bounded = table4_refmax.run(
            bounded_fanout=True, n_peers=120, maxl=3,
            refmax_values=(1, 3), seed=5,
        )
        assert unbounded.experiment_id == "table4"
        assert bounded.experiment_id == "table5"
        assert unbounded.config["fanout"] is None
        assert bounded.config["fanout"] == 2


class TestSection52Experiments:
    def test_fig4_histogram_totals(self, tiny_profile, tiny_grid):
        result = fig4_replicas.run(tiny_profile, grid=tiny_grid)
        assert sum(count for _, count in result.rows) == tiny_profile.n_peers
        assert result.config["mean_replication"] > 1

    def test_search_reliability_row(self, tiny_profile, tiny_grid):
        result = search_reliability.run(
            tiny_profile, grid=tiny_grid, n_searches=150
        )
        (row,) = result.rows
        assert row[0] == 150
        success_rate = row[1]
        assert 0.0 <= success_rate <= 1.0
        # refmax=5 at p=0.3 over 3-bit queries: should mostly succeed
        assert success_rate > 0.5

    def test_fig5_bfs_dominates(self, tiny_profile, tiny_grid):
        result = fig5_update_strategies.run(
            tiny_profile, grid=tiny_grid, trials=10
        )
        by_strategy = {}
        for strategy, effort, messages, coverage in result.rows:
            by_strategy.setdefault(strategy, []).append((messages, coverage))
        assert set(by_strategy) == {
            "repeated DFS", "DFS + buddies", "breadth-first"
        }
        # BFS best coverage must beat single-DFS coverage
        bfs_best = max(c for _, c in by_strategy["breadth-first"])
        dfs_first = by_strategy["repeated DFS"][0][1]
        assert bfs_best > dfs_first

    def test_table6_shape(self, tiny_profile, tiny_grid):
        result = table6_tradeoff.run(
            tiny_profile,
            grid=tiny_grid,
            n_updates=5,
            queries_per_update=3,
            recbreadth_values=(2,),
            repetition_values=(1, 2),
        )
        assert len(result.rows) == 4  # 2 repetitions x 2 search modes
        repetitive = [r for r in result.rows if r[0] == "repetitive"]
        single = [r for r in result.rows if r[0] == "non-repetitive"]
        # repetitive search succeeds at least as often as single search
        assert min(r[3] for r in repetitive) >= max(0.0, min(s[3] for s in single) - 1e-9)
        # insertion cost grows with repetition
        assert repetitive[1][5] >= repetitive[0][5]


class TestArrayCoreExperiments:
    """The §5.2 experiments accept ``core="array"`` with an injected
    engine (mirroring the *grid* parameter) and record the core in the
    result config; shape invariants match the object core's."""

    @pytest.fixture()
    def tiny_engine(self, tiny_profile, tiny_grid):
        pytest.importorskip("numpy")
        from repro.fast import ArrayGrid
        from repro.fast.query import BatchQueryEngine

        return BatchQueryEngine.from_arraygrid(
            ArrayGrid.from_pgrid(tiny_grid),
            seed=77,
            p_online=tiny_profile.p_online,
        )

    def test_search_reliability_array(self, tiny_profile, tiny_engine):
        result = search_reliability.run(
            tiny_profile, core="array", array_engine=tiny_engine, n_searches=150
        )
        assert result.config["core"] == "array"
        (row,) = result.rows
        assert row[0] == 150
        assert 0.5 < row[1] <= 1.0

    def test_fig5_array(self, tiny_profile, tiny_engine):
        result = fig5_update_strategies.run(
            tiny_profile, core="array", array_engine=tiny_engine, trials=10
        )
        assert result.config["core"] == "array"
        by_strategy = {}
        for strategy, effort, messages, coverage in result.rows:
            assert 0.0 <= coverage <= 1.0
            by_strategy.setdefault(strategy, []).append((messages, coverage))
        assert set(by_strategy) == {
            "repeated DFS", "DFS + buddies", "breadth-first"
        }
        bfs_best = max(c for _, c in by_strategy["breadth-first"])
        dfs_first = by_strategy["repeated DFS"][0][1]
        assert bfs_best > dfs_first

    def test_table6_array(self, tiny_profile, tiny_engine):
        result = table6_tradeoff.run(
            tiny_profile,
            core="array",
            array_engine=tiny_engine,
            n_updates=5,
            queries_per_update=3,
            recbreadth_values=(2,),
            repetition_values=(1, 2),
        )
        assert result.config["core"] == "array"
        assert len(result.rows) == 4
        for row in result.rows:
            assert 0.0 <= row[3] <= 1.0  # success rate
            assert row[4] >= 0 and row[5] >= 0  # query/insertion cost

    def test_unknown_core_rejected(self, tiny_profile):
        for runner in (
            search_reliability.run,
            fig5_update_strategies.run,
            table6_tradeoff.run,
        ):
            with pytest.raises(ValueError, match="unknown core"):
                runner(tiny_profile, core="simd")


class TestComparisonAndAnalysis:
    def test_scaling_comparison_shapes(self):
        result = scaling_comparison.run(
            peer_counts=(64, 256), items_per_peer=2, queries=60, seed=9
        )
        small, large = result.rows
        # flooding grows ~linearly; P-Grid sub-linearly
        assert large[7] > 2.5 * small[7]
        assert large[1] < 2.5 * small[1]
        # central query stays a single message
        assert small[4] == large[4] == 1

    def test_analysis_example_matches_paper(self):
        result = analysis_example.run()
        values = {row[0]: row[1] for row in result.rows}
        assert values["key length k"] == 10
        assert values["min peers (eq. 2)"] == 20409
        assert values["success probability (eq. 3)"] > 0.99


class TestAblations:
    def test_case4_refs_rows(self):
        result = ablations.run_case4_refs(
            n_peers=120, maxl=4, refmax=3, n_searches=150, seed=3
        )
        variants = [row[0] for row in result.rows]
        assert variants == ["paper (forward only)", "mutual refs"]
        for row in result.rows:
            assert 0.0 <= row[3] <= 1.0

    def test_online_prob_monotone(self):
        result = ablations.run_online_prob(
            n_peers=150, maxl=4, refmax=4,
            probabilities=(0.2, 0.9), n_searches=200, seed=3,
        )
        low, high = result.rows
        assert high[1] >= low[1]  # more availability, more success
        assert high[2] >= low[2]  # bound is monotone too

    def test_skew_increases_load_imbalance(self):
        result = ablations.run_skew(
            n_peers=120, maxl=4, refmax=3, n_items=400,
            n_queries=400, seed=3,
        )
        uniform, zipf = result.rows
        assert zipf[4] > uniform[4]  # query-load gini grows under skew

    def test_ref_exchange_rows(self):
        result = ablations.run_ref_exchange(
            n_peers=120, maxl=4, refmax=3, n_searches=150, seed=3
        )
        assert [row[0] for row in result.rows] == [
            "paper (level lc only)",
            "all shared levels",
        ]


class TestNewExperiments:
    def test_convergence_trajectory_monotone(self):
        from repro.experiments import convergence

        result = convergence.run(n_peers=120, maxl=4, sample_every=60)
        by_recmax = {}
        for recmax, exchanges, depth in result.rows:
            by_recmax.setdefault(recmax, []).append((exchanges, depth))
        for recmax, points in by_recmax.items():
            exchanges = [e for e, _ in points]
            depths = [d for _, d in points]
            assert exchanges == sorted(exchanges), recmax
            assert depths == sorted(depths), recmax
        # At this toy size recursion gives no big edge (its advantage grows
        # with maxl — see T2); just require the same cost class.  The
        # benchmark asserts strict dominance at the paper's size.
        finals = result.config["final_exchanges"]
        assert finals[2] < 1.5 * finals[0]

    def test_adaptive_split_balances_storage(self):
        result = ablations.run_adaptive_split(
            n_peers=256, items_per_peer=6, key_length=12,
            uniform_maxl=5, adaptive_maxl=12, split_min_items=4,
            meetings_per_peer=50, seed=5,
        )
        fixed, adaptive = result.rows
        assert fixed[0] == "fixed depth"
        # data-driven splitting deepens the dense half more than the
        # sparse half...
        assert adaptive[2] > adaptive[3]
        # ...and improves storage balance over the fixed-depth baseline.
        assert adaptive[4] < fixed[4]

    def test_membership_churn_recovers(self):
        result = ablations.run_membership_churn(
            n_peers=200, maxl=5, refmax=2,
            replace_fraction=0.4, n_searches=400, seed=5,
        )
        intact, churned, repaired = (row[2] for row in result.rows)
        assert churned < intact
        assert repaired > churned
        assert repaired > 0.9

    def test_construction_under_churn_monotone(self):
        result = ablations.run_construction_under_churn(
            n_peers=120, maxl=4, probabilities=(0.3, 1.0),
            duration=40.0, seed=6,
        )
        low, high = sorted(result.rows, key=lambda row: row[0])
        assert high[1] > low[1]      # more meetings happen when online
        assert high[3] >= low[3]     # and more depth is reached

    def test_shortcut_cache_shapes(self):
        result = ablations.run_shortcut_cache(
            n_peers=150, maxl=4, refmax=4, n_queries=600,
            cache_capacity=32, seed=7,
        )
        rows = {(row[0], row[1]): row for row in result.rows}
        zipf_label = next(
            label for label, _ in rows if label.startswith("zipf")
        )
        cached = rows[(zipf_label, "shortcut cache")]
        plain = rows[(zipf_label, "plain")]
        assert cached[4] > 0.05          # the cache does hit on zipf
        assert cached[3] <= plain[3] + 0.5  # and does not cost more

    def test_kary_vs_binary_tiny(self):
        result = ablations.run_kary_vs_binary(
            n_peers=600, n_words=120, n_lookups=120,
            kary_populate_meetings_per_peer=8, seed=8,
        )
        binary, kary = result.rows
        assert binary[0] == "binary reduction"
        # storage trade visible even at tiny scale
        assert kary[3] > binary[3]
        # the binary reduction resolves indexed words reliably
        assert binary[4] > 0.9

    def test_proximity_latency_reduction(self):
        result = ablations.run_proximity(
            n_peers=200, maxl=5, refmax=3, n_searches=500, seed=9
        )
        rows = {(row[0], row[1]): row for row in result.rows}
        assert rows[("proximity", "proximity")][4] < rows[("random", "random")][4]

    def test_meeting_schedulers_converge(self):
        result = ablations.run_meeting_schedulers(
            n_peers=120, maxl=4, seed=10
        )
        assert all(row[1] for row in result.rows)      # all converge
        assert all(row[5] == 0 for row in result.rows)  # clean audits
