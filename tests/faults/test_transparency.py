"""Fault machinery must be a strict no-op when disabled.

Mirrors the PR 1 probe-transparency suite: a `FaultInjector` driving an
empty `FaultPlan`, a `RetryPolicy` of one attempt, or a healer whose
threshold is never reached must leave results, traffic accounting, and —
the strong form — the RNG streams bit-identical to runs without them.
This is what lets experiments attach the fault stack unconditionally and
trust that the baseline column really is the baseline.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import keys as keyspace
from repro.core.search import SearchEngine
from repro.faults import NO_RETRY, FaultInjector, FaultPlan, RefHealer
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from repro.sim.churn import BernoulliChurn
from tests.conftest import build_grid

QUERIES = ("0000", "0101", "1101")
STARTS = (0, 13, 31)


def _grid_pair(seed: int, churn_seed: int | None = None, p_online: float = 0.7):
    plain = build_grid(48, maxl=4, refmax=2, seed=seed)
    wrapped = build_grid(48, maxl=4, refmax=2, seed=seed)
    if churn_seed is not None:
        plain.online_oracle = BernoulliChurn(p_online, random.Random(churn_seed))
        wrapped.online_oracle = BernoulliChurn(p_online, random.Random(churn_seed))
    return plain, wrapped


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), churn_seed=st.integers(0, 10**6))
def test_empty_plan_injector_is_transport_transparent(seed, churn_seed):
    """Networked searches through an empty-plan injector are bit-identical."""
    plain_grid, faulty_grid = _grid_pair(seed, churn_seed)
    plain_transport = LocalTransport(plain_grid)
    injector = FaultInjector(LocalTransport(faulty_grid), FaultPlan(seed=seed))
    plain_nodes = attach_nodes(plain_grid, plain_transport)
    faulty_nodes = attach_nodes(faulty_grid, injector)
    for start in STARTS:
        for query in QUERIES:
            assert plain_nodes[start].search(query) == faulty_nodes[start].search(
                query
            )
    assert plain_transport.stats.snapshot() == injector.stats.snapshot()
    assert injector.fault_stats.snapshot() == {
        "injected_drops": 0,
        "injected_latency": 0.0,
        "crashes": 0,
        "restarts": 0,
        "stale_refs_injected": 0,
        "crashed_contacts": 0,
        "availability_misses": 0,
    }
    assert plain_grid.rng.getstate() == faulty_grid.rng.getstate()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), churn_seed=st.integers(0, 10**6))
def test_empty_plan_oracle_is_churn_transparent(seed, churn_seed):
    """Composing the fault oracle over churn must not shift the churn stream."""
    plain_grid, faulty_grid = _grid_pair(seed, churn_seed, p_online=0.5)
    injector = FaultInjector(LocalTransport(faulty_grid), FaultPlan(seed=seed))
    injector.install_oracle()
    plain = SearchEngine(plain_grid)
    faulty = SearchEngine(faulty_grid)
    for start in STARTS:
        for query in QUERIES:
            assert plain.query_from(start, query) == faulty.query_from(start, query)
    assert plain_grid.rng.getstate() == faulty_grid.rng.getstate()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), churn_seed=st.integers(0, 10**6))
def test_single_attempt_retry_is_engine_transparent(seed, churn_seed):
    """retry=NO_RETRY exercises the resilient slow path yet changes nothing."""
    plain_grid, retry_grid = _grid_pair(seed, churn_seed)
    plain = SearchEngine(plain_grid)
    retried = SearchEngine(retry_grid, retry=NO_RETRY)
    for start in STARTS:
        for query in QUERIES:
            assert plain.query_from(start, query) == retried.query_from(start, query)
    assert plain_grid.rng.getstate() == retry_grid.rng.getstate()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), churn_seed=st.integers(0, 10**6))
def test_unreachable_threshold_healer_is_engine_transparent(seed, churn_seed):
    """A healer that never evicts observes contacts without altering them."""
    plain_grid, healed_grid = _grid_pair(seed, churn_seed, p_online=0.6)
    healer = RefHealer(healed_grid, evict_after=10**9)
    plain = SearchEngine(plain_grid)
    healed = SearchEngine(healed_grid, healer=healer)
    for start in STARTS:
        for query in QUERIES:
            assert plain.query_from(start, query) == healed.query_from(start, query)
    assert healer.stats.evictions == 0
    assert plain_grid.rng.getstate() == healed_grid.rng.getstate()


def test_random_queries_with_full_disabled_stack():
    """All three disabled pieces together, over a random workload."""
    plain_grid, stacked_grid = _grid_pair(404, churn_seed=405)
    injector = FaultInjector(LocalTransport(stacked_grid), FaultPlan())
    injector.install_oracle()
    healer = RefHealer(stacked_grid, evict_after=10**9)
    plain = SearchEngine(plain_grid)
    stacked = SearchEngine(stacked_grid, retry=NO_RETRY, healer=healer)
    rng = random.Random(7)
    for _ in range(60):
        key = keyspace.random_key(4, rng)
        start = rng.choice(plain_grid.addresses())
        assert plain.query_from(start, key) == stacked.query_from(start, key)
    assert plain_grid.rng.getstate() == stacked_grid.rng.getstate()
