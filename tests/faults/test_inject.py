"""FaultPlan validation and FaultInjector semantics (drops, crashes, stale refs)."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.errors import InvalidConfigError, PeerOfflineError, TransportError
from repro.faults import FaultInjector, FaultPlan
from repro.net.message import MessageKind, ping, pong
from repro.net.transport import LocalTransport
from repro.sim.churn import FixedOnlineSet
from tests.conftest import build_grid


def make_injector(plan: FaultPlan | None = None, n_peers: int = 4):
    grid = PGrid(PGridConfig(), rng=random.Random(0))
    grid.add_peers(n_peers)
    transport = LocalTransport(grid)
    injector = FaultInjector(transport, plan)
    for address in grid.addresses():
        injector.register(address, pong)
    return grid, transport, injector


class TestFaultPlan:
    def test_defaults_are_empty(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.to_dict()["availability"] is None

    def test_nonempty_detection(self):
        assert not FaultPlan(drop_probability=0.1).is_empty()
        assert not FaultPlan(availability=0.9).is_empty()
        assert not FaultPlan(crash_probability=0.1).is_empty()
        # A different seed alone still injects nothing.
        assert FaultPlan(seed=99).is_empty()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_probability": 1.0},
            {"drop_probability": -0.1},
            {"crash_probability": 1.5},
            {"stale_ref_probability": -0.5},
            {"availability": 0.0},
            {"availability": 1.2},
            {"extra_latency": -1.0},
            {"crash_downtime": -1},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(InvalidConfigError):
            FaultPlan(**kwargs)


class TestDelegation:
    def test_transport_interface_passthrough(self):
        grid, transport, injector = make_injector()
        assert injector.grid is grid
        assert injector.stats is transport.stats
        reply = injector.send(ping(0, 1))
        assert reply.kind is MessageKind.PONG
        assert injector.count(MessageKind.PING) == 1
        assert injector.is_reachable(1)
        injector.unregister(1)
        assert not injector.is_reachable(1)


class TestDrops:
    def test_drops_raise_and_count(self):
        _, transport, injector = make_injector(FaultPlan(drop_probability=0.5))
        dropped = delivered = 0
        for _ in range(200):
            try:
                injector.send(ping(0, 1))
                delivered += 1
            except TransportError:
                dropped += 1
        assert dropped == injector.fault_stats.injected_drops
        assert dropped == transport.stats.dropped
        assert delivered == transport.count(MessageKind.PING)
        # With p=0.5 over 200 sends both outcomes must occur.
        assert dropped > 0 and delivered > 0

    def test_same_seed_same_drops(self):
        outcomes = []
        for _ in range(2):
            _, _, injector = make_injector(FaultPlan(seed=3, drop_probability=0.3))
            outcomes.append(
                [injector.try_send(ping(0, 1)) is None for _ in range(50)]
            )
        assert outcomes[0] == outcomes[1]


class TestLatency:
    def test_extra_latency_accrues_on_delivery_only(self):
        _, transport, injector = make_injector(FaultPlan(extra_latency=2.5))
        injector.send(ping(0, 1))
        injector.send(ping(0, 2))
        assert transport.stats.simulated_time == pytest.approx(5.0)
        assert injector.fault_stats.injected_latency == pytest.approx(5.0)


class TestCrashes:
    def test_crash_blocks_contact_until_restart(self):
        _, transport, injector = make_injector()
        injector.crash(1)
        assert not injector.is_reachable(1)
        with pytest.raises(PeerOfflineError):
            injector.send(ping(0, 1))
        assert injector.fault_stats.crashed_contacts == 1
        assert transport.stats.offline_failures == 1
        injector.restart(1)
        assert injector.fault_stats.restarts == 1
        assert injector.send(ping(0, 1)).kind is MessageKind.PONG

    def test_downtime_ticks_then_auto_restart(self):
        _, _, injector = make_injector()
        injector.crash(1, downtime=2)
        for _ in range(2):
            assert injector.try_send(ping(0, 1)) is None
        # Third contact succeeds: downtime expired, peer auto-restarted.
        assert injector.try_send(ping(0, 1)) is not None
        assert injector.fault_stats.restarts == 1
        assert 1 not in injector.crashed

    def test_crash_is_idempotent(self):
        _, _, injector = make_injector()
        injector.crash(1)
        injector.crash(1)
        assert injector.fault_stats.crashes == 1
        injector.restart(2)  # a real peer that never crashed — free no-op
        assert injector.fault_stats.restarts == 0

    def test_crash_unknown_peer_rejected(self):
        _, _, injector = make_injector(n_peers=4)
        with pytest.raises(InvalidConfigError, match="no such peer"):
            injector.crash(9)
        assert injector.fault_stats.crashes == 0

    def test_restart_unknown_peer_rejected(self):
        _, _, injector = make_injector(n_peers=4)
        with pytest.raises(InvalidConfigError, match="no such peer"):
            injector.restart(9)
        assert injector.fault_stats.restarts == 0

    def test_crash_random_is_seed_deterministic(self):
        victims = []
        for _ in range(2):
            _, _, injector = make_injector(FaultPlan(seed=11), n_peers=32)
            victims.append(injector.crash_random(0.25))
        assert victims[0] == victims[1]
        assert len(victims[0]) == 8
        assert set(victims[0]) == set(injector.crashed)
        with pytest.raises(ValueError):
            injector.crash_random(1.5)


class TestStaleRefs:
    def test_inject_stale_refs_creates_dangling_audit_findings(self):
        grid = build_grid(32, maxl=4, refmax=2, seed=5)
        injector = FaultInjector(LocalTransport(grid), FaultPlan(seed=7))
        assert grid.audit_routing() == []
        corrupted = injector.inject_stale_refs(0.5)
        assert corrupted == injector.fault_stats.stale_refs_injected
        assert corrupted > 0
        findings = grid.audit_routing()
        assert len([f for f in findings if "dangling ref" in f]) == corrupted
        # The log records which (owner, level, old_ref) slots were hit.
        assert len(injector.fault_stats.stale_log) == corrupted

    def test_stale_addresses_never_collide_with_peers(self):
        grid = build_grid(16, maxl=3, refmax=2, seed=5)
        injector = FaultInjector(LocalTransport(grid), FaultPlan(seed=7))
        injector.inject_stale_refs(1.0)
        live = set(grid.addresses())
        fabricated = [
            ref
            for address in live
            for _, refs in grid.peer(address).routing.iter_levels()
            for ref in refs
            if ref not in live
        ]
        assert len(fabricated) == injector.fault_stats.stale_refs_injected
        assert all(ref > max(live) for ref in fabricated)


class TestFaultOracle:
    def test_crashed_peers_report_offline(self):
        grid, _, injector = make_injector()
        oracle = injector.install_oracle()
        assert grid.online_oracle is oracle
        injector.crash(2)
        assert not grid.is_online(2)
        assert grid.is_online(1)

    def test_availability_coin_composes_over_inner(self):
        grid, _, injector = make_injector(FaultPlan(seed=1, availability=0.5))
        inner = FixedOnlineSet(grid.addresses())
        injector.install_oracle(inner)
        results = [grid.is_online(1) for _ in range(200)]
        assert any(results) and not all(results)
        misses = injector.fault_stats.availability_misses
        assert misses == results.count(False)
        # The inner oracle has the final word: a peer it marks down stays down.
        inner.set_online(1, False)
        assert not any(grid.is_online(1) for _ in range(50))

    def test_empty_plan_oracle_is_passthrough(self):
        grid, _, injector = make_injector(FaultPlan())
        inner = FixedOnlineSet([1, 2])
        injector.install_oracle(inner)
        assert grid.is_online(1)
        assert not grid.is_online(3)
        assert injector.fault_stats.availability_misses == 0
