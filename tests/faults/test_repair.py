"""RefHealer: consecutive-failure eviction and replica-directory refill."""

from __future__ import annotations

import pytest

from repro.faults import RefHealer
from repro.obs.probe import Probe
from repro.sim.churn import FixedOnlineSet
from tests.conftest import assert_routing_consistent, build_grid


def first_routed_ref(grid, level: int = 1):
    """Some (owner, level, ref) triple present in the built grid."""
    for address in grid.addresses():
        refs = grid.peer(address).routing.refs(level)
        if refs:
            return address, level, refs[0]
    raise AssertionError("built grid has no routed refs")


class _RepairProbe(Probe):
    def __init__(self):
        self.calls = []

    def on_repair(self, address, *, dead_refs_dropped, refs_added, messages):
        self.calls.append((address, dead_refs_dropped, refs_added, messages))


class TestFailureAccounting:
    def test_below_threshold_keeps_the_ref(self):
        grid = build_grid(32, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=3)
        owner, level, ref = first_routed_ref(grid)
        assert not healer.record_failure(owner, level, ref)
        assert not healer.record_failure(owner, level, ref)
        assert healer.pending_failures(owner, level, ref) == 2
        assert ref in grid.peer(owner).routing.refs(level)
        assert healer.stats.evictions == 0

    def test_success_resets_the_counter(self):
        grid = build_grid(32, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=2)
        owner, level, ref = first_routed_ref(grid)
        healer.record_failure(owner, level, ref)
        healer.record_success(owner, level, ref)
        assert healer.pending_failures(owner, level, ref) == 0
        # The next failure starts from scratch — still no eviction.
        assert not healer.record_failure(owner, level, ref)
        assert healer.stats.successes_recorded == 1

    def test_counters_are_per_reference(self):
        grid = build_grid(32, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=2)
        owner, level, ref = first_routed_ref(grid)
        healer.record_failure(owner, level, ref)
        assert healer.pending_failures(owner + 1, level, ref) == 0
        assert healer.pending_failures(owner, level, ref + 1) == 0

    def test_evict_after_must_be_positive(self):
        grid = build_grid(16, maxl=3, refmax=2, seed=9)
        with pytest.raises(ValueError):
            RefHealer(grid, evict_after=0)


class TestEvictionAndRefill:
    def test_threshold_evicts_and_refills_validly(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=3)
        owner, level, ref = first_routed_ref(grid)
        for _ in range(2):
            healer.record_failure(owner, level, ref)
        assert healer.record_failure(owner, level, ref)  # crossed threshold
        refs = grid.peer(owner).routing.refs(level)
        assert ref not in refs
        assert healer.stats.evictions == 1
        assert healer.stats.refills == 1
        # The replacement respects the §2 invariant for the whole table.
        assert_routing_consistent(grid)
        peer = grid.peer(owner)
        target = peer.prefix(level - 1) + ("1" if peer.path[level - 1] == "0" else "0")
        for replacement in refs:
            assert grid.peer(replacement).path.startswith(target)

    def test_refill_false_is_pure_eviction(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=1, refill=False)
        owner, level, ref = first_routed_ref(grid)
        before = list(grid.peer(owner).routing.refs(level))
        assert healer.record_failure(owner, level, ref)
        after = grid.peer(owner).routing.refs(level)
        assert ref not in after
        assert len(after) == len(before) - 1
        assert healer.stats.refills == 0

    def test_all_offline_falls_back_rather_than_shrinking(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=9)
        grid.online_oracle = FixedOnlineSet()  # everyone reports offline
        healer = RefHealer(grid, evict_after=1)
        owner, level, ref = first_routed_ref(grid)
        size_before = len(grid.peer(owner).routing.refs(level))
        assert healer.record_failure(owner, level, ref)
        # §2 availability is transient: install an offline candidate anyway.
        assert len(grid.peer(owner).routing.refs(level)) == size_before
        assert healer.stats.offline_refills == 1
        assert healer.stats.refills == 1
        assert_routing_consistent(grid)

    def test_probe_sees_each_repair(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=9)
        probe = _RepairProbe()
        healer = RefHealer(grid, evict_after=1, probe=probe)
        owner, level, ref = first_routed_ref(grid)
        healer.record_failure(owner, level, ref)
        assert len(probe.calls) == 1
        address, dropped, added, messages = probe.calls[0]
        assert address == owner
        assert dropped == 1
        assert added == 1
        assert messages == healer.stats.probes_sent

    def test_evicting_unknown_owner_is_noop(self):
        grid = build_grid(16, maxl=3, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=1)
        assert healer.record_failure(10_000, 1, 0)
        assert healer.stats.evictions == 0

    def test_already_removed_ref_not_double_counted(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=9)
        healer = RefHealer(grid, evict_after=1)
        owner, level, ref = first_routed_ref(grid)
        grid.peer(owner).routing.remove_ref(level, ref)
        assert healer.record_failure(owner, level, ref)
        assert healer.stats.evictions == 0
        assert healer.stats.refills == 0
