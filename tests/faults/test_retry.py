"""RetryPolicy: validation, backoff schedules, and the retried-send helper."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfigError, PeerOfflineError, TransportError
from repro.faults import NO_RETRY, RetryPolicy, send_with_retry


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"backoff_factor": 0.5},
            {"base_delay": 10.0, "max_delay": 5.0},
            {"deadline": 0.0},
            {"deadline": -3.0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(InvalidConfigError):
            RetryPolicy(**kwargs)


class TestBackoffSchedule:
    def test_exponential_schedule(self):
        policy = RetryPolicy(attempts=4, base_delay=1.0, backoff_factor=2.0,
                             max_delay=60.0)
        assert policy.schedule() == [1.0, 2.0, 4.0]
        assert policy.total_backoff() == 7.0

    def test_max_delay_caps_schedule(self):
        policy = RetryPolicy(attempts=6, base_delay=1.0, backoff_factor=3.0,
                             max_delay=5.0)
        assert policy.schedule() == [1.0, 3.0, 5.0, 5.0, 5.0]

    def test_delay_before_is_two_based(self):
        policy = RetryPolicy(attempts=3)
        with pytest.raises(ValueError):
            policy.delay_before(1)
        assert policy.delay_before(2) == policy.base_delay

    def test_no_retry_schedule_is_empty(self):
        assert NO_RETRY.schedule() == []
        assert NO_RETRY.total_backoff() == 0.0
        assert NO_RETRY.attempts == 1

    def test_effective_availability(self):
        policy = RetryPolicy(attempts=3)
        assert policy.effective_availability(0.0) == 0.0
        assert policy.effective_availability(1.0) == 1.0
        assert policy.effective_availability(0.5) == pytest.approx(0.875)
        with pytest.raises(ValueError):
            policy.effective_availability(1.5)


class _FlakyTransport:
    """Fails the first *failures* sends, then answers."""

    def __init__(self, failures: int, error=PeerOfflineError(0)):
        self.failures = failures
        self.error = error
        self.sends = 0

    def send(self, message):
        self.sends += 1
        if self.sends <= self.failures:
            raise self.error
        return ("reply", message)


class TestSendWithRetry:
    def test_first_attempt_success_costs_no_backoff(self):
        transport = _FlakyTransport(0)
        outcome = send_with_retry(transport, "msg", RetryPolicy(attempts=3))
        assert outcome.reply == ("reply", "msg")
        assert outcome.attempts == 1
        assert outcome.backoff == 0.0
        assert not outcome.gave_up

    def test_retries_until_success(self):
        transport = _FlakyTransport(2, error=TransportError("lost"))
        policy = RetryPolicy(attempts=4, base_delay=1.0, backoff_factor=2.0,
                             max_delay=60.0)
        outcome = send_with_retry(transport, "msg", policy)
        assert outcome.attempts == 3
        assert outcome.backoff == 3.0  # 1 + 2
        assert not outcome.gave_up

    def test_gives_up_after_attempts_without_raising(self):
        transport = _FlakyTransport(10)
        outcome = send_with_retry(transport, "msg", RetryPolicy(attempts=3))
        assert outcome.reply is None
        assert outcome.gave_up
        assert outcome.attempts == 3
        assert transport.sends == 3

    def test_deadline_forfeits_remaining_attempts(self):
        transport = _FlakyTransport(10)
        policy = RetryPolicy(attempts=5, base_delay=2.0, backoff_factor=2.0,
                             max_delay=60.0, deadline=5.0)
        outcome = send_with_retry(transport, "msg", policy)
        # Backoffs would be 2, 4, 8, ...; 2 fits the deadline, 2+4 does not.
        assert outcome.backoff == 2.0
        assert outcome.attempts == 2
        assert outcome.gave_up

    def test_default_policy_is_no_retry(self):
        transport = _FlakyTransport(1)
        outcome = send_with_retry(transport, "msg")
        assert outcome.gave_up
        assert outcome.attempts == 1
