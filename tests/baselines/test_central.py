"""Tests for the central and replicated index-server baselines."""

from __future__ import annotations

import random

import pytest

from repro.baselines.central import CentralIndexServer
from repro.baselines.replicated import ReplicatedIndexServers
from repro.core.storage import DataItem


class TestCentralServer:
    def test_publish_and_search(self):
        server = CentralIndexServer()
        assert server.publish(DataItem(key="0101"), holder=3) == 1
        result = server.search(0, "0101")
        assert result.found
        assert result.messages == 1
        assert server.holders("0101") == {3}

    def test_prefix_matching(self):
        server = CentralIndexServer()
        server.publish(DataItem(key="010111"), holder=1)
        assert server.search(0, "0101").found
        assert not server.search(0, "11").found

    def test_storage_grows_linearly_with_data(self):
        server = CentralIndexServer()
        for index in range(100):
            server.publish(DataItem(key=format(index, "08b")), holder=index)
        assert server.index_size == 100
        assert server.storage_per_node() == 100
        assert server.max_storage_any_node() == 100

    def test_query_load_counted(self):
        server = CentralIndexServer()
        for _ in range(25):
            server.search(0, "01")
        assert server.stats.queries_served == 25

    def test_downtime_fails_queries(self):
        server = CentralIndexServer(p_online=0.4, rng=random.Random(0))
        server.publish(DataItem(key="01"), holder=0)
        outcomes = [server.search(0, "01").found for _ in range(300)]
        assert any(outcomes) and not all(outcomes)
        assert server.stats.failures > 0

    def test_p_online_validated(self):
        with pytest.raises(ValueError):
            CentralIndexServer(p_online=0.0)


class TestReplicatedServers:
    def test_publish_writes_all_replicas(self):
        servers = ReplicatedIndexServers(3, rng=random.Random(1))
        assert servers.publish(DataItem(key="0110"), holder=2) == 3
        # every replica answers the query
        for _ in range(20):
            assert servers.search(0, "0110").found

    def test_replica_count_validated(self):
        with pytest.raises(ValueError):
            ReplicatedIndexServers(0)
        with pytest.raises(ValueError):
            ReplicatedIndexServers(2, p_online=1.5)

    def test_load_spreads_over_replicas(self):
        servers = ReplicatedIndexServers(4, rng=random.Random(2))
        servers.publish(DataItem(key="01"), holder=0)
        for _ in range(400):
            servers.search(0, "01")
        loads = servers.stats.queries_per_replica
        assert sum(loads) == 400
        assert min(loads) > 50  # roughly uniform

    def test_failover_retries_once(self):
        servers = ReplicatedIndexServers(
            2, p_online=0.5, rng=random.Random(3)
        )
        servers.publish(DataItem(key="01"), holder=0)
        results = [servers.search(0, "01") for _ in range(300)]
        assert any(r.messages == 2 for r in results)  # fail-over happened
        assert all(r.messages <= 2 for r in results)
        hit_rate = sum(r.found for r in results) / len(results)
        assert hit_rate > 0.6  # one retry lifts 0.5 to ~0.75

    def test_storage_per_replica_full_copy(self):
        servers = ReplicatedIndexServers(3, rng=random.Random(4))
        for index in range(50):
            servers.publish(DataItem(key=format(index, "07b")), holder=index)
        assert servers.index_size_per_replica == 50
        assert servers.storage_per_node() == 50
        assert servers.max_storage_any_node() == 50

    def test_stats_helpers(self):
        servers = ReplicatedIndexServers(2, rng=random.Random(5))
        servers.publish(DataItem(key="1"), holder=0)
        servers.search(0, "1")
        assert servers.stats.total_queries() == 1
        assert servers.stats.max_replica_load() == 1
