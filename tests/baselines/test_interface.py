"""Tests for the comparison-interface adapter over P-Grid."""

from __future__ import annotations

from repro.baselines.interface import PGridSearchSystem
from repro.core.storage import DataItem
from tests.conftest import build_grid


class TestPGridSearchSystem:
    def test_publish_then_search(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=41)
        system = PGridSearchSystem(grid)
        assert system.publish(DataItem(key="011010"), holder=5) == 0
        result = system.search(0, "011010")
        assert result.found
        assert result.messages <= 6

    def test_storage_metrics(self):
        grid = build_grid(32, maxl=3, refmax=2, seed=42)
        system = PGridSearchSystem(grid)
        assert system.storage_per_node() > 0
        assert system.max_storage_any_node() >= system.storage_per_node()
        before = system.storage_per_node()
        for index in range(32):
            system.publish(DataItem(key=format(index, "05b")), holder=index)
        assert system.storage_per_node() > before

    def test_empty_grid_storage(self):
        import random

        from repro.core.config import PGridConfig
        from repro.core.grid import PGrid

        grid = PGrid(PGridConfig(), rng=random.Random(0))
        system = PGridSearchSystem(grid)
        assert system.storage_per_node() == 0.0
