"""Tests for the Gnutella-style flooding baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.flooding import GnutellaNetwork
from repro.core.storage import DataItem
from repro.errors import InvalidKeyError


def network(n=50, **kwargs) -> GnutellaNetwork:
    kwargs.setdefault("rng", random.Random(1))
    return GnutellaNetwork(n, **kwargs)


class TestOverlay:
    def test_validation(self):
        with pytest.raises(ValueError):
            GnutellaNetwork(1)
        with pytest.raises(ValueError):
            GnutellaNetwork(5, extra_edges_per_peer=-1)
        with pytest.raises(ValueError):
            GnutellaNetwork(5, p_online=0.0)
        with pytest.raises(ValueError):
            GnutellaNetwork(5, default_ttl=0)

    def test_ring_guarantees_connectivity(self):
        net = network(20, extra_edges_per_peer=0)
        # every node has at least its two ring neighbours
        for address in range(20):
            assert len(net.neighbors(address)) >= 2

    def test_edges_are_symmetric(self):
        net = network(30)
        for address in range(30):
            for neighbor in net.neighbors(address):
                assert address in net.neighbors(neighbor)

    def test_average_degree_grows_with_extra_edges(self):
        sparse = network(40, extra_edges_per_peer=0)
        dense = network(40, extra_edges_per_peer=5)
        assert dense.average_degree() > sparse.average_degree()


class TestSearch:
    def test_local_hit_with_stop_on_hit_costs_nothing(self):
        net = network()
        net.publish(DataItem(key="0101"), holder=7)
        result = net.search(7, "0101", stop_on_hit=True)
        assert result.found
        assert result.messages == 0

    def test_gnutella_keeps_flooding_after_local_hit(self):
        net = network()
        net.publish(DataItem(key="0101"), holder=7)
        result = net.search(7, "0101")
        assert result.found
        assert result.messages > 0  # the flood still goes out

    def test_finds_remote_file(self):
        net = network(30)
        net.publish(DataItem(key="1100"), holder=15)
        result = net.search(0, "1100", ttl=30)
        assert result.found
        assert result.messages > 0

    def test_prefix_relation_matching(self):
        net = network(10)
        net.publish(DataItem(key="010111"), holder=3)
        assert net.search(3, "0101").found     # query is prefix of stored
        assert net.search(3, "01011101").found  # stored is prefix of query
        assert not net.search(3, "11", ttl=1).found or True  # may reach others

    def test_miss_returns_not_found(self):
        net = network(20)
        result = net.search(0, "0000", ttl=20)
        assert not result.found

    def test_ttl_limits_reach(self):
        net = network(60, extra_edges_per_peer=0)  # pure ring
        net.publish(DataItem(key="1111"), holder=30)
        assert not net.search(0, "1111", ttl=2).found
        assert net.search(0, "1111", ttl=40).found

    def test_message_cost_scales_with_population(self):
        costs = {}
        for n in (50, 200):
            net = GnutellaNetwork(n, rng=random.Random(2), default_ttl=20)
            result = net.search(0, "0101")  # miss: floods everyone
            costs[n] = result.messages
        assert costs[200] > 2.5 * costs[50]

    def test_flood_visits_each_peer_once(self):
        net = network(25)
        result = net.search(0, "0000", ttl=50)
        assert result.messages <= 24  # at most one delivery per other peer

    def test_offline_peers_skipped(self):
        net = GnutellaNetwork(
            40, rng=random.Random(3), p_online=0.3, default_ttl=20
        )
        net.search(0, "0101")
        assert net.stats.offline_skips > 0

    def test_invalid_inputs(self):
        net = network()
        with pytest.raises(InvalidKeyError):
            net.search(0, "01x")
        with pytest.raises(ValueError):
            net.search(0, "01", ttl=0)


class TestStatsAndStorage:
    def test_stats_accumulate(self):
        net = network(20)
        net.publish(DataItem(key="0011"), holder=5)
        net.search(0, "0011", ttl=20)
        net.search(0, "1100", ttl=20)
        assert net.stats.searches == 2
        assert net.stats.hits == 1
        assert net.stats.messages > 0

    def test_storage_is_only_neighbor_lists(self):
        net = network(20)
        assert net.storage_per_node() == pytest.approx(net.average_degree())
        assert net.max_storage_any_node() >= int(net.average_degree())
