"""Engine <-> node equivalence: one machine, two drivers.

The tentpole acceptance criterion of the sans-I/O refactor: the in-process
engines (:mod:`repro.core.search`) and the networked node
(:mod:`repro.net.node`) drive the *same* protocol machines, so on twin
grids (identical build seed) the same workload must produce identical
results, identical contact accounting, and — the strongest form —
identical grid-RNG states after every operation (bit-identical draw
streams).

Fault worlds are installed through :meth:`FaultInjector.install_oracle`
on *both* twins (same plan seed -> same availability coins, same crash
victims, same corrupted references), with the node attached to a bare
:class:`LocalTransport`, so the only difference between the two sides is
the driver.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import keys as keyspace
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.net.message import MessageKind
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from tests.conftest import build_grid


def twin_grids(seed: int, n: int = 96, maxl: int = 5, refmax: int = 2):
    """Two independently built but bit-identical grids."""
    return (
        build_grid(n, maxl=maxl, refmax=refmax, seed=seed),
        build_grid(n, maxl=maxl, refmax=refmax, seed=seed),
    )


def populate(grid, items):
    """Install index entries on every replica (deterministic per grid)."""
    for key, holder, version in items:
        for address in grid.replicas_for_key(key):
            grid.peer(address).store.add_ref(
                DataRef(key=key, holder=holder, version=version)
            )


def install_faults(grid, seed: int, *, availability=0.85):
    """One fault world, expressed purely through the grid's oracle.

    Returns the injector (whose transport is never used — the node runs
    over a bare one, so both drivers see the fault plan only through
    ``grid.is_online`` and the corrupted routing tables).
    """
    injector = FaultInjector(
        LocalTransport(grid), FaultPlan(seed=seed, availability=availability)
    )
    injector.crash_random(0.10, downtime=4)
    injector.inject_stale_refs(0.15)
    injector.install_oracle()
    return injector


ITEMS = [("10110", 4, 1), ("01011", 9, 2), ("00100", 2, 1), ("11101", 5, 3)]


class TestDepthFirstEquivalence:
    def test_results_and_rng_stream_identical(self):
        a, b = twin_grids(seed=41)
        populate(a, ITEMS)
        populate(b, ITEMS)
        engine = SearchEngine(a)
        transport = LocalTransport(b)
        nodes = attach_nodes(b, transport)
        picker = random.Random(3)
        for _ in range(40):
            key = keyspace.random_key(5, picker)
            start = picker.choice(a.addresses())
            expected = engine.query_from(start, key)
            before = transport.count(MessageKind.QUERY)
            outcome = nodes[start].search(key)
            assert outcome.found == expected.found
            assert outcome.responder == expected.responder
            assert outcome.messages_sent == expected.messages
            assert outcome.failed_attempts == expected.failed_attempts
            assert outcome.retry_delay == expected.retry_delay
            assert outcome.data_refs == expected.data_refs
            # every counted message is exactly one delivered QUERY
            assert (
                transport.count(MessageKind.QUERY) - before
                == outcome.messages_sent
            )
            # the strongest claim: both drivers consumed the grid RNG
            # bit-identically
            assert a.rng.getstate() == b.rng.getstate()

    def test_equivalence_under_faults_and_retry(self):
        a, b = twin_grids(seed=43)
        install_faults(a, seed=11)
        install_faults(b, seed=11)
        retry = RetryPolicy(attempts=3, base_delay=0.5, deadline=4.0)
        engine = SearchEngine(a, retry=retry)
        transport = LocalTransport(b)
        nodes = attach_nodes(b, transport, retry=retry)
        picker = random.Random(5)
        for _ in range(30):
            key = keyspace.random_key(5, picker)
            start = picker.choice(a.addresses())
            expected = engine.query_from(start, key)
            outcome = nodes[start].search(key)
            assert outcome.found == expected.found
            assert outcome.responder == expected.responder
            assert outcome.messages_sent == expected.messages
            assert outcome.failed_attempts == expected.failed_attempts
            assert outcome.retry_delay == expected.retry_delay
            assert a.rng.getstate() == b.rng.getstate()
        # the fault world actually exercised the failure paths
        assert transport.stats.offline_failures > 0

    def test_repeated_search_equivalence(self):
        a, b = twin_grids(seed=44, n=64, maxl=4)
        engine = SearchEngine(a)
        nodes = attach_nodes(b, LocalTransport(b))
        expected = engine.repeated_query(0, "1011", 5)
        outcome = nodes[0].search_repeated("1011", 5)
        assert outcome == expected
        assert a.rng.getstate() == b.rng.getstate()


class TestBreadthEquivalence:
    def test_responder_sets_and_costs_identical(self):
        a, b = twin_grids(seed=45)
        engine = SearchEngine(a)
        transport = LocalTransport(b)
        nodes = attach_nodes(b, transport)
        picker = random.Random(7)
        for recbreadth in (1, 2, 3):
            key = keyspace.random_key(5, picker)
            start = picker.choice(a.addresses())
            expected = engine.query_breadth(start, key, recbreadth)
            before = transport.count(MessageKind.BREADTH_QUERY)
            outcome = nodes[start].search_breadth(key, recbreadth)
            assert outcome == expected  # same dataclass, field-for-field
            assert (
                transport.count(MessageKind.BREADTH_QUERY) - before
                == outcome.messages
            )
            assert a.rng.getstate() == b.rng.getstate()

    def test_breadth_equivalence_under_faults(self):
        a, b = twin_grids(seed=46)
        install_faults(a, seed=13)
        install_faults(b, seed=13)
        retry = RetryPolicy(attempts=2, base_delay=1.0)
        engine = SearchEngine(a, retry=retry)
        nodes = attach_nodes(b, LocalTransport(b), retry=retry)
        picker = random.Random(9)
        for _ in range(10):
            key = keyspace.random_key(5, picker)
            start = picker.choice(a.addresses())
            assert nodes[start].search_breadth(key, 2) == engine.query_breadth(
                start, key, 2
            )
            assert a.rng.getstate() == b.rng.getstate()


class TestRangeEquivalence:
    def test_range_results_identical(self):
        a, b = twin_grids(seed=47)
        populate(a, ITEMS)
        populate(b, ITEMS)
        engine = SearchEngine(a)
        transport = LocalTransport(b)
        nodes = attach_nodes(b, transport)
        for low, high in [("00100", "01101"), ("10000", "11101"), ("01011", "01011")]:
            expected = engine.query_range(5, low, high, recbreadth=2)
            before = transport.count(MessageKind.RANGE_QUERY)
            outcome = nodes[5].range_search(low, high, recbreadth=2)
            assert outcome == expected  # cover, responders, entries, costs
            assert (
                transport.count(MessageKind.RANGE_QUERY) - before
                == outcome.messages
            )
            assert a.rng.getstate() == b.rng.getstate()

    def test_range_equivalence_under_faults(self):
        a, b = twin_grids(seed=48)
        populate(a, ITEMS)
        populate(b, ITEMS)
        install_faults(a, seed=17)
        install_faults(b, seed=17)
        engine = SearchEngine(a)
        nodes = attach_nodes(b, LocalTransport(b))
        expected = engine.query_range(2, "01000", "10111", recbreadth=2)
        outcome = nodes[2].range_search("01000", "10111", recbreadth=2)
        assert outcome == expected
        assert a.rng.getstate() == b.rng.getstate()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_networked_search_matches_engine(seed):
    """Property form: any build seed, fault world and workload agree."""
    a = build_grid(32, maxl=4, refmax=2, seed=seed % 97)
    b = build_grid(32, maxl=4, refmax=2, seed=seed % 97)
    FaultInjector(
        LocalTransport(a), FaultPlan(seed=seed, availability=0.9)
    ).install_oracle()
    FaultInjector(
        LocalTransport(b), FaultPlan(seed=seed, availability=0.9)
    ).install_oracle()
    retry = RetryPolicy(attempts=2, base_delay=0.5, deadline=3.0)
    engine = SearchEngine(a, retry=retry)
    nodes = attach_nodes(b, LocalTransport(b), retry=retry)
    workload = random.Random(seed)
    for _ in range(6):
        key = keyspace.random_key(4, workload)
        start = workload.choice(a.addresses())
        expected = engine.query_from(start, key)
        outcome = nodes[start].search(key)
        assert (outcome.found, outcome.responder) == (
            expected.found,
            expected.responder,
        )
        assert outcome.messages_sent == expected.messages
        assert outcome.failed_attempts == expected.failed_attempts
        breadth_engine = engine.query_breadth(start, key, 2)
        breadth_node = nodes[start].search_breadth(key, 2)
        assert breadth_node == breadth_engine
    assert a.rng.getstate() == b.rng.getstate()
