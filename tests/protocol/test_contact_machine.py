"""Unit tests for the shared per-reference contact machine.

:func:`repro.protocol.contact.contact_step` is the single place encoding
"can I reach this reference?" for both drivers; these tests pin its retry,
backoff, deadline, healer and observation semantics by driving the
generator by hand with scripted answers.
"""

from __future__ import annotations

import random

import pytest

from repro.faults import RetryPolicy
from repro.protocol.contact import Context, StepStats, contact_step
from repro.protocol.effects import GONE, OFFLINE, OK, Contact, Record


def drive(gen, answers):
    """Run *gen*, answering Contact effects from the *answers* list.

    Returns (result, effects) where *effects* is every effect yielded.
    """
    answers = list(answers)
    effects = []
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value, effects
        effects.append(effect)
        response = answers.pop(0) if type(effect) is Contact else None


def step(ctx, stats, target=7, level=2):
    return contact_step(ctx, stats, 0, target, level, "payload")


class _RecordingHealer:
    """Scripted healer: evicts after ``evict_on`` consecutive failures."""

    def __init__(self, evict_on=None):
        self.evict_on = evict_on
        self.successes = []
        self.failures = []

    def record_success(self, owner, level, target):
        self.successes.append((owner, level, target))

    def record_failure(self, owner, level, target):
        self.failures.append((owner, level, target))
        return self.evict_on is not None and len(self.failures) >= self.evict_on


class TestBareContact:
    def test_ok_first_try(self):
        stats = StepStats()
        ok, effects = drive(step(Context(random.Random(0)), stats), [OK])
        assert ok is True
        assert [type(e) for e in effects] == [Contact]
        assert effects[0].delay == 0.0
        assert stats.failed == 0 and stats.retry_delay == 0.0

    def test_offline_without_retry_fails_once(self):
        stats = StepStats()
        ok, effects = drive(step(Context(random.Random(0)), stats), [OFFLINE])
        assert ok is False
        assert len(effects) == 1
        assert stats.failed == 1 and stats.retry_delay == 0.0

    def test_gone_fails_immediately_even_with_retry(self):
        retry = RetryPolicy(attempts=5, base_delay=1.0)
        stats = StepStats()
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry), stats), [GONE]
        )
        assert ok is False
        assert len(effects) == 1  # a departed peer is never re-contacted
        assert stats.failed == 1 and stats.retry_delay == 0.0


class TestRetrySemantics:
    def test_backoff_schedule_rides_on_contacts(self):
        retry = RetryPolicy(attempts=3, base_delay=1.0, backoff_factor=2.0)
        stats = StepStats()
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry), stats),
            [OFFLINE, OFFLINE, OFFLINE],
        )
        assert ok is False
        assert [e.delay for e in effects] == [0.0, 1.0, 2.0]
        assert stats.failed == 3
        assert stats.retry_delay == pytest.approx(3.0)

    def test_success_mid_retry(self):
        retry = RetryPolicy(attempts=3, base_delay=1.0)
        healer = _RecordingHealer()
        stats = StepStats()
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry, healer=healer), stats),
            [OFFLINE, OK],
        )
        assert ok is True
        assert len(effects) == 2
        assert stats.failed == 1
        assert stats.retry_delay == pytest.approx(1.0)
        assert len(healer.successes) == 1 and len(healer.failures) == 1

    def test_deadline_cuts_remaining_attempts(self):
        # Backoff schedule 1, 2, 4, ... with deadline 2.5: the third
        # attempt (cumulative 3.0) would overrun, so only two are made.
        retry = RetryPolicy(attempts=5, base_delay=1.0, deadline=2.5)
        stats = StepStats()
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry), stats),
            [OFFLINE] * 5,
        )
        assert ok is False
        assert len(effects) == 2
        assert stats.retry_delay == pytest.approx(1.0)

    def test_deadline_accounts_delay_already_spent(self):
        # The deadline caps *accumulated* backoff per operation: with 1.8
        # units already spent (e.g. by an earlier hop, threaded through
        # the messages' retry_spent field), even the first retry overruns.
        retry = RetryPolicy(attempts=3, base_delay=1.0, deadline=2.5)
        stats = StepStats()
        stats.retry_delay = 1.8
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry), stats), [OFFLINE] * 3
        )
        assert ok is False
        assert len(effects) == 1
        assert stats.retry_delay == pytest.approx(1.8)

    def test_healer_eviction_stops_retrying(self):
        retry = RetryPolicy(attempts=5, base_delay=1.0)
        healer = _RecordingHealer(evict_on=2)
        stats = StepStats()
        ok, effects = drive(
            step(Context(random.Random(0), retry=retry, healer=healer), stats),
            [OFFLINE] * 5,
        )
        assert ok is False
        # The evicted slot no longer exists: no third attempt.
        assert len(effects) == 2
        assert len(healer.failures) == 2


class TestObservation:
    def test_offline_misses_are_recorded_when_observed(self):
        retry = RetryPolicy(attempts=2, base_delay=1.0)
        ctx = Context(random.Random(0), retry=retry, observed=True)
        stats = StepStats()
        ok, effects = drive(step(ctx, stats), [OFFLINE, OFFLINE])
        records = [e for e in effects if type(e) is Record]
        assert ok is False
        assert [r.event for r in records] == ["offline_miss", "offline_miss"]
        assert records[0].args == (0, 7, 2)

    def test_unobserved_path_yields_no_records(self):
        ctx = Context(random.Random(0))
        ok, effects = drive(step(ctx, StepStats()), [OFFLINE])
        assert all(type(e) is Contact for e in effects)
