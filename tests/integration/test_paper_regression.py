"""Reproduction-regression tests: paper numbers that must keep holding.

These pin the cheap, high-signal paper comparisons so that a refactor
that silently changes the algorithms' cost profile fails CI — the full
sweeps live in ``benchmarks/``; these are their canaries.
"""

from __future__ import annotations

import random

import pytest

from repro.core.analysis import (
    min_peers_for_replication,
    plan_grid,
    required_key_length,
    search_success_probability,
)
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn


class TestSection4Exact:
    """The §4 worked example is closed-form: exact match required."""

    def test_key_length(self):
        assert required_key_length(10**7, 10**4 - 200) == 10

    def test_min_peers(self):
        assert min_peers_for_replication(10**7, 10**4 - 200, 20) == 20409

    def test_success_probability_exceeds_99(self):
        assert search_success_probability(0.3, 20, 10) > 0.99

    def test_planner_reproduces_example(self):
        plan = plan_grid(
            10**7,
            reference_bytes=10,
            storage_bytes_per_peer=10**5,
            p_online=0.3,
            refmax=20,
            i_leaf=10**4 - 200,
        )
        assert (plan.key_length, plan.min_peers) == (10, 20409)
        assert plan.storage_used == 10**5


class TestTable1Canary:
    """T1 row N=200: e within a generous band of the paper's 15942/4937."""

    @pytest.mark.parametrize(
        "recmax,paper_e,low,high",
        [(0, 15942, 10_000, 26_000), (2, 4937, 3_000, 9_000)],
    )
    def test_construction_cost_band(self, recmax, paper_e, low, high):
        config = PGridConfig(maxl=6, refmax=1, recmax=recmax)
        grid = PGrid(config, rng=random.Random(2024))
        grid.add_peers(200)
        report = GridBuilder(grid).build(max_exchanges=1_000_000)
        assert report.converged
        assert low <= report.exchanges <= high, (
            f"recmax={recmax}: e={report.exchanges}, paper={paper_e}"
        )


class TestSearchReliabilityCanary:
    """§5.2's reliability claim at a small scale: success >> eq.(3) naive
    expectations and only a handful of messages."""

    def test_reliable_search_under_30_percent_availability(self):
        config = PGridConfig(maxl=6, refmax=10, recmax=2, recursion_fanout=2)
        grid = PGrid(config, rng=random.Random(2025))
        grid.add_peers(1000)
        GridBuilder(grid).build(max_exchanges=2_000_000)
        grid.online_oracle = BernoulliChurn(0.3, random.Random(7))
        engine = SearchEngine(grid)
        rng = random.Random(8)
        hits = 0
        messages = 0
        trials = 1000
        for _ in range(trials):
            key = format(rng.randrange(32), "05b")
            result = engine.query_from(rng.randrange(1000), key)
            hits += int(result.found)
            messages += result.messages
        bound = search_success_probability(0.3, 10, 5)
        assert hits / trials >= bound - 0.02
        assert hits / trials > 0.95
        assert messages / trials < 6  # the paper's ~5.5 at depth 9
