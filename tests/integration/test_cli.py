"""Integration tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestBuild:
    def test_build_reports_and_snapshots(self, tmp_path, capsys):
        snapshot = tmp_path / "grid.json"
        code = main(
            [
                "build",
                "--peers", "64",
                "--maxl", "3",
                "--refmax", "2",
                "--seed", "1",
                "--snapshot", str(snapshot),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "violations: 0" in out
        assert snapshot.exists()

    def test_build_unbounded_fanout_flag(self, capsys):
        assert main(["build", "--peers", "32", "--maxl", "2", "--fanout", "0"]) == 0
        assert "converged=True" in capsys.readouterr().out

    def test_build_multi_trial_aggregate(self, capsys):
        code = main(
            ["build", "--peers", "32", "--maxl", "2", "--seed", "4",
             "--trials", "3", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trial 0:" in out and "trial 2:" in out
        assert "aggregate over 3 trials:" in out
        assert "converged=3/3" in out

    def test_build_multi_trial_deterministic_across_jobs(self, capsys):
        argv = ["build", "--peers", "32", "--maxl", "2", "--seed", "4",
                "--trials", "2"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_build_multi_trial_rejects_snapshot(self, tmp_path, capsys):
        code = main(
            ["build", "--peers", "32", "--maxl", "2", "--trials", "2",
             "--snapshot", str(tmp_path / "grid.json")]
        )
        assert code == 2
        assert "single build" in capsys.readouterr().err


class TestSearch:
    @pytest.fixture
    def snapshot(self, tmp_path):
        path = tmp_path / "grid.json"
        main(
            ["build", "--peers", "64", "--maxl", "4", "--refmax", "2",
             "--seed", "2", "--snapshot", str(path)]
        )
        return path

    def test_search_found(self, snapshot, capsys):
        code = main(["search", str(snapshot), "0101", "--start", "3"])
        assert code == 0
        assert "found=True" in capsys.readouterr().out

    def test_search_under_churn_may_fail_gracefully(self, snapshot, capsys):
        code = main(
            ["search", str(snapshot), "0101", "--p-online", "0.05",
             "--seed", "3"]
        )
        assert code in (0, 1)
        assert "found=" in capsys.readouterr().out


class TestAnalyze:
    def test_paper_example(self, capsys):
        code = main(
            ["analyze", "--d-global", "10000000", "--storage", "100000",
             "--p-online", "0.3", "--refmax", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "key length k        : 10" in out
        assert "min peers (eq. 2)   : 20409" in out


class TestExperiment:
    def test_registry_covers_all_paper_artifacts(self):
        assert {
            "table1", "table2", "table3", "table4", "table5",
            "fig4", "fig5", "search_reliability", "table6",
            "discussion_scaling", "analysis_example",
        } <= set(EXPERIMENTS)

    def test_run_analysis_example_and_save(self, tmp_path, capsys):
        code = main(
            ["experiment", "analysis_example", "--save", str(tmp_path)]
        )
        assert code == 0
        assert "analysis_example" in capsys.readouterr().out
        assert (tmp_path / "analysis_example.csv").exists()
        assert (tmp_path / "analysis_example.json").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestInfo:
    def test_info_dumps_statistics(self, tmp_path, capsys):
        snapshot = tmp_path / "grid.json"
        main(
            ["build", "--peers", "48", "--maxl", "3", "--refmax", "2",
             "--seed", "4", "--snapshot", str(snapshot)]
        )
        capsys.readouterr()
        assert main(["info", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "peers               : 48" in out
        assert "invariant violations: 0" in out
        assert "peers per path length" in out


class TestScenario:
    def test_scenario_prints_metrics(self, capsys):
        code = main(
            ["scenario", "--peers", "80", "--maxl", "4", "--refmax", "3",
             "--operations", "100", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search_success_rate" in out
        assert "invariant_violations" in out

    def test_scenario_zipf_flag(self, capsys):
        code = main(
            ["scenario", "--peers", "60", "--maxl", "3", "--operations",
             "50", "--zipf", "1.2", "--p-online", "0.5"]
        )
        assert code == 0
        assert "update_coverage_mean" in capsys.readouterr().out


class TestStats:
    def test_stats_multi_trial_merged_registry(self, capsys):
        code = main(
            ["stats", "--peers", "64", "--maxl", "3", "--refmax", "2",
             "--operations", "60", "--seed", "9",
             "--trials", "2", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "merged metrics for 2 trials" in out
        assert "trial 0:" in out and "trial 1:" in out

    def test_stats_trials_validated(self, capsys):
        assert main(["stats", "--trials", "0"]) == 2
        assert "--trials" in capsys.readouterr().err


class TestReport:
    def test_report_combines_experiments(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--experiments", "analysis_example", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# P-Grid reproduction report")
        assert "## analysis_example" in text
        assert "20409" in text
