"""Smoke tests for the example scripts (the fast ones).

Every example must stay runnable — these execute the quick ones end to end
as subprocesses and sanity-check their output.  The slower examples
(file_sharing, native_trie, ...) exercise the same code paths already
covered by the experiment runners; running them here would double the
suite's wall-clock for no new coverage.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "constructed:" in out
        assert "found=True" in out
        assert "routing invariant violations: 0" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "(paper: 10)" in out
        assert "20409" in out

    def test_range_queries(self):
        out = run_example("range_queries.py")
        assert "ground truth" in out
        # every reported range must match its ground truth exactly
        for line in out.splitlines():
            if "ground truth:" in line:
                reported = int(line.split(" readings in")[0].split()[-1])
                truth = int(line.rstrip(")").split("ground truth: ")[-1])
                assert reported == truth, line

    def test_examples_all_present(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert names >= {
            "quickstart.py",
            "file_sharing.py",
            "update_consistency.py",
            "capacity_planning.py",
            "text_prefix_search.py",
            "self_organization.py",
            "range_queries.py",
            "timeline.py",
            "native_trie.py",
        }

    @pytest.mark.parametrize(
        "name",
        [path.name for path in sorted(EXAMPLES_DIR.glob("*.py"))],
    )
    def test_examples_compile(self, name):
        source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
        compile(source, name, "exec")
