"""End-to-end integration: construct → publish → search → update → read,
both through the in-process engines and over the message substrate."""

from __future__ import annotations

import random

from repro.core.search import SearchEngine
from repro.core.storage import DataItem, DataRef
from repro.core.updates import ReadEngine, UpdateEngine, UpdateStrategy
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from repro.sim.churn import BernoulliChurn
from repro.sim.persistence import load_grid, save_grid
from tests.conftest import assert_routing_consistent, build_grid


class TestFullLifecycle:
    def test_publish_search_update_read(self):
        grid = build_grid(256, maxl=5, refmax=3, seed=61)
        assert_routing_consistent(grid)

        # 1. publish a file's index entry
        updates = UpdateEngine(grid)
        item = DataItem(key="10110", value="song.mp3")
        publish = updates.publish(
            4, item, holder=17, strategy=UpdateStrategy.BFS, recbreadth=3
        )
        assert publish.reached

        # 2. any peer can find it
        search = SearchEngine(grid)
        hit = False
        for start in (0, 50, 100, 200):
            result = search.query_from(start, "10110")
            assert result.found
            if any(ref.holder == 17 for ref in result.data_refs):
                hit = True
        assert hit

        # 3. update to version 1 and read it back repeatedly until fresh.
        # Start the update at a non-replica peer: a breadth-first search
        # launched *at* a replica terminates immediately at itself (the
        # paper's "not all replicas are as likely to be found" effect).
        replicas = set(grid.replicas_for_key("10110"))
        start = next(a for a in grid.addresses() if a not in replicas)
        update = updates.propagate(
            start,
            DataRef(key="10110", holder=17, version=1),
            strategy=UpdateStrategy.BFS,
            recbreadth=3,
        )
        assert len(update.reached) >= 2
        reads = ReadEngine(grid, search=search)
        read = reads.read_repeated(120, "10110", holder=17, version=1)
        assert read.success

    def test_lifecycle_under_churn(self):
        grid = build_grid(256, maxl=5, refmax=4, seed=62)
        updates = UpdateEngine(grid)
        item = DataItem(key="01011", value="doc.pdf")
        updates.publish(
            1, item, holder=3, strategy=UpdateStrategy.BFS, recbreadth=3
        )
        grid.online_oracle = BernoulliChurn(0.5, random.Random(99))
        search = SearchEngine(grid)
        successes = sum(
            search.query_from(start, "01011").found
            for start in range(0, 250, 10)
        )
        assert successes >= 15  # churn-tolerant: most searches still succeed

    def test_snapshot_preserves_searchability_and_data(self, tmp_path):
        grid = build_grid(128, maxl=4, refmax=2, seed=63)
        UpdateEngine(grid).publish(
            0, DataItem(key="1100", value="x"), holder=5,
            strategy=UpdateStrategy.BFS, recbreadth=3,
        )
        save_grid(grid, tmp_path / "grid.json")
        clone = load_grid(tmp_path / "grid.json", rng=random.Random(7))
        result = SearchEngine(clone).query_from(90, "1100")
        assert result.found
        assert any(ref.holder == 5 for ref in result.data_refs)


class TestNetworkedLifecycle:
    def test_search_and_update_over_messages(self):
        grid = build_grid(128, maxl=4, refmax=3, seed=64)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)

        # discover replicas with the core engine, then push updates as
        # explicit messages and verify they landed.
        updates = UpdateEngine(grid)
        reached, _, _ = updates.find_replicas(
            0, "0110", strategy=UpdateStrategy.BFS, recbreadth=3
        )
        assert reached
        ref = DataRef(key="0110", holder=2, version=1)
        for address in reached:
            assert nodes[0].push_update(address, ref)
        for address in reached:
            assert grid.peer(address).store.version_of("0110", 2) == 1

        # a networked search from an arbitrary node then finds the entry
        outcome = nodes[77].search("0110")
        assert outcome.found

    def test_transport_counters_reflect_search_traffic(self):
        grid = build_grid(128, maxl=4, refmax=3, seed=65)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        total = 0
        for start in range(0, 120, 7):
            total += nodes[start].search("1010").messages_sent
        assert transport.stats.total_delivered() == total
