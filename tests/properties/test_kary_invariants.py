"""Property-based invariants for the k-ary P-Grid extension."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kary import (
    KaryExchangeEngine,
    KaryGrid,
    KarySearchEngine,
    KeySpace,
)

ALPHABETS = ["01", "abc", "abcd", "abcde"]

construction_params = st.fixed_dictionaries(
    {
        "alphabet": st.sampled_from(ALPHABETS),
        "n_peers": st.integers(6, 40),
        "maxl": st.integers(1, 3),
        "refmax": st.integers(1, 3),
        "recmax": st.integers(0, 2),
        "seed": st.integers(0, 10**6),
        "meetings": st.integers(0, 300),
    }
)

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_construction(params) -> KaryGrid:
    grid = KaryGrid(
        KeySpace(params["alphabet"]),
        maxl=params["maxl"],
        refmax=params["refmax"],
        recmax=params["recmax"],
        rng=random.Random(params["seed"]),
    )
    grid.add_peers(params["n_peers"])
    engine = KaryExchangeEngine(grid)
    rng = random.Random(params["seed"] + 1)
    addresses = grid.addresses()
    for _ in range(params["meetings"]):
        a, b = rng.sample(addresses, 2)
        engine.meet(a, b)
    return grid


class TestKaryConstructionInvariants:
    @slow
    @given(construction_params)
    def test_routing_invariant_holds(self, params):
        grid = run_construction(params)
        assert grid.audit_routing() == []

    @slow
    @given(construction_params)
    def test_paths_bounded_and_valid(self, params):
        grid = run_construction(params)
        for peer in grid.peers():
            assert peer.depth <= params["maxl"]
            assert grid.space.is_valid(peer.path)

    @slow
    @given(construction_params)
    def test_refmax_respected_per_symbol(self, params):
        grid = run_construction(params)
        for peer in grid.peers():
            for _level, _symbol, refs in peer.routing.iter_all():
                assert len(refs) <= params["refmax"]
                assert len(set(refs)) == len(refs)
                assert peer.address not in refs

    @slow
    @given(construction_params, st.data())
    def test_search_responders_are_responsible(self, params, data):
        grid = run_construction(params)
        engine = KarySearchEngine(grid)
        query = data.draw(
            st.text(alphabet=params["alphabet"], min_size=1,
                    max_size=params["maxl"])
        )
        start = data.draw(st.sampled_from(grid.addresses()))
        result = engine.query_from(start, query)
        # Everyone is online, so no contact ever fails.  No upper bound on
        # messages is asserted: DFS backtracking out of dead-end replicas
        # spends messages without consuming query symbols, so the hop count
        # can exceed len(query) even on an all-online grid.
        assert result.failed_attempts == 0
        if result.found:
            assert grid.peer(result.responder).responsible_for(query)
