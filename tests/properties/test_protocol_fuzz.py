"""Protocol fuzzing: random interleavings of the full operation surface.

Hypothesis drives arbitrary sequences of construction meetings, joins,
failures, graceful leaves, repairs, searches, updates, retractions and
reads against one grid, asserting after every trace:

* no exception escapes any operation;
* the §2 routing invariant holds up to dangling references to departed
  peers (which are legal until repaired — repairs remove them);
* every search that succeeds names a genuinely responsible, live peer;
* store version monotonicity per (key, holder);
* path lengths never exceed ``maxl`` and peers never lose path bits.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.membership import MembershipEngine
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.core.updates import ReadEngine, UpdateEngine, UpdateStrategy

MAXL = 4

operations = st.lists(
    st.sampled_from(
        ["meet", "join", "fail", "leave", "repair", "search",
         "update", "retract", "read", "breadth"]
    ),
    min_size=5,
    max_size=60,
)


class _Fuzzer:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        config = PGridConfig(maxl=MAXL, refmax=2, recmax=2, recursion_fanout=2)
        self.grid = PGrid(config, rng=random.Random(seed + 1))
        self.grid.add_peers(12)
        self.exchange = ExchangeEngine(self.grid)
        self.search = SearchEngine(self.grid)
        self.updates = UpdateEngine(self.grid, search=self.search)
        self.reads = ReadEngine(self.grid, search=self.search)
        self.membership = MembershipEngine(
            self.grid, exchange=self.exchange, search=self.search
        )
        self.version = 0
        self.paths: dict[int, str] = {}

    def random_address(self) -> int:
        return self.rng.choice(self.grid.addresses())

    def random_key(self) -> str:
        return keyspace.random_key(self.rng.randint(1, MAXL), self.rng)

    def step(self, op: str) -> None:
        if op == "meet":
            if len(self.grid) >= 2:
                a, b = self.rng.sample(self.grid.addresses(), 2)
                self.exchange.meet(a, b)
        elif op == "join":
            if len(self.grid) < 40:
                self.membership.join(self.random_address(), max_meetings=8)
        elif op == "fail":
            if len(self.grid) > 4:
                victim = self.random_address()
                self.membership.fail(victim)
                self.paths.pop(victim, None)
        elif op == "leave":
            if len(self.grid) > 4:
                victim = self.random_address()
                self.membership.leave(victim)
                self.paths.pop(victim, None)
        elif op == "repair":
            self.membership.repair(self.random_address())
        elif op == "search":
            result = self.search.query_from(
                self.random_address(), self.random_key()
            )
            if result.found:
                responder = self.grid.peer(result.responder)
                assert keyspace.in_prefix_relation(
                    responder.path, result.query
                )
        elif op == "breadth":
            result = self.search.query_breadth(
                self.random_address(), self.random_key(), recbreadth=2
            )
            for responder in result.responders:
                assert self.grid.peer(responder).responsible_for(result.query)
        elif op == "update":
            self.version += 1
            self.updates.publish(
                self.random_address(),
                DataItem(key=self.random_key(), value="x"),
                self.random_address(),
                strategy=self.rng.choice(list(UpdateStrategy)),
                recbreadth=2,
                version=self.version,
            )
        elif op == "retract":
            self.version += 1
            self.updates.retract(
                self.random_address(),
                self.random_key(),
                holder=self.random_address(),
                version=self.version,
            )
        elif op == "read":
            self.reads.read_single(
                self.random_address(), self.random_key(),
                holder=self.random_address(), version=0,
            )

    def check_invariants(self) -> None:
        for peer in self.grid.peers():
            # paths only grow and stay bounded
            previous = self.paths.get(peer.address, "")
            assert peer.path.startswith(previous)
            assert peer.depth <= MAXL
            self.paths[peer.address] = peer.path
            # refmax respected, no self references
            for _level, refs in peer.routing.iter_levels():
                assert len(refs) <= 2
                assert peer.address not in refs
        # routing invariant modulo dangling refs to departed peers
        dangling_ok = [
            violation
            for violation in self.grid.audit_routing()
            if "dangling" not in violation
        ]
        assert not dangling_ok, dangling_ok


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(0, 10**6), operations)
def test_random_operation_interleavings(seed, ops):
    fuzzer = _Fuzzer(seed)
    for op in ops:
        fuzzer.step(op)
        fuzzer.check_invariants()


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_fuzz_then_full_repair_restores_clean_audit(seed):
    fuzzer = _Fuzzer(seed)
    script = ["meet"] * 30 + ["fail", "join", "meet", "meet", "fail", "join"]
    for op in script:
        fuzzer.step(op)
    fuzzer.membership.repair_all(refill=False)
    # with dead refs dropped, the audit must be fully clean
    assert fuzzer.grid.audit_routing() == []
