"""Property-based system invariants (hypothesis).

These run the *actual* randomized protocols under hypothesis-chosen
parameters and assert the structural guarantees the paper's correctness
rests on:

* the §2 routing-reference invariant survives any construction run;
* paths never exceed ``maxl`` and only ever extend;
* with everyone online, a converged grid answers every query;
* search responders are genuinely responsible for the query;
* snapshots round-trip arbitrary constructed grids.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.sim.builder import GridBuilder
from repro.sim.persistence import grid_from_dict, grid_to_dict

construction_params = st.fixed_dictionaries(
    {
        "n_peers": st.integers(8, 48),
        "maxl": st.integers(1, 5),
        "refmax": st.integers(1, 4),
        "recmax": st.integers(0, 3),
        "fanout": st.one_of(st.none(), st.integers(1, 3)),
        "seed": st.integers(0, 10**6),
        "meetings": st.integers(0, 400),
    }
)

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_construction(params) -> tuple[PGrid, ExchangeEngine]:
    config = PGridConfig(
        maxl=params["maxl"],
        refmax=params["refmax"],
        recmax=params["recmax"],
        recursion_fanout=params["fanout"],
    )
    grid = PGrid(config, rng=random.Random(params["seed"]))
    grid.add_peers(params["n_peers"])
    engine = ExchangeEngine(grid)
    rng = random.Random(params["seed"] + 1)
    addresses = grid.addresses()
    for _ in range(params["meetings"]):
        a, b = rng.sample(addresses, 2)
        engine.meet(a, b)
    return grid, engine


class TestConstructionInvariants:
    @slow
    @given(construction_params)
    def test_routing_invariant_holds_mid_construction(self, params):
        grid, _ = run_construction(params)
        assert grid.audit_routing() == []

    @slow
    @given(construction_params)
    def test_paths_bounded_by_maxl(self, params):
        grid, _ = run_construction(params)
        assert all(peer.depth <= params["maxl"] for peer in grid.peers())

    @slow
    @given(construction_params)
    def test_exchange_counter_consistent_with_depth(self, params):
        grid, engine = run_construction(params)
        stats = engine.stats
        expected_depth = (
            2 * stats.case1_splits
            + stats.case2_specializations
            + stats.case3_specializations
        )
        assert sum(peer.depth for peer in grid.peers()) == expected_depth

    @slow
    @given(construction_params)
    def test_refmax_respected_everywhere(self, params):
        grid, _ = run_construction(params)
        for peer in grid.peers():
            for _level, refs in peer.routing.iter_levels():
                assert len(refs) <= params["refmax"]
                assert len(set(refs)) == len(refs)
                assert peer.address not in refs

    @slow
    @given(construction_params)
    def test_buddies_share_exact_path(self, params):
        grid, _ = run_construction(params)
        for peer in grid.peers():
            for buddy in peer.buddies:
                assert grid.peer(buddy).path == peer.path


class TestSearchInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(16, 48),
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(0, 10**6),
        st.data(),
    )
    def test_converged_grid_answers_every_query(
        self, n_peers, maxl, refmax, seed, data
    ):
        config = PGridConfig(
            maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2
        )
        grid = PGrid(config, rng=random.Random(seed))
        grid.add_peers(n_peers)
        report = GridBuilder(grid).build(max_exchanges=500_000)
        if not report.converged:
            return  # tiny populations may not converge; nothing to assert
        engine = SearchEngine(grid)
        query = data.draw(st.text(alphabet="01", min_size=1, max_size=maxl))
        start = data.draw(st.sampled_from(grid.addresses()))
        result = engine.query_from(start, query)
        assert result.found
        responder = grid.peer(result.responder)
        assert keyspace.in_prefix_relation(responder.path, query)
        assert result.messages <= len(query)


class TestSnapshotProperty:
    @slow
    @given(construction_params)
    def test_snapshot_roundtrip_exact(self, params):
        grid, _ = run_construction(params)
        clone = grid_from_dict(grid_to_dict(grid))
        assert grid_to_dict(clone) == grid_to_dict(grid)
