"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.peer import Peer
from repro.sim.builder import GridBuilder


def build_grid(
    n_peers: int = 64,
    *,
    maxl: int = 4,
    refmax: int = 2,
    recmax: int = 2,
    recursion_fanout: int | None = 2,
    seed: int = 7,
    threshold_fraction: float = 0.99,
) -> PGrid:
    """Construct a small converged grid (deterministic for a given seed)."""
    config = PGridConfig(
        maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=recursion_fanout
    )
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(
        threshold_fraction=threshold_fraction, max_exchanges=2_000_000
    )
    return grid


@pytest.fixture
def small_grid() -> PGrid:
    """A converged 64-peer grid (maxl=4, refmax=2)."""
    return build_grid()


@pytest.fixture
def medium_grid() -> PGrid:
    """A converged 256-peer grid (maxl=5, refmax=3) for search/update tests."""
    return build_grid(256, maxl=5, refmax=3, seed=11)


def make_fig1_grid() -> PGrid:
    """The paper's Fig. 1 example, built by hand.

    Six peers over a depth-2 trie::

        peer 1: path 00, refs L1 -> {3 (path 10)}, L2 -> {2 (path 01)}
        peer 2: path 01, refs L1 -> {4},            L2 -> {1}
        peer 3: path 10, refs L1 -> {1},            L2 -> {6}
        peer 4: path 10, refs L1 -> {2},            L2 -> {6}
        peer 5: path 11, refs L1 -> {2},            L2 -> {4}
        peer 6: path 11, refs L1 -> {5 -- via its L1 ref to the 0 side},
                            actually L1 -> {1}, L2 -> {4}

    (Reference targets chosen to satisfy the §2 invariant; addresses are
    0-based internally: peer *i* of the figure is address ``i - 1``.)
    """
    grid = PGrid(PGridConfig(maxl=2, refmax=2, recmax=0), rng=random.Random(1))
    paths = {0: "00", 1: "01", 2: "10", 3: "10", 4: "11", 5: "11"}
    for address, path in paths.items():
        peer = grid.add_peer(address)
        peer.set_path(path)
    refs = {
        # level 1 references: opposite first bit; level 2: same first bit,
        # opposite second bit.
        0: {1: [2], 2: [1]},
        1: {1: [3], 2: [0]},
        2: {1: [0], 2: [5]},
        3: {1: [1], 2: [4]},
        4: {1: [1], 2: [3]},
        5: {1: [0], 2: [2]},
    }
    for address, levels in refs.items():
        for level, targets in levels.items():
            grid.peer(address).routing.set_refs(level, targets)
    assert grid.audit_routing() == []
    return grid


@pytest.fixture
def fig1_grid() -> PGrid:
    """The hand-built Fig. 1 example grid."""
    return make_fig1_grid()


def assert_routing_consistent(grid: PGrid) -> None:
    """Fail the test with the violation list if the invariant is broken."""
    violations = grid.audit_routing()
    assert not violations, "\n".join(violations)


def online_set(grid: PGrid) -> set[int]:
    """Addresses currently reported online by the grid's oracle."""
    return {a for a in grid.addresses() if grid.is_online(a)}


def peer_with_path(grid: PGrid, path: str) -> Peer:
    """First peer holding exactly *path* (fails if none)."""
    for peer in grid.peers():
        if peer.path == path:
            return peer
    raise AssertionError(f"no peer with path {path!r}")
