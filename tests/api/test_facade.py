"""The ``repro.api.Grid`` facade: one surface, three drivers.

Covers the facade's construction and direct-operation paths, the
driver-equality guarantee of :meth:`Grid.serve` (field-for-field equal
results and cost counters on equal grids), service lifecycle (close
releases the transport so a grid can be re-served), and the deprecation
story for the legacy top-level constructor imports.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.api import DRIVERS, Grid
from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.errors import InvalidConfigError
from repro.faults import RetryPolicy


def build_twins(count: int, *, peers=48, maxl=4, seed=21, **kwargs):
    return [
        Grid.build(peers=peers, maxl=maxl, seed=seed, **kwargs)
        for _ in range(count)
    ]


class TestBuild:
    def test_build_converges_and_reports(self):
        grid = Grid.build(peers=32, maxl=4, seed=7)
        assert len(grid) == 32
        assert grid.report is not None
        assert grid.report.converged
        assert len(grid.addresses()) == 32

    def test_build_with_explicit_config(self):
        config = PGridConfig(maxl=3, refmax=2, recmax=1, recursion_fanout=2)
        grid = Grid.build(peers=16, maxl=9, seed=7, config=config)
        assert grid.pgrid.config.maxl == 3  # config wins over maxl kwarg

    def test_same_seed_same_grid(self):
        a, b = build_twins(2)
        assert a.pgrid.rng.getstate() == b.pgrid.rng.getstate()
        for addr in a.addresses():
            assert a.pgrid.peer(addr).path == b.pgrid.peer(addr).path

    def test_wrap_existing_pgrid(self):
        built = Grid.build(peers=16, maxl=3, seed=5)
        rewrapped = Grid(built.pgrid)
        assert len(rewrapped) == 16
        assert rewrapped.report is None


class TestDirectOperations:
    def test_search_update_roundtrip(self):
        grid = Grid.build(peers=32, maxl=4, seed=9)
        result = grid.update("1011", holder=3, version=1, value="doc")
        assert result.reached
        assert set(result.reached) <= set(grid.replicas_for("1011"))
        found = grid.search("1011")
        assert found.found
        assert any(r.holder == 3 and r.version == 1 for r in found.data_refs)

    def test_search_range(self):
        grid = Grid.build(peers=32, maxl=4, seed=9)
        grid.update("0010", holder=1)
        grid.update("0111", holder=2)
        outcome = grid.search_range("0000", "0111", start=4)
        assert outcome.found
        keys_found = {ref.key for ref in outcome.data_refs}
        assert {"0010", "0111"} <= keys_found


class TestArrayQueryPlane:
    """``Grid.search(core=...)``/``search_many`` route through the
    cached batch engine; all-online success is structural, so the found
    sets must match the object core exactly."""

    @pytest.fixture(scope="class")
    def grid(self):
        pytest.importorskip("numpy")
        return Grid.build(peers=48, maxl=4, seed=31)

    def test_search_many_found_matches_object_core(self, grid):
        rng = random.Random(5)
        keys = [format(rng.getrandbits(3), "03b") for _ in range(100)]
        starts = [rng.choice(grid.addresses()) for _ in range(100)]
        object_results = grid.search_many(keys, starts, core="object")
        batch = grid.search_many(keys, starts, core="array")
        assert len(batch) == 100
        assert batch.found.tolist() == [r.found for r in object_results]

    def test_single_search_array_core(self, grid):
        mirrored = grid.search("010", start=3, core="array")
        reference = grid.search("010", start=3)
        assert mirrored.found == reference.found
        assert mirrored.query == "010"
        assert mirrored.start == 3
        if mirrored.found:
            path = grid.pgrid.peer(mirrored.responder).path
            assert "010".startswith(path) or path.startswith("010")

    def test_engine_cached_until_refresh(self, grid):
        engine = grid.batch_query_engine()
        assert grid.batch_query_engine() is engine
        assert grid.batch_query_engine(refresh=True) is not engine

    def test_unknown_core_rejected(self, grid):
        with pytest.raises(InvalidConfigError, match="unknown core"):
            grid.search("010", core="simd")
        with pytest.raises(InvalidConfigError, match="unknown core"):
            grid.search_many(["010"], [0], core="simd")


class TestServe:
    def test_unknown_driver_rejected(self):
        grid = Grid.build(peers=16, maxl=3, seed=5)
        with pytest.raises(InvalidConfigError, match="unknown driver"):
            grid.serve(driver="carrier-pigeon")

    def test_three_drivers_identical_results_and_costs(self):
        """The facade's core guarantee: on equal grids the same sequential
        workload returns field-for-field identical SearchResults and
        UpdateResults from every driver, and leaves the grid RNGs in
        bit-identical states."""
        grids = build_twins(len(DRIVERS))
        picker = random.Random(13)
        workload = []
        for i in range(12):
            key = keyspace.random_key(4, picker)
            start = picker.choice(grids[0].addresses())
            holder = picker.choice(grids[0].addresses())
            workload.append((key, start, holder, i % 3 == 0))

        per_driver = []
        for driver, grid in zip(DRIVERS, grids):
            results = []
            with grid.serve(driver=driver) as svc:
                assert svc.driver == driver
                for key, start, holder, is_update in workload:
                    if is_update:
                        results.append(svc.update(key, holder, start=start, version=1))
                    else:
                        results.append(svc.search(key, start=start))
            per_driver.append(results)

        engine_results = per_driver[0]
        for results in per_driver[1:]:
            assert results == engine_results  # dataclass equality, all fields
        states = [g.pgrid.rng.getstate() for g in grids]
        assert states.count(states[0]) == len(states)

    def test_three_drivers_identical_under_retry(self):
        retry = RetryPolicy(attempts=2, base_delay=0.5)
        grids = build_twins(len(DRIVERS), retry=retry)
        outcomes = []
        for driver, grid in zip(DRIVERS, grids):
            with grid.serve(driver=driver) as svc:
                outcomes.append(svc.search("1010", start=2))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_serve_close_allows_reserving(self, driver):
        grid = Grid.build(peers=16, maxl=3, seed=5)
        for _ in range(2):  # second round fails if close() leaks handlers
            with grid.serve(driver=driver) as svc:
                assert svc.search("101", start=1).found in (True, False)

    def test_async_service_exposes_loop_runner(self):
        grid = Grid.build(peers=16, maxl=3, seed=5)
        with grid.serve(driver="async") as svc:
            outcome = svc.run(svc.swarm.search(0, "101"))
            assert outcome.query == "101"


class TestDeprecatedTopLevelImports:
    @pytest.mark.parametrize(
        "name", ["GridBuilder", "SearchEngine", "UpdateEngine", "ReadEngine"]
    )
    def test_top_level_import_warns_but_works(self, name):
        import repro

        with pytest.warns(DeprecationWarning, match=name):
            cls = getattr(repro, name)
        assert cls.__name__ == name

    def test_home_module_import_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.search import SearchEngine  # noqa: F401
            from repro.sim.builder import GridBuilder  # noqa: F401

    def test_facade_import_is_canonical(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.Grid is Grid

    def test_dir_still_lists_legacy_names(self):
        import repro

        names = dir(repro)
        for name in ("Grid", "GridBuilder", "SearchEngine", "UpdateEngine"):
            assert name in names

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing
