"""ReplicaBalancer strategies, guards and the conversion mechanic."""

from __future__ import annotations

import pytest

from repro.core.storage import DataRef
from repro.errors import InvalidConfigError
from repro.replication import (
    LoadTracker,
    ReplicaBalancer,
    ReplicationConfig,
)
from tests.conftest import build_grid


def _grid_with_groups(seed: int = 7):
    """A converged grid plus its (path -> members) map."""
    grid = build_grid(48, maxl=4, refmax=2, seed=seed)
    return grid, grid.replica_groups()


def _hot_and_donor(grid, groups, *, min_donor_size: int = 2):
    """Pick a hot path and a donor address from a different, larger group."""
    sized = sorted(
        (path for path in groups if path), key=lambda p: (len(groups[p]), p)
    )
    hot = sized[0]
    for path in reversed(sized):
        if path != hot and len(groups[path]) >= min_donor_size:
            return hot, groups[path][0]
    raise AssertionError("grid has no donor group — pick another seed")


class TestReplicationConfig:
    def test_defaults_valid(self):
        config = ReplicationConfig()
        assert config.strategy == "adaptive"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(strategy="bogus"),
            dict(replicate_threshold=0.0),
            dict(retract_floor=-0.1),
            dict(retract_floor=5.0, replicate_threshold=4.0),
            dict(min_replicas=0),
            dict(min_replicas=3, max_replicas=2),
            dict(half_life=0.0),
            dict(min_observations=-1),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(InvalidConfigError):
            ReplicationConfig(**kwargs)


class TestGuards:
    def test_static_never_acts(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        for _ in range(200):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(strategy="static", min_observations=0),
        )
        assert balancer.enabled is False
        before = {peer.address: peer.path for peer in grid.peers()}
        assert balancer.after_meeting(donor, groups[hot][0]) is False
        assert balancer.after_update([donor]) is False
        assert {peer.address: peer.path for peer in grid.peers()} == before
        assert balancer.stats.conversions == 0
        assert balancer.stats.meetings_seen == 1
        assert balancer.stats.updates_seen == 1

    def test_warmup_gate_blocks_action(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        for _ in range(10):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=1.0, retract_floor=0.25, min_observations=1000
            ),
        )
        assert balancer.after_meeting(donor, groups[hot][0]) is False
        assert balancer.stats.conversions == 0

    def test_retract_floor_protects_busy_donor(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        donor_path = grid.peer(donor).path
        for _ in range(100):
            tracker.observe(hot)
            tracker.observe(donor_path)  # donor's group earns its keep
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=0.5, retract_floor=0.25, min_observations=0
            ),
        )
        assert balancer.after_meeting(donor, donor) is False
        assert grid.peer(donor).path == donor_path

    def test_min_replicas_protects_small_groups(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        donor_size = len(groups[grid.peer(donor).path])
        for _ in range(100):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=1.0,
                retract_floor=0.25,
                min_observations=0,
                min_replicas=donor_size,  # donor group exactly at the floor
            ),
        )
        assert balancer.after_meeting(donor, donor) is False

    def test_max_replicas_caps_hot_group(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        for _ in range(100):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=1.0,
                retract_floor=0.25,
                min_observations=0,
                max_replicas=len(groups[hot]),  # already full
            ),
        )
        assert balancer.after_meeting(donor, donor) is False


class TestAdaptiveConversion:
    def _convert_once(self):
        grid, groups = _grid_with_groups(seed=9)
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        for _ in range(100):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=1.0, retract_floor=0.25, min_observations=0
            ),
        )
        donor_peer = grid.peer(donor)
        old_path = donor_peer.path
        old_refs = [
            DataRef(key=old_path + "0" * 8, holder=donor, version=1),
            DataRef(key=old_path + "1" * 8, holder=donor, version=1),
        ]
        for ref in old_refs:
            donor_peer.store.add_ref(ref)
        model = min(groups[hot])
        converted = balancer.after_meeting(donor, groups[hot][0])
        return grid, balancer, hot, donor, old_path, old_refs, model, converted

    def test_conversion_happens_and_counts(self):
        grid, balancer, hot, donor, old_path, _, _, converted = (
            self._convert_once()
        )
        assert converted is True
        assert grid.peer(donor).path == hot
        assert balancer.stats.conversions == 1
        assert balancer.stats.retractions == 1
        assert balancer.epoch == 1

    def test_routing_clones_model_without_self_references(self):
        grid, _, _, donor, _, _, model, _ = self._convert_once()
        donor_levels = grid.peer(donor).routing.to_lists()
        model_levels = grid.peer(model).routing.to_lists()
        assert len(donor_levels) == len(model_levels)
        for donor_refs, model_refs in zip(donor_levels, model_levels):
            assert donor not in donor_refs
            assert set(donor_refs) <= set(model_refs)

    def test_store_copies_model_index(self):
        grid, _, _, donor, _, _, model, _ = self._convert_once()
        donor_keys = {ref.key for ref in grid.peer(donor).store.iter_refs()}
        model_keys = {ref.key for ref in grid.peer(model).store.iter_refs()}
        assert donor_keys == model_keys

    def test_old_entries_handed_to_surviving_replica(self):
        grid, balancer, _, donor, old_path, old_refs, _, _ = (
            self._convert_once()
        )
        assert balancer.stats.entries_handed_over == len(old_refs)
        assert balancer.stats.entries_lost == 0
        survivors = [
            peer
            for peer in grid.peers()
            if peer.path == old_path and peer.address != donor
        ]
        held = {
            ref.key for peer in survivors for ref in peer.store.iter_refs()
        }
        for ref in old_refs:
            assert ref.key in held

    def test_buddy_links_are_mutual(self):
        grid, _, _, donor, old_path, _, model, _ = self._convert_once()
        donor_peer = grid.peer(donor)
        assert model in donor_peer.buddies
        assert donor in grid.peer(model).buddies
        for peer in grid.peers():
            if peer.path == old_path:
                assert donor not in peer.buddies

    def test_listeners_fire_on_conversion(self):
        grid, groups = _grid_with_groups(seed=9)
        tracker = LoadTracker()
        hot, donor = _hot_and_donor(grid, groups)
        for _ in range(100):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(
                replicate_threshold=1.0, retract_floor=0.25, min_observations=0
            ),
        )
        fired = []
        balancer.subscribe(lambda: fired.append(True))
        balancer.after_meeting(donor, donor)
        assert fired == [True]


class TestSqrtStrategy:
    def test_sqrt_targets_track_load_shape(self):
        grid, groups = _grid_with_groups()
        tracker = LoadTracker(half_life=10_000.0)
        paths = sorted(path for path in groups if path)
        hot, cold = paths[0], paths[-1]
        for _ in range(400):
            tracker.observe(hot)
        for _ in range(100):
            tracker.observe(cold)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(strategy="sqrt", min_observations=0),
        )
        targets = balancer._sqrt_targets(groups)
        # sqrt(4x) = 2 * sqrt(x): the hot target is ~double, not ~4x.
        assert targets[hot] >= targets[cold]
        assert targets[hot] <= 3 * max(targets[cold], 1)

    def test_sqrt_no_load_is_a_no_op(self):
        grid, groups = _grid_with_groups()
        balancer = ReplicaBalancer(
            grid,
            LoadTracker(),
            config=ReplicationConfig(strategy="sqrt", min_observations=0),
        )
        hot, donor = _hot_and_donor(grid, groups)
        assert balancer.after_meeting(donor, donor) is False

    def test_sqrt_converges_toward_targets(self):
        grid, groups = _grid_with_groups(seed=11)
        tracker = LoadTracker(half_life=10_000.0)
        hot, _ = _hot_and_donor(grid, groups)
        for _ in range(500):
            tracker.observe(hot)
        balancer = ReplicaBalancer(
            grid,
            tracker,
            config=ReplicationConfig(strategy="sqrt", min_observations=0),
        )
        before = len(groups[hot])
        for address in grid.addresses():
            balancer.after_meeting(address, address)
        after = len(grid.replica_groups()[hot])
        assert after > before
