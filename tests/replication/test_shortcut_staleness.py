"""Shortcut-cache staleness under replica conversion.

When the :class:`~repro.replication.ReplicaBalancer` converts a peer to
a hot replica group, the peer stays online but answers for different
keys — every shortcut naming it, in the object-core
:class:`~repro.core.shortcuts.ShortcutSearchEngine` *and* the
array-plane :class:`~repro.fast.shortcuts.ArrayShortcutCache`, is stale
at once.  The facade wires the balancer's conversion listeners to both
caches (``Grid._on_replica_conversion``); these tests pin that contract.
"""

from __future__ import annotations

import pytest

from repro.api import Grid
from repro.fast import HAVE_NUMPY
from repro.replication import ReplicationConfig
from tests.conftest import build_grid

#: Balancer config that converts on the first meeting once load is skewed.
EAGER = ReplicationConfig(
    replicate_threshold=1.0, retract_floor=0.25, min_observations=0
)


def _hot_and_donor(pgrid):
    """A hot path and a donor address from a different, larger group."""
    groups = pgrid.replica_groups()
    sized = sorted(
        (path for path in groups if path), key=lambda p: (len(groups[p]), p)
    )
    hot = sized[0]
    for path in reversed(sized):
        if path != hot and len(groups[path]) >= 2:
            return hot, groups[path][0], groups[hot][0]
    raise AssertionError("grid has no donor group — pick another seed")


@pytest.fixture
def facade():
    return Grid(
        build_grid(48, maxl=4, refmax=2, seed=9),
        replication=EAGER,
        shortcut_capacity=16,
    )


def _skew_load(facade, hot: str) -> None:
    for _ in range(100):
        facade.load_tracker.observe(hot)


class TestObjectCacheStaleness:
    def test_conversion_drops_entries_naming_the_donor(self, facade):
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        engine = facade.shortcut_engine
        donor_path = facade.pgrid.peer(donor).path
        # A real search whose responder is pinned to the donor, so the
        # cache holds a live entry naming it.
        engine.cache_for(0).put(donor_path, donor)
        engine.cache_for(5).put(donor_path, donor)
        _skew_load(facade, hot)
        assert facade.balancer.after_meeting(donor, hot_member) is True

        assert engine.cache_for(0).get(donor_path) is None
        assert engine.cache_for(5).get(donor_path) is None
        assert engine.stats.invalidations == 2

    def test_stale_shortcut_would_have_answered_wrong(self, facade):
        # The donor is still online after conversion — the liveness check
        # alone would NOT catch the staleness; only the conversion
        # listener (or the responsibility check on use) does.
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        donor_path = facade.pgrid.peer(donor).path
        _skew_load(facade, hot)
        facade.balancer.after_meeting(donor, hot_member)
        assert facade.pgrid.is_online(donor)
        assert facade.pgrid.peer(donor).path == hot
        assert not facade.pgrid.peer(donor).responsible_for(donor_path + "0")

    def test_search_after_conversion_repopulates_fresh(self, facade):
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        donor_path = facade.pgrid.peer(donor).path
        query = (donor_path + "0" * 8)[: facade.pgrid.config.maxl]
        engine = facade.shortcut_engine
        engine.cache_for(0).put(query, donor)
        _skew_load(facade, hot)
        facade.balancer.after_meeting(donor, hot_member)

        result = facade.search(query, start=0)
        assert result.found
        assert result.responder != donor
        assert engine.cache_for(0).get(query) == result.responder


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestArrayCacheStaleness:
    def test_conversion_drops_dense_entries_naming_the_donor(self, facade):
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        facade.batch_query_engine()  # builds the dense index map
        dense_donor = facade._batch_index[donor]
        cache = facade._array_shortcuts
        cache.put(0, 0b101, 3, dense_donor)
        cache.put(3, 0b011, 3, dense_donor)
        cache.put(3, 0b111, 3, dense_donor + 1)  # unrelated entry survives
        _skew_load(facade, hot)
        assert facade.balancer.after_meeting(donor, hot_member) is True

        assert cache.get(0, 0b101, 3) is None
        assert cache.get(3, 0b011, 3) is None
        assert cache.get(3, 0b111, 3) == dense_donor + 1
        assert cache.stats.invalidations == 2

    def test_batch_engine_rebuild_keeps_the_cache(self, facade):
        # Conversion also drops the cached batch-plane snapshot (routing
        # changed), but the shortcut cache survives the rebuild: dense
        # indices are stable because membership is unchanged.
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        engine_before = facade.batch_query_engine()
        cache = facade._array_shortcuts
        assert engine_before.shortcuts is cache
        _skew_load(facade, hot)
        facade.balancer.after_meeting(donor, hot_member)
        assert facade._batch_engine is None  # snapshot invalidated
        engine_after = facade.batch_query_engine()
        assert engine_after is not engine_before
        assert engine_after.shortcuts is cache

    def test_both_caches_invalidate_on_one_conversion(self, facade):
        hot, donor, hot_member = _hot_and_donor(facade.pgrid)
        donor_path = facade.pgrid.peer(donor).path
        facade.batch_query_engine()
        dense_donor = facade._batch_index[donor]
        facade.shortcut_engine.cache_for(0).put(donor_path, donor)
        facade._array_shortcuts.put(0, int(donor_path, 2), len(donor_path), dense_donor)
        _skew_load(facade, hot)
        facade.balancer.after_meeting(donor, hot_member)

        assert facade.shortcut_engine.stats.invalidations == 1
        assert facade._array_shortcuts.stats.invalidations == 1
        assert facade.shortcut_engine.cache_for(0).get(donor_path) is None
        assert (
            facade._array_shortcuts.get(0, int(donor_path, 2), len(donor_path))
            is None
        )
