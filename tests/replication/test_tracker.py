"""LoadTracker EWMA accounting and PathResolver caching."""

from __future__ import annotations

import pytest

from repro.replication import LoadProbe, LoadTracker, PathResolver
from tests.conftest import build_grid


class TestLoadTracker:
    def test_record_accumulates_at_same_tick(self):
        tracker = LoadTracker(half_life=8.0)
        tracker.record("00")
        tracker.record("00", weight=2.0)
        assert tracker.load("00") == pytest.approx(3.0)

    def test_half_life_decay(self):
        tracker = LoadTracker(half_life=10.0)
        tracker.record("01")
        tracker.tick(10)
        assert tracker.load("01") == pytest.approx(0.5)
        tracker.tick(10)
        assert tracker.load("01") == pytest.approx(0.25)

    def test_observe_ticks_then_credits(self):
        tracker = LoadTracker(half_life=4.0)
        tracker.observe("11")
        assert tracker.clock == 1
        assert tracker.observed == 1
        # The credit lands at the *new* clock, undecayed.
        assert tracker.load("11") == pytest.approx(1.0)

    def test_observe_none_ticks_clock_without_credit(self):
        tracker = LoadTracker(half_life=2.0)
        tracker.observe("0")
        before = tracker.load("0")
        tracker.observe(None)
        assert tracker.clock == 2
        assert tracker.load("0") < before  # everyone decays
        assert tracker.total() == pytest.approx(tracker.load("0"))

    def test_lazy_decay_matches_eager(self):
        """Touching a path late applies the same decay as ticking through."""
        lazy = LoadTracker(half_life=7.0)
        lazy.record("101")
        lazy.tick(23)
        eager = LoadTracker(half_life=7.0)
        eager.record("101")
        for _ in range(23):
            eager.tick(1)
        assert lazy.load("101") == pytest.approx(eager.load("101"))

    def test_hottest_and_tie_break(self):
        tracker = LoadTracker(half_life=64.0)
        tracker.record("00", weight=2.0)
        tracker.record("01", weight=2.0)
        tracker.record("10", weight=1.0)
        # Equal loads: the lexicographically larger path wins (max over
        # (load, path) tuples) — deterministic either way.
        path, load = tracker.hottest()
        assert path == "01"
        assert load == pytest.approx(2.0)

    def test_hottest_empty(self):
        assert LoadTracker().hottest() is None

    def test_reset(self):
        tracker = LoadTracker()
        tracker.observe("0")
        tracker.reset()
        assert tracker.clock == 0
        assert tracker.observed == 0
        assert tracker.loads() == {}

    def test_snapshot_shape(self):
        tracker = LoadTracker(half_life=16.0)
        tracker.observe("0")
        snap = tracker.snapshot()
        assert snap["clock"] == 1
        assert snap["observed"] == 1
        assert snap["half_life"] == 16.0
        assert snap["loads"] == {"0": pytest.approx(1.0)}

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTracker(half_life=0.0)
        with pytest.raises(ValueError):
            LoadTracker().tick(-1)


class TestPathResolver:
    def test_resolves_longest_matching_prefix(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=3)
        resolver = PathResolver(grid)
        paths = {peer.path for peer in grid.peers()}
        query = "0000"
        resolved = resolver(query)
        assert resolved is not None
        assert query.startswith(resolved)
        assert resolved in paths
        # No strictly longer prefix of the query is a live path.
        for depth in range(len(resolved) + 1, len(query) + 1):
            assert query[:depth] not in paths

    def test_cache_tracks_conversions_via_invalidate(self):
        grid = build_grid(32, maxl=3, refmax=2, seed=5)
        resolver = PathResolver(grid)
        victim = grid.peer(grid.addresses()[0])
        old_path = victim.path
        query = old_path + "0" * 4
        assert resolver(query) == old_path
        # A path change without a membership change is invisible until
        # the balancer bumps the epoch...
        others = {peer.path for peer in grid.peers() if peer is not victim}
        victim.set_path(next(iter(others)))
        if old_path not in others:
            assert resolver(query) == old_path  # stale cache
            resolver.invalidate()
            assert resolver(query) != old_path

    def test_unresolvable_query_returns_none(self):
        grid = build_grid(32, maxl=3, refmax=2, seed=6)
        resolver = PathResolver(grid)
        # Strip every peer holding a prefix of the all-ones key by
        # resolving against an impossible alphabet instead: a query of
        # a different alphabet shares no prefix with any binary path
        # except the root, which only matches if some peer sits at "".
        has_root = any(peer.path == "" for peer in grid.peers())
        assert (resolver("zzzz") is None) == (not has_root)


class TestLoadProbe:
    def test_search_end_feeds_tracker(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=7)
        tracker = LoadTracker()
        probe = LoadProbe(tracker, PathResolver(grid))
        probe.on_search_end(
            "dfs", 0, "0000", found=True, messages=3, failed_attempts=0
        )
        assert tracker.clock == 1
        assert tracker.observed == 1
        hottest = tracker.hottest()
        assert hottest is not None
        assert "0000".startswith(hottest[0])
