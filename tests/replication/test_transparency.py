"""A balancer that never fires must be a strict no-op (ISSUE 9 contract).

Mirrors the probe- and fault-transparency suites: a ``Grid`` built with
``replication=None``, ``replication="static"`` or an adaptive config
whose warm-up gate never opens must return field-for-field identical
results — and leave the grid RNG stream bit-identical — across all three
drivers.  This is what lets experiments attach the balancer
unconditionally and trust that the static column really is the §4
baseline.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Grid
from repro.core import keys as keyspace
from repro.core.exchange import ExchangeEngine
from repro.replication import (
    LoadTracker,
    ReplicaBalancer,
    ReplicationConfig,
)
from tests.conftest import build_grid

QUERIES = ("0000", "0101", "1101")
STARTS = (0, 13, 31)

#: An adaptive config whose warm-up gate never opens: attached but inert.
INERT_ADAPTIVE = ReplicationConfig(strategy="adaptive", min_observations=10**9)


def _facade_pair(seed: int, replication):
    plain = Grid.build(peers=48, maxl=4, refmax=2, seed=seed)
    tracked = Grid.build(
        peers=48, maxl=4, refmax=2, seed=seed, replication=replication
    )
    return plain, tracked


def _run_workload(service, *, updates: bool = False):
    outcomes = []
    for start in STARTS:
        for query in QUERIES:
            outcomes.append(service.search(query, start=start))
    if updates:
        for index, query in enumerate(QUERIES):
            outcomes.append(
                service.update(query, holder=STARTS[index], version=index)
            )
    return outcomes


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10**6),
    replication=st.sampled_from(["static", INERT_ADAPTIVE]),
    driver=st.sampled_from(["engine", "node", "async"]),
)
def test_inert_balancer_is_driver_transparent(seed, replication, driver):
    """Static and gated-adaptive grids match bare grids on every driver."""
    plain_grid, tracked_grid = _facade_pair(seed, replication)
    with plain_grid.serve(driver) as plain, tracked_grid.serve(driver) as tracked:
        assert _run_workload(plain, updates=True) == _run_workload(
            tracked, updates=True
        )
    assert plain_grid.pgrid.rng.getstate() == tracked_grid.pgrid.rng.getstate()
    assert tracked_grid.balancer.stats.conversions == 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), meeting_seed=st.integers(0, 10**6))
def test_static_balancer_is_exchange_transparent(seed, meeting_seed):
    """Exchange meetings with a static balancer leave peers bit-identical."""
    plain_grid = build_grid(48, maxl=4, refmax=2, seed=seed)
    tracked_grid = build_grid(48, maxl=4, refmax=2, seed=seed)
    tracker = LoadTracker()
    for _ in range(200):
        tracker.observe("0000")  # plenty of (would-be) load
    balancer = ReplicaBalancer(
        tracked_grid,
        tracker,
        config=ReplicationConfig(strategy="static", min_observations=0),
    )
    plain_engine = ExchangeEngine(plain_grid)
    tracked_engine = ExchangeEngine(tracked_grid, balancer=balancer)
    pair_rng = random.Random(meeting_seed)
    addresses = plain_grid.addresses()
    for _ in range(40):
        a1, a2 = pair_rng.sample(addresses, 2)
        plain_engine.meet(a1, a2)
        tracked_engine.meet(a1, a2)
    assert {p.address: (p.path, p.routing.to_lists()) for p in plain_grid.peers()} == {
        p.address: (p.path, p.routing.to_lists()) for p in tracked_grid.peers()
    }
    assert plain_grid.rng.getstate() == tracked_grid.rng.getstate()
    assert balancer.stats.meetings_seen == 40
    assert balancer.stats.conversions == 0


def test_drivers_agree_with_replication_enabled():
    """An *active* adaptive grid still serves identically on all drivers.

    Balancing only happens inside :meth:`Grid.rebalance` / update
    propagation, so three identically-built adaptive grids that each run
    the same operation sequence stay equal to each other (the cross-driver
    equivalence the facade guarantees) even after conversions.
    """
    config = ReplicationConfig(
        strategy="adaptive",
        replicate_threshold=1.0,
        retract_floor=0.25,
        min_replicas=2,
        min_observations=10,
    )
    results = {}
    for driver in ("engine", "node", "async"):
        grid = Grid.build(peers=48, maxl=4, refmax=2, seed=77, replication=config)
        rng = random.Random(99)
        with grid.serve(driver) as service:
            for _ in range(120):
                service.search(
                    "0000" + keyspace.random_key(4, rng),
                    start=rng.choice(grid.addresses()),
                )
        delta = grid.rebalance(meetings=48)
        results[driver] = (
            delta,
            {p.address: p.path for p in grid.pgrid.peers()},
            grid.pgrid.rng.getstate(),
        )
    assert results["engine"] == results["node"] == results["async"]
    assert results["engine"][0]["conversions"] > 0


def test_facade_observes_searches_on_every_surface():
    """Engine probes, node/async wrappers and the batch plane all feed
    the same tracker clock."""
    grid = Grid.build(peers=48, maxl=4, refmax=2, seed=5, replication="adaptive")
    grid.search("0000")
    assert grid.load_tracker.clock == 1
    with grid.serve("node") as service:
        service.search("0001", start=3)
    assert grid.load_tracker.clock == 2
    with grid.serve("async") as service:
        service.search("0010", start=3)
    assert grid.load_tracker.clock == 3
