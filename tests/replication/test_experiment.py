"""The replication ablation harness and its CI gate logic."""

from __future__ import annotations

import pytest

from repro.experiments import replication
from repro.experiments.common import ExperimentResult


def _result(rows, *, exponents=(1.25,), min_improvement=0.5, found_floor=0.99):
    return ExperimentResult(
        experiment_id="replication",
        title="synthetic",
        headers=replication.HEADERS,
        rows=rows,
        config={
            "exponents": list(exponents),
            "min_p95_improvement": min_improvement,
            "found_floor": found_floor,
        },
    )


def _row(exponent, strategy, *, found=1.0, mean=2.0, p95=4.0):
    return [exponent, strategy, found, mean, p95, 4, 1.0, 0]


class TestCheckDeviations:
    def test_passes_when_adaptive_wins(self):
        result = _result(
            [
                _row(1.25, "static", p95=4.0),
                _row(1.25, "sqrt", p95=3.0),
                _row(1.25, "adaptive", p95=2.0),
            ]
        )
        assert replication.check_deviations(result) == []

    def test_flags_insufficient_p95_improvement(self):
        result = _result(
            [
                _row(1.25, "static", p95=4.0),
                _row(1.25, "sqrt", p95=4.0),
                _row(1.25, "adaptive", p95=4.0),
            ]
        )
        violations = replication.check_deviations(result)
        assert len(violations) == 1
        assert "improvement" in violations[0]

    def test_sub_unit_exponents_are_exempt_from_the_gate(self):
        # The s=0.8 regime: conversion churn hurts the tail, and the gate
        # deliberately does not require a win there (docs/REPLICATION.md).
        result = _result(
            [
                _row(0.8, "static", p95=4.0),
                _row(0.8, "sqrt", p95=4.0),
                _row(0.8, "adaptive", p95=5.0),
            ],
            exponents=(0.8,),
        )
        assert replication.check_deviations(result) == []

    def test_flags_found_rate_regression(self):
        result = _result(
            [
                _row(1.25, "static", p95=4.0),
                _row(1.25, "sqrt", p95=3.0),
                _row(1.25, "adaptive", p95=2.0, found=0.95),
            ]
        )
        violations = replication.check_deviations(result)
        assert len(violations) == 1
        assert "found rate" in violations[0]

    def test_flags_missing_rows(self):
        result = _result([_row(1.25, "static")])
        violations = replication.check_deviations(result)
        assert any("missing row" in violation for violation in violations)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert replication._percentile(values, 0.95) == 95.0
        assert replication._percentile(values, 0.50) == 50.0

    def test_empty(self):
        assert replication._percentile([], 0.95) == 0.0

    def test_singleton(self):
        assert replication._percentile([7], 0.95) == 7.0


class TestProfiles:
    def test_known_scales(self):
        for scale in ("tiny", "smoke", "fig4", "large"):
            assert replication.replication_profile(scale).name == scale

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            replication.replication_profile("galactic")

    def test_smoke_uses_long_keys(self):
        # The gate is only winnable when the hot paths carry enough mass:
        # at s=1.0 the hottest leaf absorbs (key_length - maxl)/key_length
        # of the traffic, so the smoke profile must use hash-length keys.
        profile = replication.replication_profile("smoke")
        assert profile.key_length >= 32
        assert any(e >= 1.0 for e in profile.exponents)


class TestTinyRun:
    def test_tiny_sweep_shape_and_determinism(self):
        result = replication.run(scale="tiny")
        profile = replication.replication_profile("tiny")
        assert result.headers == replication.HEADERS
        assert len(result.rows) == len(profile.exponents) * len(
            replication.STRATEGIES
        )
        by_strategy = {row[1]: row for row in result.rows}
        # The static column never converts; adaptive grows the hot group.
        assert by_strategy["static"][7] == 0
        assert by_strategy["adaptive"][7] > 0
        assert by_strategy["adaptive"][5] > by_strategy["static"][5]
        for row in result.rows:
            assert row[2] >= 0.99  # found rate stays intact
        # Bit-for-bit reproducible: the whole sweep is a pure function of
        # the profile seed.
        again = replication.run(scale="tiny")
        assert again.rows == result.rows

    def test_main_runs_tiny_without_check(self, capsys, tmp_path):
        exit_code = replication.main(
            ["--scale", "tiny", "--save", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "replication.csv").exists()
        assert "replication" in capsys.readouterr().out
