"""The snapshot fan-out path through the trial executor.

Two layers under test: the numpy-free ``__trial_resolve__`` duck
protocol in :mod:`repro.perf.parallel` (any kwarg exposing it is
late-bound on the worker side, serial path included), and the
shared-memory :class:`~repro.fast.GridSnapshot` riding that protocol —
sweeps shipping only a :class:`~repro.fast.SnapshotRef` must stay
bit-identical to serial while each worker attaches the segment at most
once.
"""

from __future__ import annotations

import pytest

from repro.core.config import PGridConfig
from repro.fast import HAVE_NUMPY
from repro.perf.parallel import (
    TrialSpec,
    parallel_starmap,
    run_trials,
    shutdown_pool,
    warm_pool,
)


class _Lazy:
    """Minimal resolvable kwarg: pickles as itself, resolves to *value*."""

    def __init__(self, value: int) -> None:
        self.value = value

    def __trial_resolve__(self) -> int:
        return self.value


def _identity(payload):
    return payload


def _add(a, b):
    return a + b


class TestResolveProtocol:
    def test_serial_path_resolves_too(self):
        # Resolution must not be a parallel-only step, or serial and
        # pooled runs would see different arguments.
        assert run_trials(
            _identity, [TrialSpec(kwargs={"payload": _Lazy(7)})], jobs=1
        ) == [7]

    def test_parallel_path_resolves(self):
        specs = [TrialSpec(kwargs={"payload": _Lazy(v)}) for v in range(6)]
        try:
            assert run_trials(_identity, specs, jobs=2) == list(range(6))
        finally:
            shutdown_pool()

    def test_only_resolvable_kwargs_are_touched(self):
        assert parallel_starmap(
            _add, [{"a": _Lazy(1), "b": 2}], jobs=1
        ) == [3]

    def test_plain_values_pass_through_unchanged(self):
        payload = {"nested": [1, 2]}
        [result] = run_trials(
            _identity, [TrialSpec(kwargs={"payload": payload})], jobs=1
        )
        assert result is payload


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestSnapshotSweep:
    CONFIG = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)

    @pytest.fixture(scope="class")
    def snapshot(self):
        from repro.sim.builder import construct_snapshot

        snap, report = construct_snapshot(
            self.CONFIG,
            200,
            seed=31,
            threshold_fraction=0.985,
            max_exchanges=600 * 200,
        )
        assert report.converged
        yield snap
        snap.close()
        snap.unlink()

    def test_ref_pickles_small_and_resolves_to_owner(self, snapshot):
        import pickle

        from repro.fast.snapshot import resolve

        ref = snapshot.ref()
        assert len(pickle.dumps(ref)) < 4096
        assert ref.__trial_resolve__() is snapshot
        assert resolve(snapshot.handle) is snapshot

    def test_pooled_sweep_bit_identical_to_serial(self, snapshot):
        from repro.experiments.common import run_snapshot_search_sweep

        try:
            serial = run_snapshot_search_sweep(
                snapshot, trials=6, n_queries=40, jobs=1, master_seed=5
            )
            pooled = run_snapshot_search_sweep(
                snapshot, trials=6, n_queries=40, jobs=2, master_seed=5
            )
        finally:
            shutdown_pool()
        assert [t["results"] for t in serial] == [t["results"] for t in pooled]

    def test_workers_attach_at_most_once(self, snapshot):
        # Workers warmed *before* the sweep run many trials each; the
        # per-process attach cache must collapse them to one fresh attach
        # per worker (or zero, when the worker forked after the snapshot
        # was created and inherited the owner mapping).
        from repro.experiments.common import run_snapshot_search_sweep

        try:
            warm_pool(2)
            pooled = run_snapshot_search_sweep(
                snapshot, trials=8, n_queries=25, jobs=2, master_seed=6
            )
        finally:
            shutdown_pool()
        per_worker: dict[int, int] = {}
        for trial in pooled:
            worker = trial["worker"]
            per_worker[worker["pid"]] = max(
                per_worker.get(worker["pid"], 0), worker["fresh_attaches"]
            )
        assert per_worker, "no worker reported back"
        assert all(count <= 1 for count in per_worker.values()), per_worker

    def test_serial_trials_report_zero_attaches(self, snapshot):
        from repro.experiments.common import run_snapshot_search_sweep

        serial = run_snapshot_search_sweep(
            snapshot, trials=2, n_queries=10, jobs=1, master_seed=7
        )
        # In-process the ref resolves straight to the owner snapshot.
        assert all(t["worker"]["fresh_attaches"] == 0 for t in serial)
