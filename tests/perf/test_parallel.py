"""Tests for the parallel trial executor (repro.perf.parallel).

The load-bearing property: for the same master seed, running trials with
``jobs >= 2`` (process pool) is bit-identical to running them serially —
both the per-trial results and the merged metrics snapshots.  This is what
lets every experiment expose ``--jobs`` without a reproducibility caveat.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import PGridConfig
from repro.experiments import table1_construction_scaling, table3_recmax
from repro.experiments.common import run_experiment_points, run_scenario_trials
from repro.obs.metrics import MetricsRegistry
from repro.perf import parallel
from repro.perf.parallel import (
    TrialSpec,
    merge_registries,
    parallel_starmap,
    resolve_jobs,
    run_trials,
    warm_pool,
)
from repro.sim import rng as rngmod
from repro.sim.scenario import ScenarioSpec


def _square(value: int) -> int:
    return value * value


def _seeded_draw(seed: int) -> int:
    return rngmod.derive(seed, "draw").getrandbits(32)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestRunTrials:
    def test_serial_preserves_order(self):
        specs = [TrialSpec(kwargs={"value": v}) for v in (3, 1, 2)]
        assert run_trials(_square, specs, jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        specs = [TrialSpec(kwargs={"value": v}) for v in range(8)]
        assert run_trials(_square, specs, jobs=2) == [v * v for v in range(8)]

    def test_parallel_starmap(self):
        kwargs = [{"value": v} for v in (5, 6)]
        assert parallel_starmap(_square, kwargs, jobs=2) == [25, 36]

    def test_parallel_matches_serial_for_seeded_randomness(self):
        kwargs = [{"seed": s} for s in range(6)]
        serial = parallel_starmap(_seeded_draw, kwargs, jobs=1)
        parallel = parallel_starmap(_seeded_draw, kwargs, jobs=3)
        assert serial == parallel


class TestChunkedSubmission:
    """Trials are packed into chunked pool tasks; chunking is pure
    batching — results stay bit-identical to serial for every jobs
    value and every batch size around the chunk boundaries."""

    def test_chunks_partition_payloads_in_order(self):
        payloads = [(_square, {"value": v}) for v in range(11)]
        chunks = parallel._chunk_payloads(payloads, workers=2)
        # ~_CHUNKS_PER_WORKER chunks per worker, never empty
        assert 1 <= len(chunks) <= 2 * parallel._CHUNKS_PER_WORKER
        assert all(chunk for chunk in chunks)
        flattened = [payload for chunk in chunks for payload in chunk]
        assert flattened == payloads

    def test_single_trial_single_chunk(self):
        payloads = [(_square, {"value": 7})]
        assert parallel._chunk_payloads(payloads, workers=4) == [payloads]

    @pytest.mark.parametrize("count", [2, 7, 8, 9, 17])
    def test_bit_identical_across_jobs_at_chunk_boundaries(self, count):
        specs = [TrialSpec(kwargs={"seed": s}) for s in range(count)]
        serial = run_trials(_seeded_draw, specs, jobs=1)
        for jobs in (2, 3):
            assert run_trials(_seeded_draw, specs, jobs=jobs) == serial


class TestMergeRegistries:
    def test_counters_add_and_order_independent_totals(self):
        shards = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("x").inc(amount)
            registry.histogram("h").observe(amount)
            shards.append(registry)
        merged = merge_registries(shards)
        snap = merged.snapshot()
        assert snap["counters"]["x"] == 6
        assert snap["histograms"]["h"]["count"] == 3

    def test_empty(self):
        assert merge_registries([]).snapshot()["counters"] == {}


class TestParallelExperimentsBitIdentical:
    """Satellite: serial vs --jobs 2+ identity across >= 2 experiments."""

    def test_table1_identical(self):
        kwargs = dict(
            peer_counts=(40, 64), recmax_values=(0, 2), maxl=4, seed=11
        )
        serial = table1_construction_scaling.run(jobs=1, **kwargs)
        parallel = table1_construction_scaling.run(jobs=2, **kwargs)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers
        assert serial.config == parallel.config

    def test_table3_identical(self):
        kwargs = dict(n_peers=48, maxl=4, recmax_values=(0, 1, 2), seed=7)
        serial = table3_recmax.run(jobs=1, **kwargs)
        parallel = table3_recmax.run(jobs=2, **kwargs)
        assert serial.rows == parallel.rows
        assert serial.config == parallel.config

    def test_raw_points_identical(self):
        points = [
            {"n_peers": n, "maxl": 4, "refmax": 1, "recmax": 2, "seed": 5}
            for n in (32, 48, 64)
        ]
        fn = table1_construction_scaling.construction_cost
        assert run_experiment_points(fn, points, jobs=1) == (
            run_experiment_points(fn, points, jobs=2)
        )


class TestScenarioTrialsBitIdentical:
    """Results *and* merged metrics snapshots match across jobs values."""

    @pytest.fixture
    def spec(self):
        return ScenarioSpec(
            n_peers=96,
            config=PGridConfig(maxl=4, refmax=3, recmax=2, recursion_fanout=2),
            items_per_peer=2,
            key_length=6,
            operations=120,
            update_fraction=0.1,
            seed=23,
        )

    def test_metrics_and_results_identical(self, spec):
        serial_metrics, serial_registry = run_scenario_trials(spec, 3, jobs=1)
        parallel_metrics, parallel_registry = run_scenario_trials(
            spec, 3, jobs=2
        )
        assert serial_metrics == parallel_metrics
        assert serial_registry.snapshot() == parallel_registry.snapshot()

    def test_trials_are_independent_of_each_other(self, spec):
        # Trial seeds derive from (master, index) alone: a superset run
        # reproduces the prefix trials exactly.
        two, _ = run_scenario_trials(spec, 2, jobs=1)
        three, _ = run_scenario_trials(spec, 3, jobs=1)
        assert three[:2] == two

    def test_trials_validated(self, spec):
        with pytest.raises(ValueError):
            run_scenario_trials(spec, 0)


class TestSharedPool:
    """The executor is process-global: calls reuse it instead of paying
    worker spawn per sweep point (the BENCH_search 0.74x regression)."""

    def setup_method(self):
        parallel.shutdown_pool()

    def teardown_method(self):
        parallel.shutdown_pool()

    def test_pool_reused_across_calls(self):
        specs = [TrialSpec(kwargs={"value": v}) for v in range(4)]
        run_trials(_square, specs, jobs=2)
        first = parallel._pool
        assert first is not None
        run_trials(_square, specs, jobs=2)
        assert parallel._pool is first

    def test_pool_grows_but_never_shrinks(self):
        specs = [TrialSpec(kwargs={"value": v}) for v in range(4)]
        run_trials(_square, specs, jobs=2)
        small = parallel._pool
        run_trials(_square, specs, jobs=3)
        grown = parallel._pool
        assert grown is not small
        assert parallel._pool_workers == 3
        # a smaller request reuses the bigger pool
        run_trials(_square, specs, jobs=2)
        assert parallel._pool is grown

    def test_warm_pool_prespawns_workers(self):
        assert parallel._pool is None
        assert warm_pool(2) == 2
        assert parallel._pool is not None
        assert parallel._pool_workers == 2
        # the warmed pool is the one run_trials picks up
        pool = parallel._pool
        specs = [TrialSpec(kwargs={"value": v}) for v in range(4)]
        assert run_trials(_square, specs, jobs=2) == [0, 1, 4, 9]
        assert parallel._pool is pool

    def test_warm_pool_serial_is_noop(self):
        assert warm_pool(1) == 1
        assert parallel._pool is None

    def test_shutdown_is_idempotent(self):
        parallel.shutdown_pool()
        parallel.shutdown_pool()
        assert parallel._pool is None

    def test_results_identical_through_shared_pool(self):
        specs = [TrialSpec(kwargs={"seed": s}) for s in range(6)]
        serial = run_trials(_seeded_draw, specs, jobs=1)
        # two parallel batches over the same pool instance
        first = run_trials(_seeded_draw, specs, jobs=2)
        second = run_trials(_seeded_draw, specs, jobs=2)
        assert first == serial
        assert second == serial
