"""Tests for the vectorized batch query plane (repro.fast.query).

Contract under test (module docstring of ``repro.fast.query``): routing
and accounting semantics identical to the object core, RNG discipline
different — so runs are *deterministic per seed* and *statistically
equivalent* to ``SearchEngine``/``UpdateEngine``/``ReadEngine``, never
bit-identical.  The all-online case is special: success there is purely
structural, which lets several properties be asserted exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import PGridConfig
from repro.core.grid import AlwaysOnline, PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.fast import HAVE_NUMPY, ArrayGrid
from repro.fast.batch import BatchGridBuilder
from repro.fast.query import BatchQueryEngine, _pack_keys
from repro.protocol.update import UpdateStrategy
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")


def build_grid(seed: int, n: int = 60, maxl: int = 5, refmax: int = 3) -> PGrid:
    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(n)
    GridBuilder(grid).build(max_exchanges=40_000)
    data_rng = random.Random(seed + 1)
    grid.seed_index(
        [
            (
                DataItem(
                    key=format(data_rng.getrandbits(maxl), f"0{maxl}b"),
                    value=f"value-{address}",
                ),
                address,
            )
            for address in grid.addresses()
        ]
    )
    return grid


def engine_for(
    grid: PGrid, *, seed: int = 42, p_online: float | None = None, **kwargs
) -> BatchQueryEngine:
    return BatchQueryEngine.from_arraygrid(
        ArrayGrid.from_pgrid(grid), seed=seed, p_online=p_online, **kwargs
    )


def workload(grid: PGrid, seed: int, count: int, length: int):
    rng = random.Random(seed)
    keys = [format(rng.getrandbits(length), f"0{length}b") for _ in range(count)]
    starts = [rng.randrange(len(grid)) for _ in range(count)]
    return keys, starts


class TestDeterminismAndStructure:
    def test_same_seed_bit_identical(self):
        grid = build_grid(3)
        keys, starts = workload(grid, 7, 200, 4)
        first = engine_for(grid, seed=9).search_many(keys, starts)
        second = engine_for(grid, seed=9).search_many(keys, starts)
        assert np.array_equal(first.found, second.found)
        assert np.array_equal(first.responder, second.responder)
        assert np.array_equal(first.messages, second.messages)
        assert np.array_equal(first.failed_attempts, second.failed_attempts)

    def test_all_online_success_is_structural(self):
        # With p=1 every contact succeeds, so *whether* a query is found
        # does not depend on the seed or on chunking — only cost does.
        grid = build_grid(5)
        keys, starts = workload(grid, 11, 200, 4)
        baseline = engine_for(grid, seed=1).search_many(keys, starts)
        other_seed = engine_for(grid, seed=2).search_many(keys, starts)
        chunked = engine_for(grid, seed=3, chunk=17).search_many(keys, starts)
        assert np.array_equal(baseline.found, other_seed.found)
        assert np.array_equal(baseline.found, chunked.found)

    def test_responders_are_responsible(self):
        grid = build_grid(13)
        agrid = ArrayGrid.from_pgrid(grid)
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=4)
        keys, starts = workload(grid, 17, 200, 4)
        result = engine.search_many(keys, starts)
        assert result.found.any()
        for i in np.flatnonzero(result.found):
            path = agrid.path_str(int(result.responder[i]))
            key = keys[int(i)]
            assert key.startswith(path) or path.startswith(key)

    def test_start_peer_answers_locally(self):
        # A start peer responsible for the query answers without any
        # message — same accounting as the object engine.
        grid = build_grid(19)
        agrid = ArrayGrid.from_pgrid(grid)
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=5)
        start = 0
        key = agrid.path_str(start) or "0"
        result = engine.search_many([key], [start])
        assert bool(result.found[0])
        assert int(result.responder[0]) == start
        assert int(result.messages[0]) == 0
        assert int(result.failed_attempts[0]) == 0


class TestObjectCoreEquivalence:
    def test_all_online_found_set_matches_object_core(self):
        grid = build_grid(23)
        keys, starts = workload(grid, 29, 300, 4)
        engine = engine_for(grid, seed=6)
        batch = engine.search_many(keys, starts)
        addresses = grid.addresses()
        search = SearchEngine(grid)
        object_found = [
            search.query_from(addresses[start], key).found
            for key, start in zip(keys, starts)
        ]
        assert batch.found.tolist() == object_found

    def test_all_online_messages_statistically_close(self):
        grid = build_grid(31)
        keys, starts = workload(grid, 37, 400, 4)
        engine = engine_for(grid, seed=7)
        batch = engine.search_many(keys, starts)
        addresses = grid.addresses()
        search = SearchEngine(grid)
        object_messages = [
            search.query_from(addresses[start], key).messages
            for key, start in zip(keys, starts)
        ]
        object_mean = sum(object_messages) / len(object_messages)
        assert batch.mean_messages == pytest.approx(object_mean, rel=0.10)

    def test_under_churn_found_rate_close(self):
        grid = build_grid(41)
        keys, starts = workload(grid, 43, 600, 4)
        engine = engine_for(grid, seed=8, p_online=0.3)
        batch = engine.search_many(keys, starts)
        addresses = grid.addresses()
        grid.online_oracle = BernoulliChurn(0.3, random.Random(99))
        search = SearchEngine(grid)
        object_rate = sum(
            search.query_from(addresses[start], key).found
            for key, start in zip(keys, starts)
        ) / len(keys)
        assert batch.found_rate == pytest.approx(object_rate, abs=0.05)
        assert batch.failed_attempts.sum() > 0


class TestBreadthAndStrategies:
    def test_breadth_reaches_only_replicas(self):
        grid = build_grid(47)
        engine = engine_for(grid, seed=9)
        keys, starts = workload(grid, 53, 100, 4)
        truth = engine.replicas_for_keys(keys)
        reach = engine.breadth_many(keys, starts, recbreadth=2)
        for i in range(len(keys)):
            reached = set(reach.reached(i).tolist())
            assert reached <= set(truth.reached(i).tolist())

    def test_breadth_coverage_monotone_in_recbreadth(self):
        grid = build_grid(59)
        keys, starts = workload(grid, 61, 150, 4)
        truth = engine_for(grid, seed=0).replicas_for_keys(keys)

        def coverage(recbreadth: int) -> float:
            reach = engine_for(grid, seed=10).breadth_many(
                keys, starts, recbreadth=recbreadth
            )
            total = count = 0.0
            for i in range(len(keys)):
                expected = set(truth.reached(i).tolist())
                if not expected:
                    continue
                got = set(reach.reached(i).tolist())
                total += len(got & expected) / len(expected)
                count += 1
            return total / count

        narrow, wide = coverage(1), coverage(3)
        assert wide >= narrow
        assert wide > 0.5

    def test_buddy_forwarding_extends_dfs_reach(self):
        grid = build_grid(67)
        keys, starts = workload(grid, 71, 100, 4)
        plain = engine_for(grid, seed=11).find_replicas_many(
            keys, starts, strategy=UpdateStrategy.REPEATED_DFS, repetition=4
        )
        buddies = engine_for(grid, seed=11).find_replicas_many(
            keys, starts, strategy=UpdateStrategy.DFS_BUDDIES, repetition=4
        )
        # Same seed, same DFS draws: buddy forwarding can only add peers.
        for i in range(len(keys)):
            assert set(plain.reached(i).tolist()) <= set(
                buddies.reached(i).tolist()
            )
        assert buddies.values.size >= plain.values.size

    def test_repetition_unions_reach(self):
        grid = build_grid(73)
        keys, starts = workload(grid, 79, 100, 4)
        once = engine_for(grid, seed=12).find_replicas_many(
            keys, starts, strategy=UpdateStrategy.REPEATED_DFS, repetition=1
        )
        many = engine_for(grid, seed=12).find_replicas_many(
            keys, starts, strategy=UpdateStrategy.REPEATED_DFS, repetition=8
        )
        assert many.values.size >= once.values.size
        assert int(many.messages.sum()) >= int(once.messages.sum())
        for i in range(len(keys)):
            reached = many.reached(i).tolist()
            assert len(set(reached)) == len(reached)  # unique per query


class TestPublishAndRead:
    def test_publish_then_repetitive_read_succeeds(self):
        grid = build_grid(83)
        engine = engine_for(grid, seed=13)
        keys, starts = workload(grid, 89, 40, 4)
        holders = [h % engine.n for h in range(len(keys))]
        versions = [1] * len(keys)
        published = engine.publish_many(
            keys,
            holders,
            versions,
            starts,
            strategy=UpdateStrategy.BFS,
            recbreadth=engine.refmax,
        )
        assert all(
            published.offsets[i + 1] > published.offsets[i]
            for i in range(len(keys))
        )
        read = engine.read_many(
            keys, holders, versions, starts, repetitive=True
        )
        assert read.success_rate == 1.0
        assert (read.repetitions >= 1).all()

    def test_non_repetitive_read_can_miss_stale_replicas(self):
        grid = build_grid(97)
        engine = engine_for(grid, seed=14)
        keys, starts = workload(grid, 101, 60, 4)
        holders = [h % engine.n for h in range(len(keys))]
        versions = [1] * len(keys)
        engine.publish_many(
            keys,
            holders,
            versions,
            starts,
            strategy=UpdateStrategy.BFS,
            repetition=1,
            recbreadth=1,
        )
        single = engine.read_many(
            keys, holders, versions, starts, repetitive=False
        )
        repeated = engine.read_many(
            keys, holders, versions, starts, repetitive=True
        )
        assert (single.repetitions == 1).all()
        assert repeated.success_rate >= single.success_rate

    def test_read_unknown_version_fails(self):
        grid = build_grid(103)
        engine = engine_for(grid, seed=15)
        keys, starts = workload(grid, 107, 20, 4)
        holders = [0] * len(keys)
        read = engine.read_many(
            keys, holders, [5] * len(keys), starts, repetitive=False
        )
        assert read.success_rate == 0.0


class _RecordingProbe:
    def __init__(self) -> None:
        self.waves: list[tuple] = []
        self.batches: list[tuple] = []

    def on_batch_wave(self, kind, *, wave, active, contacts, offline):
        self.waves.append((kind, wave, active, contacts, offline))

    def on_batch_search(self, kind, *, queries, found, messages, failed_attempts):
        self.batches.append((kind, queries, found, messages, failed_attempts))


class TestObservability:
    def test_probe_sees_waves_and_summary(self):
        grid = build_grid(109)
        probe = _RecordingProbe()
        engine = engine_for(grid, seed=16, p_online=0.5, probe=probe)
        keys, starts = workload(grid, 113, 120, 4)
        result = engine.search_many(keys, starts)
        assert probe.waves and probe.waves[0][0] == "batch_dfs"
        kind, queries, found, messages, failed = probe.batches[-1]
        assert kind == "batch_dfs"
        assert queries == len(keys)
        assert found == int(result.found.sum())
        assert messages == int(result.messages.sum())
        assert failed == int(result.failed_attempts.sum())
        # Per-wave contacts partition into delivered + offline exactly.
        contacts = sum(w[3] for w in probe.waves)
        offline = sum(w[4] for w in probe.waves)
        assert contacts == messages + failed
        assert offline == failed


class TestConstructionPaths:
    def test_from_batch_builder_gridless(self):
        config = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)
        builder = BatchGridBuilder(n=500, config=config, seed=21)
        report = builder.build(threshold_fraction=0.95, max_exchanges=500_000)
        assert report.converged
        engine = BatchQueryEngine.from_batch_builder(builder, seed=22)
        rng = random.Random(23)
        keys = [format(rng.getrandbits(4), "04b") for _ in range(200)]
        starts = [rng.randrange(engine.n) for _ in range(200)]
        result = engine.search_many(keys, starts)
        assert result.found_rate > 0.95
        assert result.mean_messages > 0

    def test_from_arraygrid_infers_p_online(self):
        grid = build_grid(127)
        grid.online_oracle = AlwaysOnline()
        assert engine_for(grid, seed=24).p_online == 1.0
        grid.online_oracle = BernoulliChurn(0.3, random.Random(0))
        assert engine_for(grid, seed=25).p_online == pytest.approx(0.3)

    def test_from_arraygrid_rejects_unknown_oracle(self):
        grid = build_grid(131)
        grid.online_oracle = object()
        with pytest.raises(ValueError, match="p_online"):
            engine_for(grid, seed=26)


class TestValidation:
    @pytest.fixture(scope="class")
    def engine(self):
        return engine_for(build_grid(137), seed=27)

    def test_empty_query_rejected(self, engine):
        with pytest.raises(ValueError, match="non-empty"):
            engine.search_many([""], [0])

    def test_length_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match="starts"):
            engine.search_many(["01", "10"], [0])

    def test_start_out_of_range_rejected(self, engine):
        with pytest.raises(ValueError, match="out of range"):
            engine.search_many(["01"], [engine.n])
        with pytest.raises(ValueError, match="out of range"):
            engine.breadth_many(["01"], [-1], recbreadth=2)

    def test_bad_parameters_rejected(self, engine):
        with pytest.raises(ValueError, match="recbreadth"):
            engine.breadth_many(["01"], [0], recbreadth=0)
        with pytest.raises(ValueError, match="repetition"):
            engine.find_replicas_many(
                ["01"], [0], strategy=UpdateStrategy.BFS, repetition=0
            )
        with pytest.raises(ValueError, match="max_repetitions"):
            engine.read_many(["01"], [0], [1], [0], repetitive=True, max_repetitions=0)

    def test_bad_construction_parameters_rejected(self):
        grid = build_grid(139)
        with pytest.raises(ValueError, match="p_online"):
            engine_for(grid, seed=28, p_online=1.5)
        with pytest.raises(ValueError, match="chunk"):
            engine_for(grid, seed=29, chunk=0)

    def test_pack_keys_round_trip(self):
        kb, kl = _pack_keys(["0101", "1", "001"])
        assert kb.tolist() == [0b0101, 1, 0b001]
        assert kl.tolist() == [4, 1, 3]


class TestGroundTruth:
    def test_replicas_for_keys_matches_object_oracle(self):
        grid = build_grid(149)
        agrid = ArrayGrid.from_pgrid(grid)
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=30)
        rng = random.Random(151)
        keys = [format(rng.getrandbits(4), "04b") for _ in range(50)]
        truth = engine.replicas_for_keys(keys)
        addresses = grid.addresses()
        for i, key in enumerate(keys):
            expected = set(grid.replicas_for_key(key))
            got = {addresses[j] for j in truth.reached(i).tolist()}
            assert got == expected
