"""Bridge fidelity: ``from_pgrid → to_pgrid`` must be the identity.

Reference *order* matters (it feeds future ``rng.sample`` draws), so the
round-trip is checked exactly, not as sets; search equivalence then
confirms a bridged grid is observably indistinguishable — same results,
same consumed draws — from the original.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.fast import ArrayGrid
from repro.faults.repair import RefHealer
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn


def build_grid(
    seed: int,
    n: int,
    maxl: int,
    refmax: int,
    *,
    with_data: bool = True,
    meetings: int = 1500,
) -> PGrid:
    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(n)
    GridBuilder(grid).build(max_meetings=meetings, max_exchanges=20_000)
    if with_data:
        data_rng = random.Random(seed + 1)
        items = []
        for index, address in enumerate(grid.addresses()):
            key = format(data_rng.getrandbits(maxl), f"0{maxl}b")
            items.append((DataItem(key=key, value=f"value-{index}"), address))
        grid.seed_index(items)
    return grid


def full_state(grid: PGrid):
    """Everything the bridge must preserve, in comparable form."""
    state = {}
    for peer in grid.peers():
        refs = sorted(
            (ref.key, ref.holder, ref.version, ref.deleted)
            for ref in peer.store.iter_refs()
        )
        items = sorted(
            (item.key, item.value) for item in peer.store.iter_items()
        )
        state[peer.address] = (
            peer.path,
            peer.routing.to_lists(),  # exact reference order per level
            sorted(peer.buddies),
            refs,
            items,
        )
    return state


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=40),
    maxl=st.integers(min_value=2, max_value=6),
    refmax=st.integers(min_value=1, max_value=5),
)
def test_round_trip_is_exact(seed, n, maxl, refmax):
    grid = build_grid(seed, n, maxl, refmax, meetings=400)
    agrid = ArrayGrid.from_pgrid(grid)
    bridged = agrid.to_pgrid(rng=random.Random(0))
    assert full_state(bridged) == full_state(grid)
    assert bridged.config is grid.config
    assert bridged.addresses() == grid.addresses()


def test_round_trip_preserves_reference_order():
    grid = build_grid(7, 30, 5, 4)
    agrid = ArrayGrid.from_pgrid(grid)
    bridged = agrid.to_pgrid(rng=random.Random(0))
    for peer in grid.peers():
        assert (
            bridged.peer(peer.address).routing.to_lists() == peer.routing.to_lists()
        )


def test_dangling_refs_rejected():
    grid = build_grid(3, 20, 4, 3, with_data=False)
    victim = grid.addresses()[0]
    grid.remove_peer(victim)
    # Removal leaves dangling routing references behind; the bridge
    # must refuse rather than silently renumber.
    with pytest.raises(ValueError):
        ArrayGrid.from_pgrid(grid)


def test_search_results_bit_identical_on_bridged_grid():
    # Same seeded generator, same queries: the bridged grid must produce
    # the same result objects AND leave the generator in the same state.
    grid = build_grid(11, 40, 5, 4)
    agrid = ArrayGrid.from_pgrid(grid)
    bridged = agrid.to_pgrid(rng=random.Random(555))
    grid.rng = random.Random(555)

    engine_orig = SearchEngine(grid)
    engine_bridged = SearchEngine(bridged)
    starts = grid.addresses()
    query_rng = random.Random(99)
    for _ in range(60):
        start = query_rng.choice(starts)
        query = format(query_rng.getrandbits(5), "05b")
        r1 = engine_orig.query_from(start, query)
        r2 = engine_bridged.query_from(start, query)
        assert r1 == r2
    assert grid.rng.getstate() == bridged.rng.getstate()


class TestBridgeEdgeCases:
    """Degenerate populations and repaired (ragged) routing state."""

    def test_empty_grid_round_trip(self):
        config = PGridConfig(maxl=4, refmax=2, recmax=2, recursion_fanout=2)
        grid = PGrid(config, rng=random.Random(0))
        agrid = ArrayGrid.from_pgrid(grid)
        assert len(agrid) == 0
        assert agrid.average_path_length() == 0.0
        bridged = agrid.to_pgrid(rng=random.Random(1))
        assert bridged.addresses() == []
        assert full_state(bridged) == full_state(grid)

    def test_single_peer_round_trip_and_local_answer(self):
        config = PGridConfig(maxl=4, refmax=2, recmax=2, recursion_fanout=2)
        grid = PGrid(config, rng=random.Random(2))
        grid.add_peers(1)
        address = grid.addresses()[0]
        grid.seed_index([(DataItem(key="0110", value="only"), address)])
        agrid = ArrayGrid.from_pgrid(grid)
        bridged = agrid.to_pgrid(rng=random.Random(3))
        assert full_state(bridged) == full_state(grid)
        # The lone peer has the empty path: responsible for every key,
        # so both grids must answer from it without any forwarding.
        original = SearchEngine(grid).query_from(address, "0110")
        mirrored = SearchEngine(bridged).query_from(address, "0110")
        assert original == mirrored
        assert original.found

    def test_post_churn_evicted_refs_round_trip(self):
        # Healer evictions leave ragged routing lists (fewer than refmax
        # entries, possibly empty levels); the bridge must carry the
        # shrunken lists through exactly, not re-pad or drop levels.
        grid = build_grid(13, 30, 5, 3, with_data=False)
        healer = RefHealer(grid, evict_after=1, refill=False)
        for peer in grid.peers():
            for level0, level_refs in enumerate(peer.routing.to_lists()):
                if level_refs:
                    healer.record_failure(
                        peer.address, level0 + 1, level_refs[0]
                    )
        assert healer.stats.evictions > 0
        agrid = ArrayGrid.from_pgrid(grid)
        bridged = agrid.to_pgrid(rng=random.Random(0))
        assert full_state(bridged) == full_state(grid)
        assert bridged.addresses() == grid.addresses()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=32),
    maxl=st.integers(min_value=2, max_value=5),
    refmax=st.integers(min_value=1, max_value=4),
    n_queries=st.integers(min_value=1, max_value=15),
)
def test_bridged_search_bit_identical_property(seed, n, maxl, refmax, n_queries):
    """Any bridged grid answers any query stream bit-identically.

    Both grids get equal-but-independent RNGs and churn oracles, so every
    ``rng.sample`` draw and every availability coin must line up — the
    strongest observable-equivalence statement the bridge can make, under
    churn rather than the all-online easy case.
    """
    grid = build_grid(seed, n, maxl, refmax, meetings=300)
    agrid = ArrayGrid.from_pgrid(grid)
    bridged = agrid.to_pgrid(rng=random.Random(seed ^ 0xA5A5))
    grid.rng = random.Random(seed ^ 0xA5A5)
    grid.online_oracle = BernoulliChurn(0.7, random.Random(seed + 1))
    bridged.online_oracle = BernoulliChurn(0.7, random.Random(seed + 1))
    engine_orig = SearchEngine(grid)
    engine_bridged = SearchEngine(bridged)
    addresses = grid.addresses()
    query_rng = random.Random(seed + 7)
    for _ in range(n_queries):
        start = query_rng.choice(addresses)
        query = format(query_rng.getrandbits(maxl), f"0{maxl}b")
        assert engine_orig.query_from(start, query) == (
            engine_bridged.query_from(start, query)
        )
    assert grid.rng.getstate() == bridged.rng.getstate()


def test_write_back_requires_same_population():
    grid = build_grid(5, 12, 4, 2, with_data=False)
    agrid = ArrayGrid.from_pgrid(grid)
    other = PGrid(grid.config, rng=random.Random(1))
    other.add_peers(11)
    with pytest.raises(ValueError):
        agrid.write_back(other)
