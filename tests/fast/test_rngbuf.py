"""The RNG readers must replicate ``random.Random`` draw-for-draw."""

from __future__ import annotations

import random

import pytest

from repro.fast.rngbuf import HAVE_NUMPY, DirectReader, reader_for

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

READERS = ["direct"] + (["buffered"] if HAVE_NUMPY else [])


def make_reader(kind: str, rng: random.Random):
    return reader_for(rng, accelerate=(kind == "buffered"))


@pytest.mark.parametrize("kind", READERS)
class TestDrawIdentity:
    def test_getrandbits_matches(self, kind):
        twin = random.Random(101)
        reader = make_reader(kind, random.Random(101))
        for k in (1, 3, 8, 16, 31, 32, 5, 1, 32):
            for _ in range(50):
                assert reader.getrandbits(k) == twin.getrandbits(k)

    def test_randbelow_matches(self, kind):
        twin = random.Random(202)
        reader = make_reader(kind, random.Random(202))
        for n in (2, 3, 7, 10, 100, 1000, 2**20, 5, 2):
            for _ in range(50):
                assert reader.randbelow(n) == twin._randbelow(n)

    def test_sample_matches_both_branches(self, kind):
        # n <= setsize(k) takes the pool path, larger n the selection-set
        # path; both must consume the same words as random.sample.
        twin = random.Random(303)
        reader = make_reader(kind, random.Random(303))
        for n, k in ((5, 2), (10, 3), (21, 2), (22, 2), (100, 7), (500, 20)):
            population = list(range(1000, 1000 + n))
            for _ in range(20):
                assert reader.sample(population, k) == twin.sample(population, k)

    def test_pair_below_matches_sample_of_two(self, kind):
        twin = random.Random(404)
        reader = make_reader(kind, random.Random(404))
        for n in (22, 50, 1000, 4096):
            for _ in range(50):
                expected = tuple(twin.sample(range(n), 2))
                assert reader.pair_below(n) == expected

    def test_interleaved_draws_match(self, kind):
        twin = random.Random(505)
        reader = make_reader(kind, random.Random(505))
        for round_index in range(30):
            assert reader.getrandbits(7) == twin.getrandbits(7)
            assert reader.randbelow(97) == twin._randbelow(97)
            assert reader.sample(range(40), 5) == twin.sample(range(40), 5)

    def test_sample_validates(self, kind):
        reader = make_reader(kind, random.Random(0))
        with pytest.raises(ValueError):
            reader.sample(range(3), 4)


class TestDirectReader:
    def test_state_always_current(self):
        rng = random.Random(7)
        twin = random.Random(7)
        reader = DirectReader(rng)
        reader.sample(range(100), 3)
        twin.sample(range(100), 3)
        assert rng.getstate() == twin.getstate()
        # Direct draws after reader use continue the same stream.
        assert rng.random() == twin.random()


@needs_numpy
class TestBufferedReader:
    def test_sync_restores_exact_state(self):
        rng = random.Random(99)
        twin = random.Random(99)
        reader = reader_for(rng, accelerate=True)
        for _ in range(10):
            reader.sample(range(200), 11)
            twin.sample(range(200), 11)
        reader.sync()
        assert rng.getstate() == twin.getstate()
        assert rng.random() == twin.random()

    def test_reader_usable_after_sync(self):
        rng = random.Random(42)
        twin = random.Random(42)
        reader = reader_for(rng, accelerate=True)
        assert reader.getrandbits(16) == twin.getrandbits(16)
        reader.sync()
        assert reader.getrandbits(16) == twin.getrandbits(16)
        reader.sync()
        assert rng.getstate() == twin.getstate()

    def test_sync_without_draws_is_safe(self):
        rng = random.Random(1)
        state = rng.getstate()
        reader = reader_for(rng, accelerate=True)
        reader.sync()
        assert rng.getstate() == state

    def test_small_block_refills(self):
        twin = random.Random(55)
        reader = reader_for(random.Random(55), accelerate=True, block=4)
        for _ in range(200):
            assert reader.getrandbits(32) == twin.getrandbits(32)

    def test_block_validation(self):
        with pytest.raises(ValueError):
            reader_for(random.Random(0), accelerate=True, block=0)
