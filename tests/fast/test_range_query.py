"""Vectorized range search vs the object core's ``query_range``.

Both cores resolve the same canonical cover and run one
subtree-enumerating breadth search per prefix, but enumeration reach is
RNG-order dependent in *both* engines (a peer's out-edges depend on its
arrival state, and candidate order comes from the engine RNG), so the
equivalence contract is the batch plane's usual one: exact agreement on
covers and on the found index entries of a well-replicated grid,
statistical agreement on responder/message accounting.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Grid
from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.errors import InvalidConfigError
from repro.fast import HAVE_NUMPY, ArrayGrid
from repro.protocol.search import key_in_range
from repro.sim.builder import GridBuilder

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

if HAVE_NUMPY:
    from repro.fast import BatchQueryEngine

CONFIG = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)
KEY_LENGTH = CONFIG.maxl


def _ranges(count: int, seed: int) -> list[tuple[str, str]]:
    """Random equal-width ``[low, high]`` pairs over the key space."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        width = rng.choice([2, 3, KEY_LENGTH])
        a, b = sorted(rng.randrange(1 << width) for _ in range(2))
        out.append((format(a, f"0{width}b"), format(b, f"0{width}b")))
    return out


@pytest.fixture(scope="module")
def built_grid() -> PGrid:
    grid = PGrid(CONFIG, rng=random.Random(11))
    grid.add_peers(60)
    GridBuilder(grid).build(max_exchanges=40_000)
    grid.seed_index(
        [
            (DataItem(format(k, "05b"), f"v{k}"), grid.addresses()[k % 60])
            for k in range(32)
        ]
    )
    return grid


def _batch_engine(grid: PGrid, seed: int = 0) -> "BatchQueryEngine":
    return BatchQueryEngine.from_arraygrid(ArrayGrid.from_pgrid(grid), seed=seed)


def _object_refs(grid: PGrid, low: str, high: str, seed: int) -> set:
    grid.rng.seed(seed)
    result = SearchEngine(grid).query_range(0, low, high)
    return {(ref.key, ref.holder, ref.version) for ref in result.data_refs}


class TestCoverAndRefs:
    def test_covers_are_the_canonical_decomposition(self, built_grid):
        cases = _ranges(20, seed=1)
        engine = _batch_engine(built_grid)
        batch = engine.search_range_many(
            [low for low, _ in cases],
            [high for _, high in cases],
            [i % 60 for i in range(len(cases))],
        )
        for i, (low, high) in enumerate(cases):
            assert batch.covers[i] == keyspace.range_cover(low, high)

    def test_data_refs_match_object_engine_exactly(self, built_grid):
        # Replication saturates recall on a converged all-online grid, so
        # the found index entries agree exactly even though the marginal
        # responder sets of the two enumeration walks differ.
        cases = _ranges(20, seed=2)
        engine = _batch_engine(built_grid, seed=3)
        batch = engine.search_range_many(
            [low for low, _ in cases],
            [high for _, high in cases],
            [(i * 7) % 60 for i in range(len(cases))],
        )
        for i, (low, high) in enumerate(cases):
            expected = _object_refs(built_grid, low, high, seed=i)
            got = {(r.key, r.holder, r.version) for r in batch.data_refs[i]}
            assert got == expected, f"range [{low}, {high}]"

    def test_point_range_recall(self, built_grid):
        # A degenerate [k, k] range must find exactly the entries at k.
        keys = [format(k, "05b") for k in range(0, 32, 3)]
        engine = _batch_engine(built_grid, seed=5)
        batch = engine.search_range_many(keys, keys, [0] * len(keys))
        for i, key in enumerate(keys):
            refs = batch.data_refs[i]
            assert refs, f"seeded key {key} not found"
            assert {r.key for r in refs} == {key}

    def test_refs_lie_inside_the_range(self, built_grid):
        cases = _ranges(15, seed=6)
        engine = _batch_engine(built_grid, seed=6)
        batch = engine.search_range_many(
            [low for low, _ in cases],
            [high for _, high in cases],
            [0] * len(cases),
        )
        for i, (low, high) in enumerate(cases):
            for ref in batch.data_refs[i]:
                assert key_in_range(ref.key, low, high)

    def test_with_refs_false_skips_the_store_fold(self, built_grid):
        engine = _batch_engine(built_grid, seed=7)
        batch = engine.search_range_many(
            ["001"], ["110"], [0], with_refs=False
        )
        assert batch.data_refs[0] == []
        assert batch.found(0)

    def test_responders_are_responsible_for_a_cover_prefix(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=8)
        low, high = "00100", "11000"
        batch = engine.search_range_many([low], [high], [0])
        cover = batch.covers[0]
        for dense in batch.responders(0).tolist():
            path = agrid.path_str(dense)
            assert any(
                path.startswith(prefix) or prefix.startswith(path)
                for prefix in cover
            ), f"responder path {path!r} outside cover {cover}"


class TestAccountingEquivalence:
    def test_message_and_responder_means_are_statistically_close(self, built_grid):
        cases = _ranges(40, seed=9)
        lows = [low for low, _ in cases]
        highs = [high for _, high in cases]
        starts = [(i * 11) % 60 for i in range(len(cases))]

        obj_msgs, obj_resp = [], []
        for i, (low, high) in enumerate(cases):
            built_grid.rng.seed(1000 + i)
            result = SearchEngine(built_grid).query_range(
                built_grid.addresses()[starts[i]], low, high
            )
            obj_msgs.append(result.messages)
            obj_resp.append(len(result.responders))

        engine = _batch_engine(built_grid, seed=10)
        batch = engine.search_range_many(lows, highs, starts)
        batch_msgs = batch.messages.tolist()
        batch_resp = [
            int(batch.offsets[i + 1] - batch.offsets[i]) for i in range(len(cases))
        ]

        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(batch_msgs) == pytest.approx(mean(obj_msgs), rel=0.15)
        assert mean(batch_resp) == pytest.approx(mean(obj_resp), rel=0.15)


class TestValidation:
    def test_rejects_bad_recbreadth(self, built_grid):
        engine = _batch_engine(built_grid)
        with pytest.raises(ValueError, match="recbreadth"):
            engine.search_range_many(["01"], ["10"], [0], recbreadth=0)

    def test_rejects_mismatched_bounds(self, built_grid):
        engine = _batch_engine(built_grid)
        with pytest.raises(ValueError, match="lows"):
            engine.search_range_many(["01", "00"], ["10"], [0, 0])

    def test_rejects_mismatched_starts(self, built_grid):
        engine = _batch_engine(built_grid)
        with pytest.raises(ValueError, match="starts"):
            engine.search_range_many(["01"], ["10"], [0, 1])

    def test_rejects_unequal_bound_lengths(self, built_grid):
        engine = _batch_engine(built_grid)
        with pytest.raises(ValueError, match="equal length"):
            engine.search_range_many(["0"], ["111"], [0])


class TestFacade:
    def test_array_core_returns_object_shaped_result(self, built_grid):
        grid = Grid(built_grid)
        obj = grid.search_range("001", "110", start=0, core="object")
        arr = grid.search_range("001", "110", start=0, core="array")
        assert arr.cover == obj.cover == keyspace.range_cover("001", "110")
        assert arr.low == "001" and arr.high == "110"
        assert arr.found and obj.found
        assert {(r.key, r.holder, r.version) for r in arr.data_refs} == {
            (r.key, r.holder, r.version) for r in obj.data_refs
        }
        assert arr.messages > 0
        # Array-core responders are mapped back to sparse addresses.
        assert set(arr.responders) <= set(built_grid.addresses())

    def test_unknown_core_rejected(self, built_grid):
        grid = Grid(built_grid)
        with pytest.raises(InvalidConfigError, match="unknown core"):
            grid.search_range("001", "110", core="simd")
