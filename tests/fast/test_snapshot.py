"""GridSnapshot: shared-memory round-trip, lifecycle and accounting."""

from __future__ import annotations

import contextlib
import pickle
import random
from pathlib import Path

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.storage import DataItem
from repro.fast import HAVE_NUMPY, ArrayGrid
from repro.sim.builder import GridBuilder, construct_snapshot

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

if HAVE_NUMPY:
    import numpy as np

    from repro.fast import BatchQueryEngine, GridSnapshot, SnapshotRef
    from repro.fast.snapshot import resolve

CONFIG = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)


@pytest.fixture(scope="module")
def built_grid() -> PGrid:
    grid = PGrid(CONFIG, rng=random.Random(7))
    grid.add_peers(60)
    GridBuilder(grid).build(max_exchanges=40_000)
    grid.seed_index(
        [
            (DataItem(format(k * 7 % 32, "05b"), f"v{k}"), grid.addresses()[k % 60])
            for k in range(40)
        ]
    )
    return grid


def _shm_names() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {entry.name for entry in shm.glob("pgrid_snap_*")}


def _release(snap) -> None:
    """Owner teardown that tolerates stray views still alive on failure
    paths (close() refuses while views exist; unlink always runs)."""
    with contextlib.suppress(BufferError):
        snap.close()
    snap.unlink()


class TestRoundTrip:
    def test_views_match_source_arrays(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            attached = GridSnapshot.attach(snap.handle)
            try:
                for field in ("path_bits", "path_len", "refs", "ref_len",
                              "table_depth", "addresses", "store"):
                    assert np.array_equal(attached.view(field), snap.view(field))
            finally:
                attached.close()

    def test_arraygrid_view_statistics(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        snap = GridSnapshot.from_arraygrid(agrid)
        try:
            view = snap.arraygrid()
            assert view.n == agrid.n
            assert view.average_path_length() == agrid.average_path_length()
            assert np.array_equal(view.path_bits, agrid.path_bits)
            assert np.array_equal(view.path_len, agrid.path_len)
            assert view.buddies == agrid.buddies
            assert view.replication_histogram() == agrid.replication_histogram()
            assert view.store_refs == agrid.store_refs
            del view
        finally:
            _release(snap)

    def test_engine_bit_identical_to_from_arraygrid(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        queries = [format(i % 32, "05b")[:4] for i in range(200)]
        starts = [(i * 13) % 60 for i in range(200)]
        snap = GridSnapshot.from_arraygrid(agrid)
        try:
            engine = snap.batch_query_engine(seed=99)
            twin = BatchQueryEngine.from_arraygrid(agrid, seed=99)
            assert engine._store == twin._store
            from_snap = engine.search_many(queries, starts)
            from_grid = twin.search_many(queries, starts)
            assert np.array_equal(from_snap.found, from_grid.found)
            assert np.array_equal(from_snap.responder, from_grid.responder)
            assert np.array_equal(from_snap.messages, from_grid.messages)
            del engine
        finally:
            _release(snap)

    def test_from_batch_builder_gridless_path(self):
        snap, report = construct_snapshot(
            CONFIG, 200, seed=5, threshold_fraction=0.985,
            max_exchanges=600 * 200,
        )
        try:
            assert report is not None
            assert snap.n == 200
            engine = snap.batch_query_engine(seed=1)
            result = engine.search_many(["101"] * 5, [0, 1, 2, 3, 4])
            assert len(result) == 5
            del engine
        finally:
            _release(snap)

    def test_bridge_mode_reuses_built_grid(self, built_grid):
        snap, report = construct_snapshot(CONFIG, 60, grid=built_grid)
        try:
            assert report is None
            assert snap.n == 60
        finally:
            _release(snap)


class TestHandle:
    def test_handle_pickles_small(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            assert len(pickle.dumps(snap.handle)) < 4096
            assert len(pickle.dumps(snap.ref())) < 4096

    def test_resolve_prefers_local_owner(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            assert resolve(snap.handle) is snap

    def test_ref_resolves_via_trial_protocol(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            ref = pickle.loads(pickle.dumps(snap.ref()))
            assert isinstance(ref, SnapshotRef)
            assert ref.__trial_resolve__() is snap


class TestLifecycle:
    def test_context_manager_unlinks_segment(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            name = snap.name
            if Path("/dev/shm").is_dir():
                assert name in _shm_names()
        assert name not in _shm_names()

    def test_no_segment_leak_across_attach(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        before = _shm_names()
        snap = GridSnapshot.from_arraygrid(agrid)
        attached = GridSnapshot.attach(snap.handle)
        attached.close()
        snap.close()
        snap.unlink()
        assert _shm_names() == before

    def test_views_are_read_only(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            view = snap.view("path_bits")
            with pytest.raises(ValueError):
                view[0] = 1

    def test_view_after_close_raises(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        snap = GridSnapshot.from_arraygrid(agrid)
        name = snap.name
        snap.close()
        with pytest.raises(ValueError):
            snap.view("path_bits")
        # unlink stays legal after close, and is idempotent.
        snap.unlink()
        snap.unlink()
        assert name not in _shm_names()

    def test_double_close_is_idempotent(self, built_grid):
        agrid = ArrayGrid.from_pgrid(built_grid)
        snap = GridSnapshot.from_arraygrid(agrid)
        snap.close()
        snap.close()
        snap.unlink()

    def test_missing_field_rejected_at_export(self):
        with pytest.raises(ValueError, match="missing fields"):
            GridSnapshot.from_arrays(
                {"path_bits": [0]}, n=1, config=CONFIG
            )


class TestMemoryReport:
    def test_shared_memory_section(self, built_grid):
        from repro.fast.mem import grid_memory_report, shared_memory_report

        agrid = ArrayGrid.from_pgrid(built_grid)
        with GridSnapshot.from_arraygrid(agrid) as snap:
            shared = shared_memory_report(snap)
            assert shared is not None
            assert shared["segments"] >= 1
            assert shared["bytes_total"] >= snap.nbytes
            report = grid_memory_report(agrid=agrid, snapshot=snap)
            assert report["shared_memory"]["bytes_total"] >= snap.nbytes
            # Heap and segment bytes are accounted separately.
            assert report["array_core"]["bytes_total"] > 0

    def test_no_section_when_nothing_mapped(self):
        from repro.fast.mem import grid_memory_report
        from repro.fast.snapshot import attached_segments

        # Other tests may leave cached attachments in the registries;
        # only assert absence when this process truly maps nothing.
        if not attached_segments():
            assert "shared_memory" not in grid_memory_report()
