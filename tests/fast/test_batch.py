"""Batched vectorized construction: determinism, semantics, restrictions."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.errors import NotConvergedError
from repro.fast import HAVE_NUMPY, ArrayGrid
from repro.sim.builder import construct_grid

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

if HAVE_NUMPY:
    from repro.fast.batch import BatchGridBuilder


CONFIG = PGridConfig(maxl=6, refmax=5, recmax=2, recursion_fanout=2)


def fresh_agrid(n: int = 300, seed: int = 17, config: PGridConfig = CONFIG) -> ArrayGrid:
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(n)
    return ArrayGrid.from_pgrid(grid)


class TestGridBacked:
    def test_converges_and_writes_back(self):
        agrid = fresh_agrid()
        report = BatchGridBuilder(agrid, seed=5).build(threshold_fraction=0.985)
        assert report.converged
        assert report.peer_count == 300
        assert agrid.average_path_length() == pytest.approx(report.average_depth)
        # The written-back grid satisfies the routing invariant.
        pgrid = agrid.to_pgrid(rng=random.Random(0))
        assert pgrid.audit_routing() == []

    def test_deterministic_under_seed(self):
        r1 = BatchGridBuilder(fresh_agrid(), seed=42).build(threshold_fraction=0.985)
        a2 = fresh_agrid()
        r2 = BatchGridBuilder(a2, seed=42).build(threshold_fraction=0.985)
        a3 = fresh_agrid()
        r3 = BatchGridBuilder(a3, seed=42).build(threshold_fraction=0.985)
        assert r1.stats == r2.stats == r3.stats
        assert a2.path_bits == a3.path_bits
        assert a2.refs == a3.refs
        assert a2.ref_len == a3.ref_len
        assert a2.buddies == a3.buddies

    def test_different_seeds_differ(self):
        r1 = BatchGridBuilder(fresh_agrid(), seed=1).build(threshold_fraction=0.985)
        r2 = BatchGridBuilder(fresh_agrid(), seed=2).build(threshold_fraction=0.985)
        assert r1.stats != r2.stats

    def test_seed_defaults_to_grid_rng_draw(self):
        a1 = fresh_agrid(seed=13)
        a2 = fresh_agrid(seed=13)
        r1 = BatchGridBuilder(a1).build(threshold_fraction=0.985)
        r2 = BatchGridBuilder(a2).build(threshold_fraction=0.985)
        assert r1.stats == r2.stats
        assert a1.path_bits == a2.path_bits

    def test_counters_consistent_with_depth(self):
        agrid = fresh_agrid()
        builder = BatchGridBuilder(agrid, seed=9)
        report = builder.build(threshold_fraction=0.985)
        stats = report.stats
        # From a fresh grid every path bit comes from a split (2 bits)
        # or a specialization (1 bit).
        total_bits = (
            2 * stats["case1_splits"]
            + stats["case2_specializations"]
            + stats["case3_specializations"]
        )
        assert total_bits == sum(agrid.path_len)
        assert stats["calls"] == report.exchanges
        assert stats["meetings"] == report.meetings
        assert report.average_depth == pytest.approx(total_bits / 300)

    def test_statistically_matches_object_core(self):
        agrid = fresh_agrid(seed=23)
        report = BatchGridBuilder(agrid, seed=23).build(threshold_fraction=0.985)
        obj = PGrid(CONFIG, rng=random.Random(23))
        obj.add_peers(300)
        obj_report = construct_grid(
            obj, engine="object", threshold_fraction=0.985
        )
        assert report.converged and obj_report.converged
        # Same convergence point by definition; cost within a modest
        # factor (different meeting interleavings).
        ratio = report.exchanges / obj_report.exchanges
        assert 0.5 < ratio < 2.0
        assert abs(report.average_depth - obj_report.average_depth) < 0.2

    def test_budget_stops_at_round_granularity(self):
        agrid = fresh_agrid()
        builder = BatchGridBuilder(agrid, round_size=128, seed=3)
        report = builder.build(threshold_fraction=1.0, max_meetings=500)
        assert not report.converged
        assert report.meetings <= 500

    def test_raise_on_budget(self):
        agrid = fresh_agrid()
        with pytest.raises(NotConvergedError):
            BatchGridBuilder(agrid, seed=3).build(
                threshold_fraction=1.0, max_meetings=100, raise_on_budget=True
            )


class TestGridless:
    def test_matches_grid_backed_run(self):
        # A gridless run and a fresh grid-backed run with the same seed
        # execute the identical schedule on identical (all-zero) state.
        agrid = fresh_agrid(n=250)
        grid_backed = BatchGridBuilder(agrid, seed=77)
        r1 = grid_backed.build(threshold_fraction=0.985)
        gridless = BatchGridBuilder(n=250, config=CONFIG, seed=77)
        r2 = gridless.build(threshold_fraction=0.985)
        assert r1.stats == r2.stats
        assert r1.average_depth == r2.average_depth
        assert grid_backed.replication_histogram() == gridless.replication_histogram()
        assert agrid.path_len == list(map(int, gridless._pl))

    def test_analytics_match_written_back_grid(self):
        agrid = fresh_agrid(n=200)
        builder = BatchGridBuilder(agrid, seed=31)
        builder.build(threshold_fraction=0.985)
        assert builder.replication_histogram() == dict(agrid.replication_histogram())
        assert builder.path_length_histogram() == dict(agrid.path_length_histogram())

    def test_memory_bytes_is_compact(self):
        builder = BatchGridBuilder(n=10_000, config=CONFIG, seed=1)
        per_peer = builder.memory_bytes() / 10_000
        # int32 refs dominate: maxl * refmax * 4 bytes plus scalars.
        assert per_peer < CONFIG.maxl * CONFIG.refmax * 4 + 200

    def test_needs_seed(self):
        with pytest.raises(ValueError):
            BatchGridBuilder(n=100, config=CONFIG)

    def test_needs_n(self):
        with pytest.raises(ValueError):
            BatchGridBuilder(seed=1)

    def test_grid_and_n_mutually_exclusive(self):
        with pytest.raises(ValueError):
            BatchGridBuilder(fresh_agrid(), n=100, seed=1)


class TestRestrictions:
    @pytest.mark.parametrize(
        "config",
        [
            PGridConfig(maxl=4, refmax=2, split_min_items=1),
            PGridConfig(maxl=4, refmax=2, mutual_refs_in_case4=True),
            PGridConfig(maxl=4, refmax=2, exchange_refs_all_levels=True),
        ],
        ids=["split-min-items", "mutual-refs", "all-levels"],
    )
    def test_unsupported_configs_rejected(self, config):
        with pytest.raises(ValueError):
            BatchGridBuilder(n=100, config=config, seed=1)

    def test_stores_must_be_empty(self):
        from repro.core.storage import DataItem

        grid = PGrid(CONFIG, rng=random.Random(1))
        grid.add_peers(50)
        construct_grid(grid, engine="object", max_meetings=300)
        grid.seed_index([(DataItem(key="0" * CONFIG.maxl), grid.addresses()[0])])
        agrid = ArrayGrid.from_pgrid(grid)
        with pytest.raises(ValueError):
            BatchGridBuilder(agrid)

    def test_validation_messages_match_grid_builder(self):
        builder = BatchGridBuilder(n=100, config=CONFIG, seed=1)
        with pytest.raises(ValueError):
            builder.build(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            builder.build(max_meetings=-1)
        with pytest.raises(ValueError):
            builder.build(max_exchanges=-1)
        with pytest.raises(ValueError):
            builder.build(sample_every=0)
