"""Array-plane shortcut cache: LRU semantics, stats, engine integration.

The :class:`~repro.fast.shortcuts.ArrayShortcutCache` itself is
numpy-free bookkeeping, so its unit tests run everywhere; only the
batch-engine integration class needs numpy.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.shortcuts import ShortcutStats
from repro.fast import HAVE_NUMPY, ArrayGrid
from repro.fast.shortcuts import ArrayShortcutCache
from repro.sim.builder import GridBuilder

if HAVE_NUMPY:
    from repro.fast import BatchQueryEngine


class TestCacheSemantics:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ArrayShortcutCache(0)

    def test_get_put_per_origin(self):
        cache = ArrayShortcutCache(4)
        assert cache.get(0, 0b101, 3) is None
        cache.put(0, 0b101, 3, 9)
        assert cache.get(0, 0b101, 3) == 9
        # Origins are isolated: peer 1 has its own cache.
        assert cache.get(1, 0b101, 3) is None

    def test_capacity_one_eviction(self):
        cache = ArrayShortcutCache(1)
        cache.put(0, 0b00, 2, 1)
        cache.put(0, 0b01, 2, 2)  # evicts the only slot
        assert cache.get(0, 0b00, 2) is None
        assert cache.get(0, 0b01, 2) == 2
        assert len(cache) == 1

    def test_get_refreshes_lru_position(self):
        cache = ArrayShortcutCache(2)
        cache.put(0, 0b00, 2, 1)
        cache.put(0, 0b01, 2, 2)
        cache.get(0, 0b00, 2)  # refresh
        cache.put(0, 0b10, 2, 3)  # must evict 0b01, not 0b00
        assert cache.get(0, 0b00, 2) == 1
        assert cache.get(0, 0b01, 2) is None

    def test_eviction_is_per_origin(self):
        cache = ArrayShortcutCache(1)
        cache.put(0, 0b00, 2, 1)
        cache.put(1, 0b01, 2, 2)  # different origin — no eviction
        assert cache.get(0, 0b00, 2) == 1
        assert cache.get(1, 0b01, 2) == 2
        assert len(cache) == 2

    def test_invalidate_single_entry(self):
        cache = ArrayShortcutCache(4)
        cache.put(0, 0b11, 2, 7)
        cache.invalidate(0, 0b11, 2)
        assert cache.get(0, 0b11, 2) is None
        cache.invalidate(0, 0b11, 2)  # idempotent

    def test_invalidate_responder_sweeps_all_origins(self):
        cache = ArrayShortcutCache(4)
        cache.put(0, 0b00, 2, 7)
        cache.put(1, 0b01, 2, 7)
        cache.put(2, 0b10, 2, 8)
        removed = cache.invalidate_responder(7)
        assert removed == 2
        assert cache.stats.invalidations == 2
        assert cache.get(0, 0b00, 2) is None
        assert cache.get(1, 0b01, 2) is None
        assert cache.get(2, 0b10, 2) == 8
        # No stale entries left: a second sweep is a no-op.
        assert cache.invalidate_responder(7) == 0
        assert cache.stats.invalidations == 2

    def test_clear_preserves_stats(self):
        cache = ArrayShortcutCache(4)
        cache.put(0, 0b00, 2, 7)
        cache.stats.hits = 3
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 3


class TestStatsEdges:
    def test_hit_rate_empty_cache_is_zero(self):
        # No searches yet: 0/0 must not divide.
        assert ShortcutStats().hit_rate == 0.0
        assert ArrayShortcutCache(4).stats.hit_rate == 0.0

    def test_hit_rate_counts(self):
        stats = ShortcutStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestEngineIntegration:
    CONFIG = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)

    @pytest.fixture(scope="class")
    def agrid(self) -> ArrayGrid:
        grid = PGrid(self.CONFIG, rng=random.Random(23))
        grid.add_peers(80)
        GridBuilder(grid).build(max_exchanges=40_000)
        return ArrayGrid.from_pgrid(grid)

    def test_repeat_batch_hits_cache(self, agrid):
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=1)
        cache = engine.attach_shortcuts(capacity=32)
        queries = [format(k, "05b") for k in range(8)]
        starts = [0] * len(queries)
        first = engine.search_many(queries, starts)
        assert cache.stats.hits == 0
        assert cache.stats.misses == len(queries)
        found_first = int(first.found.sum())
        assert len(cache) == found_first  # found misses were cached

        second = engine.search_many(queries, starts)
        assert cache.stats.hits == found_first
        # A usable hit contacts the cached responder directly: 0 messages
        # from the origin itself, 1 otherwise.
        for i in range(len(queries)):
            if first.found[i]:
                assert second.found[i]
                assert second.responder[i] == first.responder[i]
                expected = 0 if int(first.responder[i]) == starts[i] else 1
                assert int(second.messages[i]) == expected

    def test_explicit_cache_argument_overrides_attached(self, agrid):
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=2)
        override = ArrayShortcutCache(8)
        engine.search_many(["10101"], [0], shortcuts=override)
        assert engine.shortcuts is None
        assert override.stats.misses == 1

    def test_invalidated_responder_falls_back_to_dfs(self, agrid):
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=3)
        cache = engine.attach_shortcuts(capacity=32)
        query = "10101"
        first = engine.search_many([query], [0])
        assert bool(first.found[0])
        cached = cache.get(0, int(query, 2), len(query))
        assert cached == int(first.responder[0])
        cache.invalidate_responder(cached)
        second = engine.search_many([query], [0])
        # The entry is gone, so the query pays the full DFS again...
        assert bool(second.found[0])
        assert cache.stats.misses == 2
        # ...and the fresh responder is cached for next time.
        assert cache.get(0, int(query, 2), len(query)) == int(second.responder[0])

    def test_stale_responsibility_invalidates_on_use(self, agrid):
        engine = BatchQueryEngine.from_arraygrid(agrid, seed=4)
        cache = engine.attach_shortcuts(capacity=32)
        query = "10101"
        # Plant an entry at a peer that is NOT responsible for the query:
        # the shortcut pass must invalidate it and fall through to DFS.
        wrong = next(
            i
            for i in range(agrid.n)
            if agrid.path_str(i) and not query.startswith(agrid.path_str(i))
        )
        cache.put(0, int(query, 2), len(query), wrong)
        result = engine.search_many([query], [0])
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert int(result.responder[0]) != wrong
