"""Bit-identical equivalence: strict array core vs. the object core.

Twin-seeded runs of :class:`ArrayGridBuilder` and
:class:`repro.sim.builder.GridBuilder` must agree on *everything*: case
counters, stopping point, trajectory, final RNG state, and the complete
written-back grid (paths, routing reference order, buddies).
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import PAPER_SECTION52_CONFIG, PGridConfig
from repro.core.grid import PGrid
from repro.fast import ArrayGrid, ArrayGridBuilder, ArrayExchangeEngine, HAVE_NUMPY
from repro.sim.builder import GridBuilder, construct_grid

# Every case carries an exchange budget: equivalence must hold at the
# budget-stop boundary too, and un-capped convergence at tiny populations
# can run forever (64 peers cannot reach 99% of maxl=6 reliably).
CASES = [
    pytest.param(PGridConfig(), 64, 0.95, 20_000, id="default-64"),
    pytest.param(
        PGridConfig(maxl=6, refmax=3, recmax=3, recursion_fanout=None),
        150,
        0.985,
        20_000,
        id="unbounded-fanout",
    ),
    pytest.param(
        PGridConfig(
            maxl=7,
            refmax=4,
            recmax=2,
            recursion_fanout=2,
            mutual_refs_in_case4=True,
            exchange_refs_all_levels=True,
        ),
        120,
        0.98,
        20_000,
        id="ablation-flags",
    ),
    pytest.param(PAPER_SECTION52_CONFIG, 200, 0.99, 15_000, id="section52-budget"),
]

ACCEL = [False] + ([True] if HAVE_NUMPY else [])


def fresh_grid(config: PGridConfig, n: int, seed: int) -> PGrid:
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(n)
    return grid


def grid_state(grid: PGrid):
    return {
        peer.address: (
            peer.path,
            peer.routing.to_lists(),
            sorted(peer.buddies),
        )
        for peer in grid.peers()
    }


@pytest.mark.parametrize("accelerate", ACCEL)
@pytest.mark.parametrize("config, n, threshold, budget", CASES)
def test_twin_builds_are_bit_identical(config, n, threshold, budget, accelerate):
    seed = 1302
    obj_grid = fresh_grid(config, n, seed)
    obj_report = GridBuilder(obj_grid).build(
        threshold_fraction=threshold, max_exchanges=budget, sample_every=500
    )

    arr_grid = fresh_grid(config, n, seed)
    agrid = ArrayGrid.from_pgrid(arr_grid)
    engine = ArrayExchangeEngine(agrid, accelerate=accelerate)
    arr_report = ArrayGridBuilder(agrid, engine=engine).build(
        threshold_fraction=threshold, max_exchanges=budget, sample_every=500
    )
    agrid.write_back(arr_grid)

    assert arr_report.stats == obj_report.stats
    assert arr_report.converged == obj_report.converged
    assert arr_report.exchanges == obj_report.exchanges
    assert arr_report.meetings == obj_report.meetings
    assert arr_report.average_depth == obj_report.average_depth
    assert arr_report.trajectory == obj_report.trajectory
    # Same draws consumed: the generators are in the same state, so any
    # later protocol decision (searches, updates) stays aligned too.
    assert arr_grid.rng.getstate() == obj_grid.rng.getstate()
    assert grid_state(arr_grid) == grid_state(obj_grid)


@pytest.mark.parametrize("accelerate", ACCEL)
def test_max_meetings_budget_matches(accelerate):
    config = PGridConfig(maxl=6, refmax=3)
    obj_grid = fresh_grid(config, 80, 7)
    obj_report = GridBuilder(obj_grid).build(max_meetings=400)

    arr_grid = fresh_grid(config, 80, 7)
    agrid = ArrayGrid.from_pgrid(arr_grid)
    engine = ArrayExchangeEngine(agrid, accelerate=accelerate)
    arr_report = ArrayGridBuilder(agrid, engine=engine).build(max_meetings=400)
    agrid.write_back(arr_grid)

    assert arr_report.stats == obj_report.stats
    assert arr_report.meetings == obj_report.meetings == 400
    assert arr_grid.rng.getstate() == obj_grid.rng.getstate()


def test_construct_grid_array_engine_is_identical():
    config = PGridConfig(maxl=5, refmax=4)
    g1 = fresh_grid(config, 90, 3)
    r1 = construct_grid(
        g1, engine="object", threshold_fraction=0.98, max_exchanges=20_000
    )
    g2 = fresh_grid(config, 90, 3)
    r2 = construct_grid(
        g2, engine="array", threshold_fraction=0.98, max_exchanges=20_000
    )
    assert r1.stats == r2.stats
    assert g1.rng.getstate() == g2.rng.getstate()
    assert grid_state(g1) == grid_state(g2)


def test_small_population_uses_pool_sampling():
    # n <= 21 drives CPython's sample into the pool branch; the array
    # builder must follow (pair_below is only valid above that).
    config = PGridConfig(maxl=3, refmax=2)
    g1 = fresh_grid(config, 8, 11)
    r1 = GridBuilder(g1).build(threshold_fraction=0.9, max_exchanges=20_000)
    g2 = fresh_grid(config, 8, 11)
    agrid = ArrayGrid.from_pgrid(g2)
    r2 = ArrayGridBuilder(agrid).build(threshold_fraction=0.9, max_exchanges=20_000)
    agrid.write_back(g2)
    assert r1.stats == r2.stats
    assert g1.rng.getstate() == g2.rng.getstate()
    assert grid_state(g1) == grid_state(g2)
