"""Tests for the simulated transport."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.errors import InvalidConfigError, PeerOfflineError, TransportError
from repro.net.message import MessageKind, ping, pong
from repro.net.transport import (
    ConstantLatency,
    LocalTransport,
    UniformLatency,
)
from repro.sim.churn import FixedOnlineSet


def make_transport(n_peers: int = 2, **kwargs) -> tuple[PGrid, LocalTransport]:
    grid = PGrid(PGridConfig(), rng=random.Random(0))
    grid.add_peers(n_peers)
    return grid, LocalTransport(grid, **kwargs)


class TestRegistration:
    def test_register_and_send(self):
        grid, transport = make_transport()
        transport.register(1, pong)
        reply = transport.send(ping(0, 1))
        assert reply.kind is MessageKind.PONG
        assert transport.count(MessageKind.PING) == 1

    def test_double_register_rejected(self):
        _, transport = make_transport()
        transport.register(1, pong)
        with pytest.raises(TransportError):
            transport.register(1, pong)

    def test_register_unknown_address_rejected(self):
        _, transport = make_transport(n_peers=2)
        with pytest.raises(InvalidConfigError, match="no such peer"):
            transport.register(9, pong)

    def test_unregister(self):
        _, transport = make_transport()
        transport.register(1, pong)
        transport.unregister(1)
        with pytest.raises(TransportError):
            transport.send(ping(0, 1))

    def test_unregister_absent_is_noop(self):
        _, transport = make_transport()
        transport.unregister(9)

    def test_no_handler(self):
        _, transport = make_transport()
        with pytest.raises(TransportError):
            transport.send(ping(0, 1))

    def test_is_reachable(self):
        grid, transport = make_transport()
        transport.register(1, pong)
        assert transport.is_reachable(1)
        assert not transport.is_reachable(0)  # no handler
        grid.online_oracle = FixedOnlineSet(set())
        assert not transport.is_reachable(1)


class TestFailureModes:
    def test_offline_destination_raises(self):
        grid, transport = make_transport()
        transport.register(1, pong)
        grid.online_oracle = FixedOnlineSet({0})
        with pytest.raises(PeerOfflineError):
            transport.send(ping(0, 1))
        assert transport.stats.offline_failures == 1
        assert transport.stats.total_delivered() == 0

    def test_loss_probability(self):
        grid, transport = make_transport(
            loss_probability=0.5, rng=random.Random(1)
        )
        transport.register(1, pong)
        outcomes = {"ok": 0, "lost": 0}
        for _ in range(200):
            try:
                transport.send(ping(0, 1))
                outcomes["ok"] += 1
            except TransportError:
                outcomes["lost"] += 1
        assert outcomes["ok"] > 50
        assert outcomes["lost"] > 50
        assert transport.stats.dropped == outcomes["lost"]

    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            make_transport(loss_probability=1.0)

    def test_lossy_transport_requires_seeded_rng(self):
        # Falling back to the grid's protocol RNG (the old behavior) let
        # message loss perturb routing decisions; now it is a config error.
        from repro.errors import InvalidConfigError

        with pytest.raises(InvalidConfigError):
            make_transport(loss_probability=0.1)

    def test_seed_derives_a_dedicated_stream(self):
        grid, transport = make_transport(loss_probability=0.5, seed=9)
        transport.register(1, pong)
        protocol_state = grid.rng.getstate()
        for _ in range(50):
            transport.try_send(ping(0, 1))
        assert transport.stats.dropped > 0
        # the loss coins never touched the grid's protocol RNG
        assert grid.rng.getstate() == protocol_state
        # and the stream is a pure function of the seed
        grid2, transport2 = make_transport(loss_probability=0.5, seed=9)
        transport2.register(1, pong)
        drops = sum(
            1 for _ in range(50) if transport2.try_send(ping(0, 1)) is None
        )
        assert drops == transport.stats.dropped

    def test_no_handler_error_is_specific(self):
        from repro.errors import NoHandlerError

        _, transport = make_transport()
        with pytest.raises(NoHandlerError):
            transport.send(ping(0, 1))

    def test_try_send_swallow_failures(self):
        grid, transport = make_transport()
        transport.register(1, pong)
        grid.online_oracle = FixedOnlineSet(set())
        assert transport.try_send(ping(0, 1)) is None
        assert transport.try_send(ping(0, 9)) is None  # no handler


class TestLatency:
    def test_constant_latency_accumulates(self):
        _, transport = make_transport(latency=ConstantLatency(2.5))
        transport.register(1, pong)
        transport.send(ping(0, 1))
        transport.send(ping(0, 1))
        assert transport.stats.simulated_time == pytest.approx(5.0)

    def test_constant_latency_validated(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_latency_in_range(self):
        model = UniformLatency(1.0, 2.0, random.Random(2))
        for _ in range(50):
            assert 1.0 <= model.sample(ping(0, 1)) <= 2.0

    def test_uniform_latency_validated(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0, random.Random(0))


class TestStats:
    def test_snapshot(self):
        _, transport = make_transport()
        transport.register(1, pong)
        transport.send(ping(0, 1))
        snapshot = transport.stats.snapshot()
        assert snapshot["total_delivered"] == 1
        assert snapshot["delivered"] == {"ping": 1}
        assert snapshot["dropped"] == 0
