"""Property tests for the wire codec (`repro.net.wire`).

The contract under test: every message kind the protocol can emit
survives ``decode(encode(m))`` **bit-identically** — same kind, same
addresses, same ids, and a payload that compares equal value-for-value
(including ``entries`` dicts keyed by *integer* addresses, the case a
naive JSON codec silently corrupts).  Framing must round-trip through a
real ``asyncio`` stream, and malformed input must fail loudly with
:class:`~repro.errors.WireFormatError`, never with corrupted messages.
"""

from __future__ import annotations

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.net import message as msg
from repro.net import wire

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=2**16)
binary_keys = st.text(alphabet="01", min_size=0, max_size=12)
levels = st.integers(min_value=0, max_value=12)
budgets = st.integers(min_value=0, max_value=10_000)
delays = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)

refs = st.lists(
    st.fixed_dictionaries(
        {
            "key": binary_keys,
            "holder": addresses,
            "version": st.integers(min_value=0, max_value=100),
            "deleted": st.booleans(),
        }
    ),
    max_size=4,
)

entries = st.dictionaries(addresses, refs, max_size=4)

seen_lists = st.lists(addresses, max_size=8)


@st.composite
def query_messages(draw):
    return msg.query_message(
        draw(addresses),
        draw(addresses),
        draw(binary_keys),
        draw(levels),
        budget=draw(st.none() | budgets),
        retry_spent=draw(delays),
    )


@st.composite
def query_responses(draw):
    request = draw(query_messages())
    return msg.query_response(
        request,
        found=draw(st.booleans()),
        responder=draw(st.none() | addresses),
        refs=draw(refs),
        messages=draw(budgets),
        failed=draw(budgets),
        retry_delay=draw(delays),
        budget=draw(st.none() | budgets),
    )


@st.composite
def breadth_messages(draw, collect=st.none() | binary_keys):
    return msg.breadth_message(
        draw(addresses),
        draw(addresses),
        query=draw(binary_keys),
        level=draw(levels),
        recbreadth=draw(st.integers(1, 8)),
        enumerate_subtree=draw(st.booleans()),
        seen=draw(seen_lists),
        budget=draw(budgets),
        retry_spent=draw(delays),
        collect=draw(collect),
    )


@st.composite
def breadth_responses(draw):
    request = draw(breadth_messages())
    return msg.breadth_response(
        request,
        responders=draw(seen_lists),
        seen=draw(seen_lists),
        messages=draw(budgets),
        failed=draw(budgets),
        retry_delay=draw(delays),
        budget=draw(budgets),
        entries=draw(st.none() | entries),
    )


@st.composite
def update_messages(draw):
    return msg.update_message(
        draw(addresses),
        draw(addresses),
        draw(binary_keys),
        draw(addresses),
        draw(st.integers(0, 100)),
    )


@st.composite
def propagate_messages(draw):
    return msg.propagate_message(
        draw(addresses),
        draw(addresses),
        key=draw(binary_keys),
        holder=draw(addresses),
        version=draw(st.integers(0, 100)),
        deleted=draw(st.booleans()),
        query=draw(binary_keys),
        level=draw(levels),
        recbreadth=draw(st.integers(1, 8)),
        seen=draw(st.none() | seen_lists),
        budget=draw(st.none() | budgets),
        retry_spent=draw(delays),
    )


@st.composite
def propagate_acks(draw):
    request = draw(propagate_messages())
    return msg.propagate_ack(
        request,
        draw(seen_lists),
        seen=draw(st.none() | seen_lists),
        messages=draw(budgets),
        failed=draw(budgets),
        retry_delay=draw(delays),
        budget=draw(st.none() | budgets),
    )


@st.composite
def pings(draw):
    return msg.ping(draw(addresses), draw(addresses))


@st.composite
def pongs(draw):
    return msg.pong(draw(pings()))


#: One strategy per protocol message kind the constructors can emit
#: (EXCHANGE and UPDATE_ACK have no constructor; covered by raw_messages).
any_message = st.one_of(
    query_messages(),
    query_responses(),
    breadth_messages(),
    breadth_messages(collect=binary_keys),  # force RANGE_QUERY
    breadth_responses(),
    update_messages(),
    propagate_messages(),
    propagate_acks(),
    pings(),
    pongs(),
)

json_scalars = st.none() | st.booleans() | st.integers(-(2**31), 2**31) | binary_keys
json_values = st.recursive(
    json_scalars,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6) | addresses, children, max_size=3),
    max_leaves=12,
)


@st.composite
def raw_messages(draw):
    """Arbitrary kind x arbitrary JSON-ish payload, including int-keyed
    dicts at any nesting depth and the reserved ``__imap__`` key."""
    return msg.Message(
        kind=draw(st.sampled_from(list(msg.MessageKind))),
        source=draw(addresses),
        destination=draw(addresses),
        payload=draw(
            st.dictionaries(st.text(max_size=8) | st.just(wire._IMAP), json_values, max_size=4)
        ),
        message_id=draw(st.integers(1, 2**31)),
        in_reply_to=draw(st.none() | st.integers(1, 2**31)),
    )


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


def assert_identical(original: msg.Message, restored: msg.Message) -> None:
    assert restored.kind is original.kind
    assert restored.source == original.source
    assert restored.destination == original.destination
    assert restored.message_id == original.message_id
    assert restored.in_reply_to == original.in_reply_to
    assert restored.payload == original.payload
    # equality must also hold key-*type* wise: walk dicts and compare key sets
    _assert_same_key_types(original.payload, restored.payload)


def _assert_same_key_types(a, b):
    if isinstance(a, dict):
        assert isinstance(b, dict)
        assert sorted(map(repr, a)) == sorted(map(repr, b))
        for key in a:
            _assert_same_key_types(a[key], b[key])
    elif isinstance(a, list):
        assert isinstance(b, list)
        for left, right in zip(a, b):
            _assert_same_key_types(left, right)


@settings(max_examples=200, deadline=None)
@given(any_message)
def test_every_message_kind_round_trips(message):
    assert_identical(message, wire.decode_message(wire.encode_message(message)))


@settings(max_examples=200, deadline=None)
@given(raw_messages())
def test_arbitrary_payloads_round_trip(message):
    assert_identical(message, wire.decode_message(wire.encode_message(message)))


@settings(max_examples=100, deadline=None)
@given(any_message)
def test_encoding_is_deterministic(message):
    assert wire.encode_message(message) == wire.encode_message(message)


def test_int_keyed_entries_keep_int_keys():
    request = msg.breadth_message(
        1, 2, query="01", level=1, recbreadth=2, seen=[1], budget=9
    )
    response = msg.breadth_response(
        request,
        responders=[3],
        seen=[1, 3],
        messages=2,
        failed=0,
        retry_delay=0.0,
        budget=7,
        entries={3: [{"key": "011", "holder": 3, "version": 0, "deleted": False}]},
    )
    restored = wire.decode_message(wire.encode_message(response))
    assert list(restored.payload["entries"]) == [3]  # int, not "3"
    assert restored.payload["entries"][3] == response.payload["entries"][3]


def test_reserved_imap_key_round_trips():
    message = msg.Message(
        kind=msg.MessageKind.PING,
        source=0,
        destination=1,
        payload={wire._IMAP: "collision"},
        message_id=7,
    )
    restored = wire.decode_message(wire.encode_message(message))
    assert restored.payload == {wire._IMAP: "collision"}


# ---------------------------------------------------------------------------
# stream framing
# ---------------------------------------------------------------------------


def _read_all(data: bytes):
    """Run ``read_message`` over *data* inside a fresh event loop.

    The reader must be constructed inside the running loop — stream
    primitives bind to the loop current at creation time.
    """

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        restored = []
        while (m := await wire.read_message(reader)) is not None:
            restored.append(m)
        return restored

    return asyncio.run(run())


@settings(max_examples=50, deadline=None)
@given(st.lists(any_message, min_size=1, max_size=5))
def test_framed_stream_round_trips(messages):
    restored = _read_all(b"".join(wire.frame_message(m) for m in messages))
    assert len(restored) == len(messages)
    for original, decoded in zip(messages, restored):
        assert_identical(original, decoded)


def test_read_message_clean_eof_returns_none():
    assert _read_all(b"") == []


def test_read_message_truncated_header_raises():
    with pytest.raises(WireFormatError, match="frame header"):
        _read_all(b"\x00\x00")


def test_read_message_truncated_body_raises():
    frame = wire.frame_message(msg.ping(0, 1))
    with pytest.raises(WireFormatError, match="frame body"):
        _read_all(frame[:-3])


def test_read_message_oversized_frame_rejected():
    header = struct.pack(">I", wire.MAX_FRAME_BYTES + 1)
    with pytest.raises(WireFormatError, match="cap"):
        _read_all(header)


# ---------------------------------------------------------------------------
# malformed input
# ---------------------------------------------------------------------------


def test_decode_rejects_bad_json():
    with pytest.raises(WireFormatError, match="undecodable"):
        wire.decode_message(b"{not json")


def test_decode_rejects_non_object():
    with pytest.raises(WireFormatError, match="not an object"):
        wire.decode_message(b"[1,2,3]")


def test_decode_rejects_wrong_version():
    body = wire.encode_message(msg.ping(0, 1))
    doc = json.loads(body)
    doc["v"] = wire.WIRE_VERSION + 1
    with pytest.raises(WireFormatError, match="version"):
        wire.decode_message(json.dumps(doc).encode())


def test_decode_rejects_unknown_kind():
    body = wire.encode_message(msg.ping(0, 1))
    doc = json.loads(body)
    doc["kind"] = "teleport"
    with pytest.raises(WireFormatError, match="malformed"):
        wire.decode_message(json.dumps(doc).encode())


def test_decode_rejects_missing_field():
    body = wire.encode_message(msg.ping(0, 1))
    doc = json.loads(body)
    del doc["payload"]
    with pytest.raises(WireFormatError, match="malformed"):
        wire.decode_message(json.dumps(doc).encode())
