"""Tests for the message-driven P-Grid node."""

from __future__ import annotations

import random

from repro.core import keys as keyspace
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.net.message import MessageKind, ping
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from repro.sim.churn import FixedOnlineSet
from tests.conftest import build_grid, make_fig1_grid


class TestNetworkedSearch:
    def test_fig1_examples_over_messages(self):
        grid = make_fig1_grid()
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)

        local = nodes[0].search("00")
        assert local.found and local.responder == 0
        assert local.messages_sent == 0

        routed = nodes[5].search("10")
        assert routed.found and routed.responder in (2, 3)
        assert 1 <= routed.messages_sent <= 2
        assert transport.count(MessageKind.QUERY) == routed.messages_sent

    def test_networked_matches_core_engine_on_built_grid(self):
        grid = build_grid(128, maxl=5, refmax=2, seed=31)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        core = SearchEngine(grid)
        rng = random.Random(1)
        for _ in range(50):
            key = keyspace.random_key(5, rng)
            start = rng.choice(grid.addresses())
            assert nodes[start].search(key).found == core.query_from(
                start, key
            ).found

    def test_query_message_count_matches_outcome(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=32)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        before = transport.stats.total_delivered()
        outcome = nodes[0].search("1100")
        assert transport.stats.total_delivered() - before == outcome.messages_sent

    def test_search_respects_churn(self):
        grid = make_fig1_grid()
        grid.online_oracle = FixedOnlineSet({0, 1})
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        outcome = nodes[0].search("11")
        assert not outcome.found
        assert transport.stats.offline_failures >= 1

    def test_responder_refs_travel_in_reply(self):
        grid = make_fig1_grid()
        grid.peer(2).store.add_ref(DataRef(key="100", holder=4, version=1))
        grid.peer(3).store.add_ref(DataRef(key="100", holder=4, version=1))
        transport = LocalTransport(grid)
        attach_nodes(grid, transport)
        # send a query message directly and inspect the response payload
        from repro.net.message import query_message

        # After one routing hop the first query bit is consumed: the suffix
        # "0" arrives at level 1; the node reconstructs the full key "10".
        reply = transport.send(query_message(5, 2, "0", 1))
        assert reply.payload["found"]
        assert reply.payload["refs"] == [
            {"key": "100", "holder": 4, "version": 1}
        ]


class TestUpdates:
    def test_push_update_installs_ref(self):
        grid = make_fig1_grid()
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        ref = DataRef(key="001", holder=8, version=3)
        assert nodes[0].push_update(1, ref)
        assert grid.peer(1).store.version_of("001", 8) == 3
        assert transport.count(MessageKind.UPDATE) == 1

    def test_push_update_to_offline_peer_fails(self):
        grid = make_fig1_grid()
        grid.online_oracle = FixedOnlineSet({0})
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        assert not nodes[0].push_update(1, DataRef(key="0", holder=1))
        assert grid.peer(1).store.version_of("0", 1) is None


class TestMisc:
    def test_ping_answered(self):
        grid = make_fig1_grid()
        transport = LocalTransport(grid)
        attach_nodes(grid, transport)
        reply = transport.send(ping(0, 1))
        assert reply.kind is MessageKind.PONG

    def test_unknown_kind_ignored(self):
        from repro.net.message import Message

        grid = make_fig1_grid()
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        bogus = Message(kind=MessageKind.UPDATE_ACK, source=0, destination=1)
        assert nodes[1].handle(bogus) is None

    def test_attach_nodes_registers_everyone(self):
        grid = make_fig1_grid()
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        assert set(nodes) == set(grid.addresses())
        for address in grid.addresses():
            assert transport.is_reachable(address)


class TestMessagePropagation:
    def test_propagate_reaches_multiple_replicas(self):
        grid = build_grid(256, maxl=5, refmax=3, seed=33)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        ref = DataRef(key="10110", holder=4, version=1)
        # pick a non-replica initiator (a BFS launched at a replica
        # terminates at itself)
        replicas = set(grid.replicas_for_key("10110"))
        initiator = next(a for a in grid.addresses() if a not in replicas)
        reached = nodes[initiator].propagate_update(ref, recbreadth=3)
        assert len(reached) >= 2
        for address in reached:
            assert grid.peer(address).store.version_of("10110", 4) == 1
        assert transport.count(MessageKind.PROPAGATE) >= len(reached) - 1

    def test_propagate_matches_core_engine_reach_class(self):
        from repro.core.updates import UpdateEngine, UpdateStrategy

        grid = build_grid(256, maxl=5, refmax=3, seed=34)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        key = "01011"
        replicas = set(grid.replicas_for_key(key))
        initiator = next(a for a in grid.addresses() if a not in replicas)
        networked = nodes[initiator].propagate_update(
            DataRef(key=key, holder=1, version=1), recbreadth=3
        )
        core, _, _ = UpdateEngine(grid).find_replicas(
            initiator, key, strategy=UpdateStrategy.BFS, recbreadth=3
        )
        # both must be non-trivial subsets of the true replica set
        assert networked <= replicas
        assert core <= replicas
        assert len(networked) >= max(1, len(core) // 3)

    def test_propagate_respects_churn(self):
        grid = build_grid(128, maxl=4, refmax=2, seed=35)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        grid.online_oracle = FixedOnlineSet({0})  # only the initiator is up
        reached = nodes[0].propagate_update(
            DataRef(key="1111", holder=2, version=1), recbreadth=2
        )
        # nothing beyond the initiator itself (if responsible) is reachable
        assert reached <= {0}

    def test_propagate_tombstone(self):
        grid = build_grid(128, maxl=4, refmax=3, seed=36)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        key = "0101"
        replicas = set(grid.replicas_for_key(key))
        initiator = next(a for a in grid.addresses() if a not in replicas)
        live = DataRef(key=key, holder=7, version=0)
        nodes[initiator].propagate_update(live, recbreadth=3)
        reached = nodes[initiator].propagate_update(
            live.tombstone(), recbreadth=3
        )
        for address in reached:
            assert grid.peer(address).store.is_deleted(key, 7)

    def test_propagate_validates(self):
        grid = build_grid(32, maxl=3, seed=37)
        transport = LocalTransport(grid)
        nodes = attach_nodes(grid, transport)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            nodes[0].propagate_update(DataRef(key="1", holder=0), recbreadth=0)
