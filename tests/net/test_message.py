"""Tests for protocol messages."""

from __future__ import annotations

from repro.net.message import (
    Message,
    MessageKind,
    ping,
    pong,
    query_message,
    query_response,
    update_message,
)


class TestIdentity:
    def test_message_ids_unique_and_increasing(self):
        a = ping(0, 1)
        b = ping(0, 1)
        assert a.message_id != b.message_id
        assert b.message_id > a.message_id

    def test_frozen(self):
        message = ping(0, 1)
        try:
            message.source = 5  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Message must be immutable")


class TestConstructors:
    def test_query_message_payload(self):
        message = query_message(3, 9, "0101", 2)
        assert message.kind is MessageKind.QUERY
        assert message.source == 3
        assert message.destination == 9
        assert message.payload == {"query": "0101", "level": 2}

    def test_query_response_links_request(self):
        request = query_message(3, 9, "01", 0)
        response = query_response(request, found=True, responder=9)
        assert response.kind is MessageKind.QUERY_RESPONSE
        assert response.in_reply_to == request.message_id
        assert response.source == 9
        assert response.destination == 3
        assert response.payload["found"] is True
        assert response.payload["responder"] == 9
        assert response.payload["refs"] == []

    def test_query_response_with_refs(self):
        request = query_message(1, 2, "0", 0)
        refs = [{"key": "01", "holder": 5, "version": 0}]
        response = query_response(request, found=True, responder=2, refs=refs)
        assert response.payload["refs"] == refs

    def test_update_message(self):
        message = update_message(1, 2, "011", holder=7, version=4)
        assert message.kind is MessageKind.UPDATE
        assert message.payload == {"key": "011", "holder": 7, "version": 4}

    def test_ping_pong(self):
        request = ping(4, 5)
        reply = pong(request)
        assert reply.kind is MessageKind.PONG
        assert reply.in_reply_to == request.message_id
        assert (reply.source, reply.destination) == (5, 4)

    def test_generic_message_defaults(self):
        message = Message(kind=MessageKind.PING, source=0, destination=1)
        assert message.payload == {}
        assert message.in_reply_to is None
