"""Tests for distributed prefix text search over P-Grid."""

from __future__ import annotations

import pytest

from repro.text.encoding import TextEncoder
from repro.text.trie import PrefixTextIndex
from tests.conftest import build_grid

WORDS = ["apple", "apricot", "banana", "band", "bandage", "cat"]


@pytest.fixture
def index():
    grid = build_grid(128, maxl=5, refmax=3, seed=51)
    text_index = PrefixTextIndex(grid)
    for offset, word in enumerate(WORDS):
        text_index.publish(word, holder=offset, recbreadth=3)
    return text_index


class TestPublish:
    def test_publish_costs_messages(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=52)
        text_index = PrefixTextIndex(grid)
        cost = text_index.publish("hello", holder=0, recbreadth=2)
        assert cost >= 0
        # the word is stored at its holder under the truncated key
        key = text_index.word_key("hello")
        assert "hello" in grid.peer(0).store.get_item(key).value

    def test_publish_empty_word_rejected(self):
        grid = build_grid(16, maxl=3, seed=53)
        with pytest.raises(ValueError):
            PrefixTextIndex(grid).publish("", holder=0)

    def test_key_bits_validated(self):
        grid = build_grid(16, maxl=3, seed=54)
        with pytest.raises(ValueError):
            PrefixTextIndex(grid, key_bits=2)  # below one character

    def test_aliased_words_accumulate_at_holder(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=55)
        # key_bits = 5: single character keys, "cat" and "car" share key
        text_index = PrefixTextIndex(grid, key_bits=5)
        text_index.publish("cat", holder=3)
        text_index.publish("car", holder=3)
        key = text_index.word_key("cat")
        assert set(grid.peer(3).store.get_item(key).value) == {"cat", "car"}

    def test_publish_corpus(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=56)
        text_index = PrefixTextIndex(grid)
        total = text_index.publish_corpus({0: ["ant"], 1: ["bee", "bat"]})
        assert total >= 0
        assert text_index.lookup("bee", start=5).found


class TestLookup:
    def test_exact_lookup_finds_word(self, index):
        result = index.lookup("banana", start=40)
        assert result.found
        assert result.words == ["banana"]

    def test_lookup_case_insensitive(self, index):
        assert index.lookup("APPLE", start=9).found

    def test_lookup_missing_word(self, index):
        result = index.lookup("zebra", start=3)
        assert not result.found
        assert result.words == []

    def test_lookup_near_alias_is_exact(self, index):
        # "band" and "bandage" share a truncated key but lookup("band")
        # must return only the exact word.
        result = index.lookup("band", start=17)
        assert result.words == ["band"]


class TestPrefixSearch:
    def test_prefix_enumerates_matching_words(self, index):
        result = index.prefix_search("ban", start=22, recbreadth=4)
        assert set(result.words) >= {"banana", "band"}
        assert all(word.startswith("ban") for word in result.words)

    def test_single_letter_prefix(self, index):
        result = index.prefix_search("a", start=8, recbreadth=4)
        assert set(result.words) >= {"apple", "apricot"}

    def test_prefix_excludes_non_matching(self, index):
        result = index.prefix_search("cat", start=1, recbreadth=4)
        assert result.words == ["cat"]

    def test_empty_prefix_rejected(self, index):
        with pytest.raises(ValueError):
            index.prefix_search("", start=0)

    def test_miss_prefix(self, index):
        result = index.prefix_search("zz", start=0, recbreadth=4)
        assert not result.found


class TestWordKey:
    def test_word_key_is_truncated_encoding(self):
        grid = build_grid(16, maxl=3, seed=57)
        text_index = PrefixTextIndex(grid, key_bits=10)
        encoder = TextEncoder()
        assert text_index.word_key("hello") == encoder.encode("he")

    def test_word_key_lowercases(self):
        grid = build_grid(16, maxl=3, seed=58)
        text_index = PrefixTextIndex(grid)
        assert text_index.word_key("Cat") == text_index.word_key("cat")
