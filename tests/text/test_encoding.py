"""Tests for the order-preserving text encoder."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidKeyError
from repro.text.encoding import DEFAULT_ALPHABET, TextEncoder

words = st.text(alphabet=DEFAULT_ALPHABET, max_size=12)


class TestConstruction:
    def test_default_alphabet(self):
        encoder = TextEncoder()
        assert encoder.bits_per_char == 5  # 27 symbols -> 5 bits

    def test_binary_alphabet(self):
        encoder = TextEncoder("ab")
        assert encoder.bits_per_char == 1
        assert encoder.encode("ab") == "01"

    def test_validation(self):
        with pytest.raises(ValueError):
            TextEncoder("a")
        with pytest.raises(ValueError):
            TextEncoder("aab")


class TestEncodeDecode:
    def test_known_encoding(self):
        encoder = TextEncoder(" ab")  # ranks: ' '=0, a=1, b=2; 2 bits/char
        assert encoder.encode("ab") == "0110"
        assert encoder.decode("0110") == "ab"

    def test_empty_text(self):
        assert TextEncoder().encode("") == ""
        assert TextEncoder().decode("") == ""

    def test_unknown_character(self):
        with pytest.raises(InvalidKeyError):
            TextEncoder().encode("ABC")  # uppercase not in alphabet

    def test_decode_bad_length(self):
        with pytest.raises(InvalidKeyError):
            TextEncoder(" ab").decode("011")  # not a multiple of 2

    def test_decode_bad_rank(self):
        with pytest.raises(InvalidKeyError):
            TextEncoder(" ab").decode("11")  # rank 3 >= alphabet size

    def test_decode_non_binary(self):
        with pytest.raises(InvalidKeyError):
            TextEncoder(" ab").decode("0a")

    @given(words)
    def test_roundtrip(self, word):
        encoder = TextEncoder()
        assert encoder.decode(encoder.encode(word)) == word

    @given(words, words)
    def test_order_preservation(self, a, b):
        encoder = TextEncoder()
        if a < b:
            assert encoder.encode(a) < encoder.encode(b)
        elif a == b:
            assert encoder.encode(a) == encoder.encode(b)

    @given(words, words)
    def test_prefix_preservation(self, a, b):
        encoder = TextEncoder()
        assert b.startswith(a) == encoder.encode(b).startswith(encoder.encode(a))


class TestTruncation:
    def test_max_chars_for_bits(self):
        encoder = TextEncoder()  # 5 bits/char
        assert encoder.max_chars_for_bits(0) == 0
        assert encoder.max_chars_for_bits(4) == 0
        assert encoder.max_chars_for_bits(5) == 1
        assert encoder.max_chars_for_bits(12) == 2

    def test_max_chars_validated(self):
        with pytest.raises(ValueError):
            TextEncoder().max_chars_for_bits(-1)

    def test_encode_truncated(self):
        encoder = TextEncoder()
        full = encoder.encode("hat")
        assert encoder.encode_truncated("hat", 10) == full[:10]
        assert encoder.encode_truncated("hat", 100) == full

    @given(words, st.integers(0, 60))
    def test_truncated_is_prefix_of_full(self, word, bits):
        encoder = TextEncoder()
        assert encoder.encode(word).startswith(
            encoder.encode_truncated(word, bits)
        )
