"""Observation must not perturb the simulation.

An instrumented engine run must be *bit-identical* to an uninstrumented
one: same results, same final grid state, and — the strong form — the
same RNG stream afterwards, so attaching a probe mid-experiment can never
change what the experiment measures.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.membership import MembershipEngine
from repro.core.search import SearchEngine
from repro.obs import CompositeProbe, MetricsProbe, TraceRecorder
from repro.sim.churn import BernoulliChurn
from tests.conftest import build_grid


def _instrumented_pair(seed: int):
    """Two identically-seeded grids: one to observe, one as control."""
    plain_grid = build_grid(48, maxl=4, refmax=2, seed=seed)
    probed_grid = build_grid(48, maxl=4, refmax=2, seed=seed)
    probe = CompositeProbe([MetricsProbe(), TraceRecorder()])
    return plain_grid, probed_grid, probe


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6), churn_seed=st.integers(0, 10**6))
def test_search_is_probe_transparent(seed: int, churn_seed: int):
    plain_grid, probed_grid, probe = _instrumented_pair(seed)
    plain_grid.online_oracle = BernoulliChurn(0.7, random.Random(churn_seed))
    probed_grid.online_oracle = BernoulliChurn(0.7, random.Random(churn_seed))
    plain = SearchEngine(plain_grid)
    probed = SearchEngine(probed_grid, probe=probe)
    for start in (0, 13, 31):
        for query in ("0000", "0101", "1101"):
            assert plain.query_from(start, query) == probed.query_from(
                start, query
            )
    assert plain_grid.rng.getstate() == probed_grid.rng.getstate()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10**6))
def test_construction_is_probe_transparent(seed: int):
    """Exchange cascades with a probe produce the identical grid."""
    config = PGridConfig(maxl=3, refmax=2, recmax=2, recursion_fanout=2)
    plain_grid = PGrid(config, rng=random.Random(seed))
    probed_grid = PGrid(config, rng=random.Random(seed))
    plain_grid.add_peers(20)
    probed_grid.add_peers(20)
    plain = ExchangeEngine(plain_grid)
    probed = ExchangeEngine(
        probed_grid, probe=CompositeProbe([MetricsProbe(), TraceRecorder()])
    )
    meet_rng = random.Random(seed + 1)
    pairs = [
        tuple(meet_rng.sample(plain_grid.addresses(), 2)) for _ in range(120)
    ]
    for a, b in pairs:
        plain.meet(a, b)
        probed.meet(a, b)
    assert plain.stats.calls == probed.stats.calls
    for address in plain_grid.addresses():
        p1, p2 = plain_grid.peer(address), probed_grid.peer(address)
        assert p1.path == p2.path
        assert p1.buddies == p2.buddies
        for level in range(1, p1.depth + 1):
            assert p1.routing.refs(level) == p2.routing.refs(level)
    assert plain_grid.rng.getstate() == probed_grid.rng.getstate()


def test_membership_is_probe_transparent():
    plain_grid = build_grid(48, maxl=4, refmax=2, seed=33)
    probed_grid = build_grid(48, maxl=4, refmax=2, seed=33)
    plain = MembershipEngine(plain_grid)
    probed = MembershipEngine(
        probed_grid, probe=CompositeProbe([MetricsProbe(), TraceRecorder()])
    )
    report_a = plain.join(0)
    report_b = probed.join(0)
    assert report_a == report_b
    leave_a = plain.leave(5)
    leave_b = probed.leave(5)
    assert leave_a == leave_b
    repair_a = plain.repair_all()
    repair_b = probed.repair_all()
    assert repair_a == repair_b
    assert plain_grid.rng.getstate() == probed_grid.rng.getstate()
