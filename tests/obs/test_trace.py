"""TraceRecorder tests: hop chains must reconstruct the cost model exactly."""

from __future__ import annotations

import random

import pytest

from repro.core.exchange import ExchangeEngine
from repro.core.search import SearchEngine
from repro.obs import CompositeProbe, MetricsProbe, TraceRecorder
from repro.sim.churn import BernoulliChurn
from tests.conftest import build_grid


class TestReconstruction:
    def test_trace_reconstructs_search_tallies(self):
        """messages == forward events, failed_attempts == offline misses —
        over many searches, including under churn."""
        grid = build_grid(128, maxl=5, refmax=3, seed=21)
        grid.online_oracle = BernoulliChurn(0.6, random.Random(5))
        trace = TraceRecorder()
        engine = SearchEngine(grid, probe=trace)
        for start in (0, 17, 42, 99):
            for query in ("00000", "01101", "10010", "11111"):
                trace.clear()
                result = engine.query_from(start, query)
                assert trace.message_count == result.messages
                assert trace.failed_count == result.failed_attempts
                assert len(trace.hop_chain()) == result.messages

    def test_hop_chain_is_connected(self):
        """Modulo backtracking, each forward hop starts where a previous
        one landed (or at the initiator)."""
        grid = build_grid(128, maxl=5, refmax=3, seed=21)
        trace = TraceRecorder()
        engine = SearchEngine(grid, probe=trace)
        start = 7
        engine.query_from(start, "10110")
        visited = {start}
        for source, target, level in trace.hop_chain():
            assert source in visited
            assert level >= 1
            visited.add(target)

    def test_search_end_summary_matches_result(self):
        grid = build_grid(64, maxl=4, seed=3)
        trace = TraceRecorder()
        engine = SearchEngine(grid, probe=trace)
        result = engine.query_from(2, "0101")
        (start_event,) = trace.events_of(TraceRecorder.SEARCH_START)
        (end_event,) = trace.events_of(TraceRecorder.SEARCH_END)
        assert start_event.seq == 0
        assert end_event.seq == len(trace) - 1
        assert end_event.detail["found"] is result.found
        assert end_event.detail["messages"] == result.messages
        assert end_event.detail["failed_attempts"] == result.failed_attempts

    def test_exchange_case_events_recorded(self):
        grid = build_grid(32, maxl=3, seed=13)
        trace = TraceRecorder()
        engine = ExchangeEngine(grid, probe=trace)
        engine.meet(0, 1)
        assert len(trace.events_of(TraceRecorder.MEETING)) == 1
        cases = trace.events_of(TraceRecorder.EXCHANGE_CASE)
        assert cases, "a meeting of constructed peers fires at least one case"
        assert all(
            event.detail["case"]
            in {"case1", "case2", "case3", "case4", "replicas"}
            for event in cases
        )


class TestRecorderMechanics:
    def test_limit_bounds_memory_and_counts_drops(self):
        trace = TraceRecorder(limit=3)
        for index in range(10):
            trace.on_forward(index, index + 1, 1)
        assert len(trace) == 3
        assert trace.dropped == 7
        lines = list(trace.replay())
        assert lines[-1] == "... 7 further events dropped (limit=3)"

    def test_limit_validation(self):
        with pytest.raises(ValueError, match="limit"):
            TraceRecorder(limit=0)

    def test_clear_resets(self):
        trace = TraceRecorder(limit=1)
        trace.on_forward(0, 1, 1)
        trace.on_forward(1, 2, 1)
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_as_dicts_round_trips_fields(self):
        trace = TraceRecorder()
        trace.on_offline_miss(3, 9, 2)
        (payload,) = trace.as_dicts()
        assert payload == {
            "seq": 0,
            "kind": "offline_miss",
            "source": 3,
            "target": 9,
            "level": 2,
        }

    def test_describe_is_stable(self):
        trace = TraceRecorder()
        trace.on_forward(1, 2, 3)
        (event,) = trace.events
        assert event.describe() == "#0    forward from=1 to=2 level=3"


class TestCompositeProbe:
    def test_fans_out_to_all_children(self):
        grid = build_grid(64, maxl=4, seed=7)
        trace = TraceRecorder()
        metrics = MetricsProbe()
        engine = SearchEngine(grid, probe=CompositeProbe([trace, metrics]))
        result = engine.query_from(0, "1010")
        assert trace.message_count == result.messages
        assert (
            metrics.registry.counter("search.dfs.messages").value
            == result.messages
        )
