"""Unit tests for the metrics registry and the MetricsProbe vocabulary."""

from __future__ import annotations

import json

import pytest

from repro.core.search import SearchEngine
from repro.core.updates import ReadEngine, UpdateEngine
from repro.core.storage import DataItem
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsProbe,
    MetricsRegistry,
)
from tests.conftest import build_grid


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_bucketing(self):
        hist = Histogram("h", bounds=(1, 5, 10))
        for value in (0, 1, 2, 5, 7, 11, 100):
            hist.observe(value)
        snap = hist.snapshot()
        # <=1: {0, 1}; <=5: {2, 5}; <=10: {7}; +inf: {11, 100}
        assert [count for _, count in snap["buckets"]] == [2, 2, 1, 2]
        assert snap["count"] == 7
        assert snap["min"] == 0
        assert snap["max"] == 100

    def test_histogram_mean_and_empty(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(5, 1))

    def test_histogram_merge_requires_same_bounds(self):
        a = Histogram("h", bounds=(1, 2))
        b = Histogram("h", bounds=(1, 3))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_histogram_merge_adds(self):
        a = Histogram("h", bounds=(1, 2))
        b = Histogram("h", bounds=(1, 2))
        a.observe(1)
        b.observe(2)
        b.observe(9)
        a.merge(b)
        assert a.count == 3
        assert a.total == 12
        assert a.maximum == 9


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "b" in registry and "c" not in registry
        assert registry.names() == ["a", "b"]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(3)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h").observe(1)
        b.histogram("h").observe(2)
        a.merge(b)
        assert a.counter("c").value == 3  # counters add
        assert a.gauge("g").value == 9    # gauges last-write-wins
        assert a.histogram("h").count == 2

    def test_to_rows_is_flat_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2)
        rows = list(registry.to_rows())
        assert ("c", "counter", "value", 1) in rows
        fields = {field for name, _, field, _ in rows if name == "h"}
        assert fields == {"count", "sum", "min", "max", "mean"}

    def test_write_json_and_csv(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        json_path = registry.write_json(tmp_path / "m.json")
        csv_path = registry.write_csv(tmp_path / "m.csv")
        payload = json.loads(json_path.read_text())
        assert payload["counters"] == {"c": 3}
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "metric,type,field,value"
        assert lines[1].startswith("c,counter,value,3")


class TestMetricsProbeTotals:
    """Registry aggregates must equal the result-object fields exactly."""

    def test_search_totals_match_results(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=7)
        probe = MetricsProbe()
        engine = SearchEngine(grid, probe=probe)
        totals = {"messages": 0, "failed": 0, "count": 0, "found": 0}
        for start in (0, 5, 11, 23):
            for query in ("0000", "0110", "1011", "1111"):
                result = engine.query_from(start, query)
                totals["messages"] += result.messages
                totals["failed"] += result.failed_attempts
                totals["count"] += 1
                totals["found"] += int(result.found)
        registry = probe.registry
        assert registry.counter("search.dfs.count").value == totals["count"]
        assert registry.counter("search.dfs.found").value == totals["found"]
        assert registry.counter("search.dfs.messages").value == totals["messages"]
        assert (
            registry.counter("search.dfs.failed_contacts").value
            == totals["failed"]
        )
        assert registry.histogram("search.dfs.hops").count == totals["count"]
        assert registry.histogram("search.dfs.hops").total == totals["messages"]

    def test_update_and_read_totals_match_results(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=9)
        probe = MetricsProbe()
        updates = UpdateEngine(grid, probe=probe)
        reads = ReadEngine(grid, search=updates.search, probe=probe)
        update = updates.publish(
            0, DataItem(key="0101", value="v"), holder=1, version=1
        )
        read = reads.read_single(3, "0101", holder=1, version=1)
        registry = probe.registry
        assert registry.counter("update.count").value == 1
        assert registry.counter("update.messages").value == update.messages
        assert registry.histogram("update.reached").total == len(update.reached)
        assert registry.counter("read.count").value == 1
        assert registry.counter("read.messages").value == read.messages
        assert registry.counter("read.success").value == int(read.success)
