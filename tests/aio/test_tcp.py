"""SwarmServer: the wire framing serving a live swarm over real TCP.

One process, real sockets: a client speaking the length-prefixed JSON
frames of :mod:`repro.net.wire` must get the same answers a co-located
caller gets from the swarm directly, and failures must come back as
framed error replies, never dropped connections.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import TransportError
from repro.net.message import MessageKind, ping, query_message
from tests.conftest import build_grid

from repro.aio.swarm import AsyncSwarm, seed_items
from repro.aio.tcp import SwarmServer, remote_request, remote_search


def make_served_swarm(n=32, maxl=4, seed=11):
    grid = build_grid(n, maxl=maxl, refmax=2, seed=seed)
    keys = seed_items(grid, seed=1)
    return grid, AsyncSwarm(grid), keys


def test_remote_search_matches_local():
    grid, swarm, keys = make_served_swarm()

    async def scenario():
        async with swarm:
            async with SwarmServer(swarm) as server:
                host, port = server.host, server.port
                for key in keys[:5]:
                    local = await swarm.search(0, key)
                    remote = await remote_search(host, port, 0, key)
                    # routing is randomized per operation, so responders
                    # may differ — but both must hit the replica set and
                    # return the same index entries
                    assert remote.found and local.found
                    assert remote.responder in grid.replicas_for_key(key)
                    assert remote.query == key
                    assert {(r.key, r.holder) for r in remote.data_refs} == {
                        (r.key, r.holder) for r in local.data_refs
                    }

    asyncio.run(scenario())


def test_remote_ping_pong():
    grid, swarm, _ = make_served_swarm(n=16, maxl=3)

    async def scenario():
        async with swarm:
            async with SwarmServer(swarm) as server:
                host, port = server.host, server.port
                reply = await remote_request(host, port, ping(-1, 0))
                assert reply.kind is MessageKind.PONG

    asyncio.run(scenario())


def test_remote_error_comes_back_framed():
    """A query for an unregistered address is answered with a framed
    error reply; the connection survives for the next request."""
    grid, swarm, keys = make_served_swarm(n=16, maxl=3)

    async def scenario():
        async with swarm:
            async with SwarmServer(swarm) as server:
                host, port = server.host, server.port
                with pytest.raises(TransportError, match="remote search"):
                    await remote_search(host, port, 9999, keys[0])
                # server is still healthy afterwards
                outcome = await remote_search(host, port, 0, keys[0])
                assert outcome.found

    asyncio.run(scenario())


def test_many_concurrent_remote_clients():
    grid, swarm, keys = make_served_swarm()

    async def scenario():
        async with swarm:
            async with SwarmServer(swarm) as server:
                host, port = server.host, server.port
                outcomes = await asyncio.gather(
                    *(
                        remote_search(host, port, start % len(grid.addresses()), key)
                        for start, key in enumerate(keys * 3)
                    )
                )
                assert all(o.found for o in outcomes)

    asyncio.run(scenario())


def test_one_connection_many_requests():
    """Frames pipeline over a single connection in order."""
    grid, swarm, keys = make_served_swarm(n=16, maxl=3)
    from repro.net import wire

    async def scenario():
        async with swarm:
            async with SwarmServer(swarm) as server:
                host, port = server.host, server.port
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    requests = [
                        query_message(-1, 0, key, 0) for key in keys[:4]
                    ]
                    for request in requests:
                        await wire.write_message(writer, request)
                    for request in requests:
                        reply = await wire.read_message(reader)
                        assert reply is not None
                        assert reply.in_reply_to == request.message_id
                        assert reply.payload["found"] is True
                finally:
                    writer.close()
                    await writer.wait_closed()

    asyncio.run(scenario())
