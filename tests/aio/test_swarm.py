"""AsyncSwarm: whole-population serving and the mixed workload driver.

The swarm's contract is *correct under concurrency*: operations may
interleave arbitrarily on the loop, but every search must still find a
key the grid holds, every update must reach its replica set, and the
workload schedule itself must be a pure function of the seed.  A larger
smoke (1000 nodes) runs via ``make swarm-smoke`` / CI; these tests keep
the invariant checks fast enough for tier 1.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.sim import rng as rngmod
from tests.conftest import build_grid

from repro.aio.swarm import AsyncSwarm, seed_items


def make_swarm(n=64, maxl=4, seed=7, **kwargs):
    grid = build_grid(n, maxl=maxl, refmax=2, seed=seed)
    return grid, AsyncSwarm(grid, **kwargs)


class TestSeedItems:
    def test_deterministic_and_installed(self):
        grid_a = build_grid(32, maxl=4, refmax=2, seed=3)
        grid_b = build_grid(32, maxl=4, refmax=2, seed=3)
        keys_a = seed_items(grid_a, items_per_peer=2, seed=5)
        keys_b = seed_items(grid_b, items_per_peer=2, seed=5)
        assert keys_a == keys_b
        assert keys_a == sorted(set(keys_a))
        # every key is actually answerable from its replicas
        for key in keys_a:
            replicas = grid_a.replicas_for_key(key)
            assert replicas
            assert any(
                grid_a.peer(addr).store.refs_for_key(key) for addr in replicas
            )

    def test_item_randomness_is_not_grid_randomness(self):
        grid = build_grid(16, maxl=3, refmax=2, seed=3)
        before = grid.rng.getstate()
        seed_items(grid, seed=5)
        assert grid.rng.getstate() == before


class TestSingleOperations:
    def test_search_and_update_roundtrip(self):
        grid, swarm = make_swarm()
        keys = seed_items(grid, seed=1)

        async def scenario():
            async with swarm:
                outcome = await swarm.search(0, keys[0])
                assert outcome.found
                from repro.core.storage import DataRef

                ref = DataRef(key=keys[0], holder=3, version=9)
                result = await swarm.update(0, ref)
                assert result.reached
                again = await swarm.search(5, keys[0])
                assert again.found
                assert any(r.version == 9 for r in again.data_refs)

        asyncio.run(scenario())


class TestWorkload:
    def test_mixed_workload_all_found_no_errors(self):
        grid, swarm = make_swarm()
        keys = seed_items(grid, seed=2)

        async def scenario():
            async with swarm:
                return await swarm.run_workload(
                    operations=200, keys=keys, update_fraction=0.2,
                    concurrency=16, seed=0,
                )

        report = asyncio.run(scenario())
        assert report.errors == []
        assert report.operations == 200
        assert report.searches + report.updates == 200
        assert report.updates > 0
        assert report.found == report.searches  # healthy grid: all hit
        assert report.found_rate == 1.0
        assert report.update_failures == 0
        assert report.messages_delivered > 0
        assert report.max_mailbox_depth >= 1
        snapshot = report.snapshot()
        assert snapshot["peers"] == len(grid.addresses())
        assert snapshot["found_rate"] == 1.0

    def test_schedule_is_seed_deterministic(self):
        """Same seed -> same operation mix regardless of interleaving."""
        reports = []
        for concurrency in (4, 32):
            grid, swarm = make_swarm()
            keys = seed_items(grid, seed=2)

            async def scenario(swarm=swarm, keys=keys, concurrency=concurrency):
                async with swarm:
                    return await swarm.run_workload(
                        operations=150, keys=keys, update_fraction=0.3,
                        concurrency=concurrency, seed=9,
                    )

            reports.append(asyncio.run(scenario()))
        first, second = reports
        assert first.searches == second.searches
        assert first.updates == second.updates
        assert first.found == second.found
        assert first.update_failures == second.update_failures

    def test_workload_validation(self):
        grid, swarm = make_swarm(n=16, maxl=3)
        keys = seed_items(grid, seed=1)

        async def bad(**kwargs):
            async with swarm:
                await swarm.run_workload(**kwargs)

        with pytest.raises(ValueError):
            asyncio.run(bad(operations=0, keys=keys))
        with pytest.raises(ValueError):
            asyncio.run(bad(operations=10, keys=[]))
        with pytest.raises(ValueError):
            asyncio.run(bad(operations=10, keys=keys, update_fraction=1.5))
        with pytest.raises(ValueError):
            asyncio.run(bad(operations=10, keys=keys, concurrency=0))

    def test_workload_under_faults_counts_failures_not_raises(self):
        """Crashed peers surface as found-rate loss / error strings, never
        as an exception out of run_workload."""
        from repro.faults import FaultPlan

        grid, swarm = make_swarm(n=48, maxl=4)
        keys = seed_items(grid, seed=3)
        injector = swarm.transport.install_faults(FaultPlan(seed=13))
        injector.crash_random(0.25)

        async def scenario():
            async with swarm:
                return await swarm.run_workload(
                    operations=120, keys=keys, update_fraction=0.1,
                    concurrency=8, seed=4,
                )

        report = asyncio.run(scenario())
        assert report.operations == 120
        # some operations failed outright (crashed start node) or missed
        assert report.errors or report.found < report.searches
