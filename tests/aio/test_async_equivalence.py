"""Engine <-> node <-> async node: one machine, three drivers.

The asyncio runtime's acceptance criterion extends the tentpole claim of
``tests/protocol/test_equivalence.py`` to a *third* driver: on triplet
grids (identical build seed) a sequential workload must produce
identical results, identical cost counters and — the strongest form —
identical grid-RNG states across the in-process engine, the sync
networked node and the asyncio node.  Fault worlds install the same way
on all three, so a fault plan behaves identically on either substrate.
"""

from __future__ import annotations

import asyncio
import random

from repro.core import keys as keyspace
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.net.message import MessageKind
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from tests.conftest import build_grid

from repro.aio.node import attach_async_nodes
from repro.aio.transport import AsyncTransport


def triplet_grids(seed: int, n: int = 96, maxl: int = 5, refmax: int = 2):
    """Three independently built but bit-identical grids."""
    return tuple(
        build_grid(n, maxl=maxl, refmax=refmax, seed=seed) for _ in range(3)
    )


def populate(grid, items):
    for key, holder, version in items:
        for address in grid.replicas_for_key(key):
            grid.peer(address).store.add_ref(
                DataRef(key=key, holder=holder, version=version)
            )


def install_faults(grid, seed: int, *, availability=0.85):
    """Same fault world on any substrate, expressed through the oracle."""
    injector = FaultInjector(
        LocalTransport(grid), FaultPlan(seed=seed, availability=availability)
    )
    injector.crash_random(0.10, downtime=4)
    injector.inject_stale_refs(0.15)
    injector.install_oracle()
    return injector


ITEMS = [("10110", 4, 1), ("01011", 9, 2), ("00100", 2, 1), ("11101", 5, 3)]


class ThreeWay:
    """One engine + one sync node population + one async node population
    over triplet grids, with a single event loop for the async side."""

    def __init__(self, seed: int, *, retry=None, fault_seed: int | None = None,
                 items=None, n: int = 96, maxl: int = 5):
        self.a, self.b, self.c = triplet_grids(seed, n=n, maxl=maxl)
        if items:
            for grid in (self.a, self.b, self.c):
                populate(grid, items)
        if fault_seed is not None:
            for grid in (self.a, self.b, self.c):
                install_faults(grid, fault_seed)
        self.engine = SearchEngine(self.a, retry=retry)
        self.sync_transport = LocalTransport(self.b)
        self.sync_nodes = attach_nodes(self.b, self.sync_transport, retry=retry)
        self.async_transport = AsyncTransport(self.c)
        self.async_nodes = attach_async_nodes(
            self.c, self.async_transport, retry=retry
        )
        self.loop = asyncio.new_event_loop()
        self.loop.run_until_complete(self.async_transport.start())

    def close(self):
        self.loop.run_until_complete(self.async_transport.stop())
        self.loop.close()

    def run(self, coro):
        return self.loop.run_until_complete(coro)

    def assert_rng_aligned(self):
        assert self.a.rng.getstate() == self.b.rng.getstate()
        assert self.a.rng.getstate() == self.c.rng.getstate()


def test_dfs_three_way_results_costs_and_rng():
    world = ThreeWay(seed=41, items=ITEMS)
    try:
        picker = random.Random(3)
        for _ in range(25):
            key = keyspace.random_key(5, picker)
            start = picker.choice(world.a.addresses())
            expected = world.engine.query_from(start, key)
            sync_outcome = world.sync_nodes[start].search(key)
            before = world.async_transport.count(MessageKind.QUERY)
            async_outcome = world.run(world.async_nodes[start].search(key))
            for outcome in (sync_outcome, async_outcome):
                assert outcome.found == expected.found
                assert outcome.responder == expected.responder
                assert outcome.messages_sent == expected.messages
                assert outcome.failed_attempts == expected.failed_attempts
                assert outcome.retry_delay == expected.retry_delay
                assert outcome.data_refs == expected.data_refs
            assert (
                world.async_transport.count(MessageKind.QUERY) - before
                == async_outcome.messages_sent
            )
            world.assert_rng_aligned()
    finally:
        world.close()


def test_dfs_three_way_under_faults_and_retry():
    retry = RetryPolicy(attempts=3, base_delay=0.5, deadline=4.0)
    world = ThreeWay(seed=43, retry=retry, fault_seed=11)
    try:
        picker = random.Random(5)
        for _ in range(20):
            key = keyspace.random_key(5, picker)
            start = picker.choice(world.a.addresses())
            expected = world.engine.query_from(start, key)
            sync_outcome = world.sync_nodes[start].search(key)
            async_outcome = world.run(world.async_nodes[start].search(key))
            for outcome in (sync_outcome, async_outcome):
                assert outcome.found == expected.found
                assert outcome.responder == expected.responder
                assert outcome.messages_sent == expected.messages
                assert outcome.failed_attempts == expected.failed_attempts
                assert outcome.retry_delay == expected.retry_delay
            world.assert_rng_aligned()
        # the fault world actually exercised the failure paths, and the
        # async side accrued the same simulated retry time
        assert world.async_transport.stats.offline_failures > 0
        assert (
            world.async_transport.stats.offline_failures
            == world.sync_transport.stats.offline_failures
        )
        assert world.async_transport.stats.simulated_time == (
            world.sync_transport.stats.simulated_time
        )
    finally:
        world.close()


def test_repeated_search_three_way():
    world = ThreeWay(seed=44, n=64, maxl=4)
    try:
        expected = world.engine.repeated_query(0, "1011", 5)
        assert world.sync_nodes[0].search_repeated("1011", 5) == expected
        assert world.run(world.async_nodes[0].search_repeated("1011", 5)) == expected
        world.assert_rng_aligned()
    finally:
        world.close()


def test_breadth_three_way():
    world = ThreeWay(seed=45)
    try:
        picker = random.Random(7)
        for recbreadth in (1, 2, 3):
            key = keyspace.random_key(5, picker)
            start = picker.choice(world.a.addresses())
            expected = world.engine.query_breadth(start, key, recbreadth)
            assert world.sync_nodes[start].search_breadth(key, recbreadth) == expected
            before = world.async_transport.count(MessageKind.BREADTH_QUERY)
            outcome = world.run(
                world.async_nodes[start].search_breadth(key, recbreadth)
            )
            assert outcome == expected
            assert (
                world.async_transport.count(MessageKind.BREADTH_QUERY) - before
                == outcome.messages
            )
            world.assert_rng_aligned()
    finally:
        world.close()


def test_breadth_three_way_under_faults():
    retry = RetryPolicy(attempts=2, base_delay=1.0)
    world = ThreeWay(seed=46, retry=retry, fault_seed=13)
    try:
        picker = random.Random(9)
        for _ in range(8):
            key = keyspace.random_key(5, picker)
            start = picker.choice(world.a.addresses())
            expected = world.engine.query_breadth(start, key, 2)
            assert world.sync_nodes[start].search_breadth(key, 2) == expected
            assert world.run(world.async_nodes[start].search_breadth(key, 2)) == expected
            world.assert_rng_aligned()
    finally:
        world.close()


def test_range_three_way():
    world = ThreeWay(seed=47, items=ITEMS)
    try:
        for low, high in [("00100", "01101"), ("10000", "11101"), ("01011", "01011")]:
            expected = world.engine.query_range(5, low, high, recbreadth=2)
            assert world.sync_nodes[5].range_search(low, high, recbreadth=2) == expected
            before = world.async_transport.count(MessageKind.RANGE_QUERY)
            outcome = world.run(
                world.async_nodes[5].range_search(low, high, recbreadth=2)
            )
            assert outcome == expected
            assert (
                world.async_transport.count(MessageKind.RANGE_QUERY) - before
                == outcome.messages
            )
            world.assert_rng_aligned()
    finally:
        world.close()


def test_range_three_way_under_faults():
    world = ThreeWay(seed=48, items=ITEMS, fault_seed=17)
    try:
        expected = world.engine.query_range(2, "01000", "10111", recbreadth=2)
        assert world.sync_nodes[2].range_search("01000", "10111", recbreadth=2) == expected
        assert world.run(
            world.async_nodes[2].range_search("01000", "10111", recbreadth=2)
        ) == expected
        world.assert_rng_aligned()
    finally:
        world.close()


def test_update_publish_three_way():
    """Breadth-first update propagation reaches the same replica set with
    the same message counts on all three drivers."""
    from repro.core.updates import UpdateEngine, UpdateStrategy

    world = ThreeWay(seed=49)
    try:
        engine_updates = UpdateEngine(world.a, search=world.engine)
        picker = random.Random(11)
        for version in range(1, 6):
            key = keyspace.random_key(5, picker)
            holder = picker.choice(world.a.addresses())
            start = picker.choice(world.a.addresses())
            ref = DataRef(key=key, holder=holder, version=version)
            expected = engine_updates.propagate(
                start, ref, strategy=UpdateStrategy.BFS, recbreadth=2
            )
            sync_result = world.sync_nodes[start].publish(ref, recbreadth=2)
            async_result = world.run(
                world.async_nodes[start].publish(ref, recbreadth=2)
            )
            for result in (sync_result, async_result):
                assert result.reached == expected.reached
                assert result.messages == expected.messages
                assert result.failed_attempts == expected.failed_attempts
                assert result.replica_count == expected.replica_count
            world.assert_rng_aligned()
    finally:
        world.close()


def test_fault_plan_through_async_transport_matches_sync():
    """The same FaultPlan wired through install_faults (async) and a
    FaultInjector-wrapped LocalTransport (sync) injects identical extra
    latency and drop decisions for a sequential workload."""
    a = build_grid(48, maxl=4, refmax=2, seed=51)
    b = build_grid(48, maxl=4, refmax=2, seed=51)
    plan = FaultPlan(seed=23, extra_latency=0.25)

    sync_transport = LocalTransport(a)
    sync_injector = FaultInjector(sync_transport, plan)
    sync_injector.install_oracle()
    sync_nodes = attach_nodes(a, sync_injector)

    async_transport = AsyncTransport(b)
    async_injector = async_transport.install_faults(plan)
    async_nodes = attach_async_nodes(b, async_transport)

    loop = asyncio.new_event_loop()
    loop.run_until_complete(async_transport.start())
    try:
        picker = random.Random(2)
        for _ in range(15):
            key = keyspace.random_key(4, picker)
            start = picker.choice(a.addresses())
            expected = sync_nodes[start].search(key)
            outcome = loop.run_until_complete(async_nodes[start].search(key))
            assert outcome.found == expected.found
            assert outcome.responder == expected.responder
            assert outcome.messages_sent == expected.messages_sent
            assert a.rng.getstate() == b.rng.getstate()
        assert (
            async_injector.fault_stats.injected_latency
            == sync_injector.fault_stats.injected_latency
        )
        assert async_injector.fault_stats.injected_latency > 0
    finally:
        loop.run_until_complete(async_transport.stop())
        loop.close()
