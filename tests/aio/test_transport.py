"""AsyncTransport semantics: mailboxes, backpressure, failure order, faults.

The async transport must present *exactly* the LocalTransport delivery
contract to the protocol (same error types in the same precedence, same
``TrafficStats`` accounting) while adding what an event loop makes
possible: bounded per-node mailboxes with blocking backpressure,
concurrent handler tasks, and queue-depth/latency observability.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.errors import (
    InvalidConfigError,
    NoHandlerError,
    PeerOfflineError,
    TransportError,
)
from repro.faults import FaultPlan
from repro.net.message import MessageKind, ping, pong
from repro.net.transport import ConstantLatency
from repro.sim.churn import FixedOnlineSet

from repro.aio.transport import AsyncTransport


def make_grid(n_peers: int = 4) -> PGrid:
    grid = PGrid(PGridConfig(), rng=random.Random(0))
    grid.add_peers(n_peers)
    return grid


async def async_pong(message):
    return pong(message)


def run(coro):
    return asyncio.run(coro)


class TestRegistration:
    def test_register_unknown_address_rejected(self):
        transport = AsyncTransport(make_grid(4))
        with pytest.raises(InvalidConfigError, match="no such peer"):
            transport.register(9, async_pong)

    def test_double_register_rejected(self):
        transport = AsyncTransport(make_grid())
        transport.register(1, async_pong)
        with pytest.raises(TransportError):
            transport.register(1, async_pong)

    def test_mailbox_size_validated(self):
        with pytest.raises(ValueError):
            AsyncTransport(make_grid(), mailbox_size=0)

    def test_lossy_transport_requires_seeded_rng(self):
        with pytest.raises(InvalidConfigError):
            AsyncTransport(make_grid(), loss_probability=0.5)

    def test_is_reachable(self):
        grid = make_grid()
        transport = AsyncTransport(grid)
        transport.register(1, async_pong)
        assert transport.is_reachable(1)
        assert not transport.is_reachable(0)
        grid.online_oracle = FixedOnlineSet(set())
        assert not transport.is_reachable(1)

    def test_register_after_start_spawns_worker(self):
        grid = make_grid()
        transport = AsyncTransport(grid)

        async def scenario():
            await transport.start()
            transport.register(1, async_pong)
            try:
                return await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        assert run(scenario()).kind is MessageKind.PONG


class TestDeliveryOrder:
    """Failure precedence must match LocalTransport.send exactly."""

    def test_missing_handler(self):
        transport = AsyncTransport(make_grid())

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        with pytest.raises(NoHandlerError):
            run(scenario())

    def test_offline_destination(self):
        grid = make_grid()
        transport = AsyncTransport(grid)
        transport.register(1, async_pong)
        grid.online_oracle = FixedOnlineSet({0})

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        with pytest.raises(PeerOfflineError):
            run(scenario())
        assert transport.stats.offline_failures == 1

    def test_loss_coin(self):
        transport = AsyncTransport(make_grid(), loss_probability=0.9999, seed=1)
        transport.register(1, async_pong)

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        with pytest.raises(TransportError):
            run(scenario())
        assert transport.stats.dropped == 1

    def test_latency_accrues_simulated_time(self):
        transport = AsyncTransport(make_grid(), latency=ConstantLatency(2.5))
        transport.register(1, async_pong)

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        run(scenario())
        assert transport.stats.simulated_time == pytest.approx(5.0)
        assert transport.clock.elapsed == pytest.approx(5.0)

    def test_delivery_counts_and_try_request(self):
        grid = make_grid()
        transport = AsyncTransport(grid)
        transport.register(1, async_pong)

        async def scenario():
            await transport.start()
            try:
                reply = await transport.request(ping(0, 1))
                assert reply.kind is MessageKind.PONG
                grid.online_oracle = FixedOnlineSet({0})
                assert await transport.try_request(ping(0, 1)) is None
            finally:
                await transport.stop()

        run(scenario())
        assert transport.count(MessageKind.PING) == 1


class TestMailboxes:
    def test_stats_track_enqueue_and_handling(self):
        transport = AsyncTransport(make_grid())
        transport.register(1, async_pong)

        async def scenario():
            await transport.start()
            try:
                await asyncio.gather(
                    *(transport.request(ping(0, 1)) for _ in range(10))
                )
            finally:
                await transport.stop()

        run(scenario())
        box = transport.mailbox_stats[1]
        assert box.enqueued == 10
        assert box.handled == 10
        assert box.max_depth >= 1
        snapshot = transport.mailbox_snapshot()
        assert snapshot["enqueued"] == 10
        assert snapshot["handled"] == 10
        assert snapshot["max_depth"] == transport.max_mailbox_depth()

    def test_bounded_mailbox_applies_backpressure(self):
        """With a full size-1 mailbox, request() blocks in queue.put
        instead of dropping — the sender is the one that waits.  The
        queue fills while the node's worker isn't draining (here: not
        yet started; in production: a node buried under load)."""
        transport = AsyncTransport(make_grid(), mailbox_size=1)
        transport.register(1, async_pong)

        async def scenario():
            senders = [
                asyncio.ensure_future(transport.request(ping(0, 1)))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            # one message made it into the mailbox; the other senders
            # are parked inside queue.put, not dropped
            assert transport.mailbox_stats[1].enqueued == 1
            assert not any(s.done() for s in senders)
            await transport.start()
            try:
                replies = await asyncio.gather(*senders)
                assert all(r.kind is MessageKind.PONG for r in replies)
                assert transport.mailbox_stats[1].enqueued == 3
                assert transport.mailbox_stats[1].handled == 3
            finally:
                await transport.stop()

        run(scenario())

    def test_reentrant_handlers_do_not_deadlock(self):
        """A handler that calls back into its requester's mailbox — the
        shape recursive queries produce — must complete."""
        grid = make_grid()
        transport = AsyncTransport(grid)

        async def relay(message):
            if message.source == 0:
                # B contacts A back while A awaits B's reply.
                await transport.request(ping(1, 0))
            return pong(message)

        transport.register(0, async_pong)
        transport.register(1, relay)

        async def scenario():
            await transport.start()
            try:
                return await asyncio.wait_for(
                    transport.request(ping(0, 1)), timeout=5.0
                )
            finally:
                await transport.stop()

        assert run(scenario()).kind is MessageKind.PONG

    def test_handler_exception_propagates_to_requester(self):
        transport = AsyncTransport(make_grid())

        async def broken(message):
            raise RuntimeError("handler blew up")

        transport.register(1, broken)

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        with pytest.raises(RuntimeError, match="blew up"):
            run(scenario())


class TestFaultWiring:
    def test_install_faults_runs_pre_and_post_gates(self):
        grid = make_grid()
        transport = AsyncTransport(grid)
        transport.register(1, async_pong)
        injector = transport.install_faults(FaultPlan(seed=3, extra_latency=1.5))
        assert transport.faults is injector

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        run(scenario())
        assert injector.fault_stats.injected_latency == pytest.approx(1.5)
        assert transport.stats.simulated_time == pytest.approx(1.5)

    def test_crashed_peer_unreachable_through_async_path(self):
        grid = make_grid()
        transport = AsyncTransport(grid)
        transport.register(1, async_pong)
        injector = transport.install_faults(FaultPlan(seed=3))
        injector.crash(1)

        async def scenario():
            await transport.start()
            try:
                await transport.request(ping(0, 1))
            finally:
                await transport.stop()

        with pytest.raises(PeerOfflineError):
            run(scenario())
        assert injector.fault_stats.crashed_contacts == 1

    def test_fault_plan_unknown_peer_rejected(self):
        transport = AsyncTransport(make_grid(4))
        injector = transport.install_faults(FaultPlan(seed=3))
        with pytest.raises(InvalidConfigError, match="no such peer"):
            injector.crash(99)
