"""`PGrid.audit_routing` must flag every way a reference can be wrong."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from tests.conftest import build_grid


@pytest.fixture
def hand_grid() -> PGrid:
    """Four peers over a depth-2 trie with a consistent reference set."""
    config = PGridConfig(maxl=2, refmax=2, recmax=1, recursion_fanout=1)
    grid = PGrid(config, rng=random.Random(0))
    for path in ("00", "01", "10", "11"):
        peer = grid.add_peer()
        peer.set_path(path)
    # Level 1 crosses the top bit, level 2 the second bit.
    grid.peer(0).routing.set_refs(1, [2])  # 00 -> 10
    grid.peer(0).routing.set_refs(2, [1])  # 00 -> 01
    grid.peer(1).routing.set_refs(1, [3])
    grid.peer(1).routing.set_refs(2, [0])
    grid.peer(2).routing.set_refs(1, [0])
    grid.peer(2).routing.set_refs(2, [3])
    grid.peer(3).routing.set_refs(1, [1])
    grid.peer(3).routing.set_refs(2, [2])
    return grid


class TestAuditRouting:
    def test_consistent_grid_is_clean(self, hand_grid):
        assert hand_grid.audit_routing() == []

    def test_constructed_grid_is_clean(self):
        assert build_grid(64, maxl=4, seed=7).audit_routing() == []

    def test_flags_refs_beyond_path_depth(self, hand_grid):
        # Peer 0 has depth 2; a level-3 reference cannot be matched against
        # any path bit and must be reported.
        hand_grid.peer(0).routing.set_refs(3, [1])
        violations = hand_grid.audit_routing()
        assert len(violations) == 1
        assert "beyond" in violations[0]
        assert "level 3" in violations[0]

    def test_flags_dangling_reference(self, hand_grid):
        # Address 99 was never registered (e.g. the peer crashed).
        hand_grid.peer(1).routing.set_refs(1, [99])
        violations = hand_grid.audit_routing()
        assert len(violations) == 1
        assert "dangling ref 99" in violations[0]

    def test_flags_wrong_prefix(self, hand_grid):
        # Peer 2 (path "10") must reference the "0..." side at level 1;
        # peer 3 (path "11") is on the same side — invariant broken.
        hand_grid.peer(2).routing.set_refs(1, [3])
        violations = hand_grid.audit_routing()
        assert len(violations) == 1
        assert "expected prefix '0'" in violations[0]

    def test_reports_every_violation(self, hand_grid):
        hand_grid.peer(0).routing.set_refs(3, [1])     # beyond depth
        hand_grid.peer(1).routing.set_refs(1, [99])    # dangling
        hand_grid.peer(2).routing.set_refs(1, [3])     # wrong prefix
        assert len(hand_grid.audit_routing()) == 3
