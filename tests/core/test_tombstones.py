"""Tests for deletion (tombstone) semantics."""

from __future__ import annotations

import pytest

from repro.core.storage import DataItem, DataRef, DataStore
from repro.core.updates import UpdateEngine, UpdateStrategy
from repro.core.search import SearchEngine
from tests.conftest import build_grid


class TestStoreTombstones:
    def test_tombstone_constructor(self):
        live = DataRef(key="0101", holder=3, version=2)
        dead = live.tombstone()
        assert dead.deleted
        assert dead.version == 3
        assert (dead.key, dead.holder) == (live.key, live.holder)

    def test_tombstone_hides_entry_from_lookup(self):
        store = DataStore()
        live = DataRef(key="0101", holder=3, version=0)
        store.add_ref(live)
        assert store.lookup("0101")
        store.add_ref(live.tombstone())
        assert store.lookup("0101") == []
        assert store.refs_for_key("0101") == []
        assert store.is_deleted("0101", 3)

    def test_tombstone_survives_stale_republish(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=0))
        store.add_ref(DataRef(key="01", holder=1, version=1, deleted=True))
        # a delayed copy of the original publish arrives late:
        store.add_ref(DataRef(key="01", holder=1, version=0))
        assert store.lookup("01") == []

    def test_newer_publish_resurrects(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=1, deleted=True))
        store.add_ref(DataRef(key="01", holder=1, version=2))
        assert not store.is_deleted("01", 1)
        assert store.refs_for_key("01")

    def test_is_deleted_absent_entry(self):
        assert not DataStore().is_deleted("01", 1)

    def test_version_of_still_visible_for_tombstones(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=4, deleted=True))
        assert store.version_of("01", 1) == 4

    def test_other_holders_unaffected(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=0))
        store.add_ref(DataRef(key="01", holder=2, version=0))
        store.add_ref(DataRef(key="01", holder=1, version=1, deleted=True))
        assert [ref.holder for ref in store.refs_for_key("01")] == [2]


class TestRetractPropagation:
    def test_retract_hides_entry_at_reached_replicas(self):
        grid = build_grid(256, maxl=5, refmax=3, seed=91)
        updates = UpdateEngine(grid)
        item = DataItem(key="01101", value="old-file")
        updates.publish(
            2, item, holder=9, strategy=UpdateStrategy.BFS, recbreadth=3
        )
        result = updates.retract(
            2, "01101", holder=9, version=1,
            strategy=UpdateStrategy.BFS, recbreadth=3,
        )
        assert result.reached
        for address in result.reached:
            store = grid.peer(address).store
            assert store.is_deleted("01101", 9)
            assert not any(
                ref.holder == 9 for ref in store.lookup("01101")
            )

    def test_search_stops_returning_deleted_entries(self):
        grid = build_grid(256, maxl=5, refmax=3, seed=92)
        grid.seed_index([(DataItem(key="10010", value="x"), 7)])
        engine = SearchEngine(grid)
        before = engine.query_from(0, "10010")
        assert any(ref.holder == 7 for ref in before.data_refs)
        # retract everywhere (seeded ground truth: every replica)
        for address in grid.replicas_for_key("10010"):
            grid.peer(address).store.add_ref(
                DataRef(key="10010", holder=7, version=1, deleted=True)
            )
        after = engine.query_from(0, "10010")
        assert not any(ref.holder == 7 for ref in after.data_refs)

    def test_range_queries_skip_tombstones(self):
        grid = build_grid(128, maxl=4, refmax=3, seed=93)
        grid.seed_index([(DataItem(key="010100", value="x"), 5)])
        for address in grid.replicas_for_key("010100"):
            grid.peer(address).store.add_ref(
                DataRef(key="010100", holder=5, version=1, deleted=True)
            )
        engine = SearchEngine(grid)
        result = engine.query_range(0, "000000", "111111", recbreadth=4)
        assert not any(
            ref.holder == 5 and ref.key == "010100"
            for ref in result.data_refs
        )

    def test_retract_validates_key(self):
        grid = build_grid(32, maxl=3, seed=94)
        with pytest.raises(Exception):
            UpdateEngine(grid).retract(0, "xx", holder=1, version=1)
