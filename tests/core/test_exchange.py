"""Tests for the Fig. 3 exchange (construction) algorithm."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.storage import DataRef
from repro.sim.churn import FixedOnlineSet
from tests.conftest import assert_routing_consistent, build_grid


def two_peer_grid(**config_kwargs) -> tuple[PGrid, ExchangeEngine]:
    grid = PGrid(PGridConfig(**config_kwargs), rng=random.Random(0))
    grid.add_peers(2)
    return grid, ExchangeEngine(grid)


class TestCase1Split:
    def test_bootstrap_split(self):
        grid, engine = two_peer_grid(maxl=4)
        engine.meet(0, 1)
        a, b = grid.peer(0), grid.peer(1)
        assert {a.path, b.path} == {"0", "1"}
        assert a.routing.refs(1) == [b.address]
        assert b.routing.refs(1) == [a.address]
        assert engine.stats.case1_splits == 1

    def test_split_below_maxl_only(self):
        grid, engine = two_peer_grid(maxl=1)
        engine.meet(0, 1)
        assert {grid.peer(0).path, grid.peer(1).path} == {"0", "1"}
        # Second meeting: both at maxl with different paths -> no deepening.
        engine.meet(0, 1)
        assert {grid.peer(0).path, grid.peer(1).path} == {"0", "1"}

    def test_deeper_split_extends_common_prefix(self):
        grid, engine = two_peer_grid(maxl=4)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("01")
        engine.meet(0, 1)
        assert {grid.peer(0).path, grid.peer(1).path} == {"010", "011"}
        assert grid.peer(0).routing.refs(3) == [1]
        assert grid.peer(1).routing.refs(3) == [0]

    def test_split_hands_over_data_refs(self):
        grid, engine = two_peer_grid(maxl=2)
        ref0 = DataRef(key="00", holder=5)
        ref1 = DataRef(key="10", holder=6)
        for address in (0, 1):
            grid.peer(address).store.add_ref(ref0)
            grid.peer(address).store.add_ref(ref1)
        engine.meet(0, 1)
        zero_side = grid.peer(0) if grid.peer(0).path == "0" else grid.peer(1)
        one_side = grid.peer(1) if zero_side.address == 0 else grid.peer(0)
        assert {r.key for r in zero_side.store.iter_refs()} == {"00"}
        assert {r.key for r in one_side.store.iter_refs()} == {"10"}


class TestCases2And3:
    def test_shorter_specializes_opposite_to_longer(self):
        grid, engine = two_peer_grid(maxl=4)
        grid.peer(0).set_path("0")        # shorter
        grid.peer(1).set_path("01")       # longer; next bit after lc=1 is '1'
        engine.meet(0, 1)
        assert grid.peer(0).path == "00"  # opposite of '1'
        assert grid.peer(0).routing.refs(2) == [1]
        assert 0 in grid.peer(1).routing.refs(2)
        assert engine.stats.case2_specializations == 1

    def test_case3_symmetric(self):
        grid, engine = two_peer_grid(maxl=4)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("0")
        engine.meet(0, 1)
        assert grid.peer(1).path == "00"
        assert engine.stats.case3_specializations == 1

    def test_specialization_respects_maxl(self):
        grid, engine = two_peer_grid(maxl=2)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("0")
        # lc = 1 < maxl, so specialization happens...
        engine.meet(0, 1)
        assert grid.peer(1).path == "00"
        # ...but a peer already holding maxl bits cannot be specialized into.
        grid2, engine2 = two_peer_grid(maxl=2)
        grid2.peer(0).set_path("01")
        grid2.peer(1).set_path("01")
        engine2.meet(0, 1)  # lc = 2 = maxl: no case fires
        assert grid2.peer(0).path == "01"
        assert grid2.peer(1).path == "01"

    def test_empty_root_meets_deep_peer(self):
        grid, engine = two_peer_grid(maxl=4)
        grid.peer(1).set_path("110")
        engine.meet(0, 1)
        # lc = 0: peer 0 takes the opposite of peer 1's first bit.
        assert grid.peer(0).path == "0"
        assert grid.peer(0).routing.refs(1) == [1]


class TestRefsExchange:
    def test_refs_merged_at_shared_level(self):
        grid = PGrid(PGridConfig(maxl=3, refmax=4), rng=random.Random(0))
        grid.add_peers(4)
        grid.peer(0).set_path("00")
        grid.peer(1).set_path("00")
        grid.peer(2).set_path("10")
        grid.peer(3).set_path("11")
        grid.peer(0).routing.set_refs(1, [2])
        grid.peer(1).routing.set_refs(1, [3])
        engine = ExchangeEngine(grid)
        engine.meet(0, 1)
        # shared level lc=2 -> refs exchanged at level 2; level 1 untouched
        # by default... but the union at level 2 is empty here; check level 1
        # is NOT merged under the paper's rule.
        assert grid.peer(0).routing.refs(1) == [2]
        assert grid.peer(1).routing.refs(1) == [3]

    def test_refs_exchange_all_levels_option(self):
        grid = PGrid(
            PGridConfig(maxl=3, refmax=4, exchange_refs_all_levels=True),
            rng=random.Random(0),
        )
        grid.add_peers(4)
        grid.peer(0).set_path("00")
        grid.peer(1).set_path("00")
        grid.peer(2).set_path("10")
        grid.peer(3).set_path("11")
        grid.peer(0).routing.set_refs(1, [2])
        grid.peer(1).routing.set_refs(1, [3])
        ExchangeEngine(grid).meet(0, 1)
        assert set(grid.peer(0).routing.refs(1)) == {2, 3}
        assert set(grid.peer(1).routing.refs(1)) == {2, 3}

    def test_refs_capacity_respected_after_merge(self):
        grid = PGrid(PGridConfig(maxl=3, refmax=1), rng=random.Random(0))
        grid.add_peers(4)
        grid.peer(0).set_path("0")
        grid.peer(1).set_path("0")
        grid.peer(2).set_path("1")
        grid.peer(3).set_path("1")
        grid.peer(0).routing.set_refs(1, [2])
        grid.peer(1).routing.set_refs(1, [3])
        ExchangeEngine(grid).meet(0, 1)
        assert len(grid.peer(0).routing.refs(1)) == 1
        assert len(grid.peer(1).routing.refs(1)) == 1


class TestCase4Recursion:
    def _diverged_grid(self, recmax=2, fanout=None, refmax=4):
        grid = PGrid(
            PGridConfig(maxl=3, refmax=refmax, recmax=recmax,
                        recursion_fanout=fanout),
            rng=random.Random(0),
        )
        grid.add_peers(4)
        grid.peer(0).set_path("00")
        grid.peer(1).set_path("01")
        grid.peer(2).set_path("01")
        grid.peer(3).set_path("00")
        grid.peer(0).routing.set_refs(2, [1])
        grid.peer(1).routing.set_refs(2, [3])
        return grid

    def test_no_recursion_at_recmax_zero(self):
        grid = self._diverged_grid(recmax=0)
        engine = ExchangeEngine(grid)
        calls = engine.meet(0, 1)
        assert calls == 1
        assert engine.stats.case4_recursions == 0

    def test_recursion_forwards_to_references(self):
        grid = self._diverged_grid(recmax=2)
        engine = ExchangeEngine(grid)
        calls = engine.meet(0, 1)
        # 0 and 1 diverge at level 2 (lc=1): 1 is forwarded to 0's refs at
        # level 2 ({1}\{1} = empty) — wait, 0's refs at level 2 is [1] which
        # is the partner and excluded; 1's refs at level 2 is [3], so 0
        # meets 3 recursively: total calls >= 2.
        assert calls >= 2
        assert engine.stats.case4_recursions >= 1

    def test_recursion_skips_offline_references(self):
        grid = self._diverged_grid(recmax=2)
        grid.online_oracle = FixedOnlineSet({0, 1})  # 3 offline
        engine = ExchangeEngine(grid)
        calls = engine.meet(0, 1)
        assert calls == 1  # recursion target offline -> no recursive call

    def test_fanout_bound_limits_recursive_calls(self):
        # Give peer 1 three refs at the divergence level; fanout=1 must
        # recurse into exactly one of them.
        grid = self._diverged_grid(recmax=1, fanout=1)
        grid.peer(1).routing.set_refs(2, [3])
        grid.add_peer(4).set_path("00")
        grid.add_peer(5).set_path("00")
        grid.peer(1).routing.merge_refs(2, [4, 5], random.Random(1))
        engine = ExchangeEngine(grid)
        calls = engine.meet(0, 1)
        assert calls == 2  # 1 top-level + exactly 1 recursive

    def test_mutual_refs_in_case4_option(self):
        grid = self._diverged_grid(recmax=1)
        config = grid.config.with_overrides(mutual_refs_in_case4=True)
        engine = ExchangeEngine(grid, config=config)
        engine.meet(0, 1)
        assert 1 in grid.peer(0).routing.refs(2)
        assert 0 in grid.peer(1).routing.refs(2)

    def test_paper_default_no_mutual_refs(self):
        grid = self._diverged_grid(recmax=0)
        ExchangeEngine(grid).meet(0, 1)
        assert grid.peer(1).routing.refs(2) == [3]


class TestReplicasAndBuddies:
    def test_identical_full_paths_become_buddies(self):
        grid, engine = two_peer_grid(maxl=2)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("01")
        engine.meet(0, 1)
        assert grid.peer(0).buddies == {1}
        assert grid.peer(1).buddies == {0}
        assert engine.stats.buddy_links == 1

    def test_buddy_lists_gossip_transitively(self):
        grid = PGrid(PGridConfig(maxl=2), rng=random.Random(0))
        grid.add_peers(3)
        for address in range(3):
            grid.peer(address).set_path("01")
        engine = ExchangeEngine(grid)
        engine.meet(0, 1)
        engine.meet(1, 2)
        # 2 learns about 0 through 1's buddy list.
        assert 0 in grid.peer(2).buddies

    def test_replica_meeting_anti_entropies_index(self):
        grid, engine = two_peer_grid(maxl=2)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("01")
        grid.peer(0).store.add_ref(DataRef(key="011", holder=7, version=3))
        engine.meet(0, 1)
        assert grid.peer(1).store.version_of("011", 7) == 3

    def test_no_buddies_below_maxl(self):
        grid, engine = two_peer_grid(maxl=4)
        grid.peer(0).set_path("01")
        grid.peer(1).set_path("01")
        engine.meet(0, 1)  # case 1 fires instead (split deeper)
        assert grid.peer(0).buddies == set()


class TestStatsAndCounting:
    def test_meet_rejects_self_meeting(self):
        grid, engine = two_peer_grid()
        with pytest.raises(ValueError):
            engine.meet(0, 0)

    def test_exchange_call_counting_matches_meetings_without_recursion(self):
        grid = build_grid(32, maxl=3, refmax=1, recmax=0, seed=2)
        # recmax=0: every meeting is exactly one exchange call.
        # (build_grid used its own engine; verify on a fresh engine here.)
        engine = ExchangeEngine(grid)
        engine.meet(0, 1)
        engine.meet(2, 3)
        assert engine.stats.calls == engine.stats.meetings == 2

    def test_stats_snapshot_keys(self):
        grid, engine = two_peer_grid()
        engine.meet(0, 1)
        snapshot = engine.stats.snapshot()
        assert snapshot["calls"] == 1
        assert snapshot["case1_splits"] == 1
        assert set(snapshot) >= {
            "calls",
            "meetings",
            "case2_specializations",
            "buddy_links",
        }


class TestGlobalInvariants:
    @pytest.mark.parametrize("refmax,recmax,fanout", [
        (1, 0, None),
        (1, 2, None),
        (2, 2, 2),
        (4, 3, 2),
    ])
    def test_construction_preserves_routing_invariant(self, refmax, recmax, fanout):
        grid = build_grid(
            48, maxl=4, refmax=refmax, recmax=recmax,
            recursion_fanout=fanout, seed=refmax * 10 + recmax,
        )
        assert_routing_consistent(grid)

    def test_construction_converges_small(self):
        grid = build_grid(32, maxl=3, refmax=1, recmax=2, seed=1)
        assert grid.average_path_length() >= 0.99 * 3

    def test_paths_never_exceed_maxl(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=6)
        assert all(peer.depth <= 4 for peer in grid.peers())

    def test_both_subtrees_populated(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=8)
        first_bits = {peer.path[0] for peer in grid.peers() if peer.path}
        assert first_bits == {"0", "1"}
