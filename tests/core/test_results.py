"""The shared result protocol: every engine outcome satisfies it."""

from __future__ import annotations

from repro.core import ContactAccounting, SearchOutcome
from repro.core.search import SearchEngine
from repro.core.updates import ReadEngine, UpdateEngine
from repro.core.storage import DataItem
from tests.conftest import build_grid


class TestProtocolConformance:
    def _outcomes(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=7)
        search = SearchEngine(grid)
        updates = UpdateEngine(grid, search=search)
        reads = ReadEngine(grid, search=search)
        dfs = search.query_from(0, "0101")
        bfs = search.query_breadth(0, "0101", recbreadth=2)
        rng_result = search.query_range(0, "0000", "0111")
        update = updates.publish(
            0, DataItem(key="0110", value="v"), holder=1, version=1
        )
        read = reads.read_single(3, "0110", holder=1, version=1)
        return dfs, bfs, rng_result, update, read

    def test_every_result_satisfies_search_outcome(self):
        for outcome in self._outcomes():
            assert isinstance(outcome, SearchOutcome)
            assert isinstance(outcome, ContactAccounting)
            assert isinstance(outcome.found, bool)
            assert outcome.messages >= 0
            assert outcome.failed_attempts >= 0

    def test_total_contacts_is_messages_plus_failures(self):
        for outcome in self._outcomes():
            assert (
                outcome.total_contacts
                == outcome.messages + outcome.failed_attempts
            )

    def test_cost_dict_shape(self):
        for outcome in self._outcomes():
            cost = outcome.cost_dict()
            assert set(cost) == {
                "found",
                "messages",
                "failed_attempts",
                "total_contacts",
            }
            assert cost["found"] == outcome.found
            assert cost["total_contacts"] == outcome.total_contacts

    def test_update_and_read_found_aliases(self):
        *_, update, read = self._outcomes()
        assert update.found == bool(update.reached)
        assert read.found == read.success
