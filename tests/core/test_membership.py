"""Tests for dynamic membership: join, leave, fail, repair."""

from __future__ import annotations

import pytest

from repro.core.membership import MembershipEngine
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.errors import UnknownPeerError
from repro.sim.churn import FixedOnlineSet
from tests.conftest import assert_routing_consistent, build_grid


@pytest.fixture
def grid():
    return build_grid(128, maxl=5, refmax=3, seed=71)


class TestJoin:
    def test_newcomer_acquires_a_path(self, grid):
        membership = MembershipEngine(grid)
        before = len(grid)
        report = membership.join(bootstrap=0)
        assert len(grid) == before + 1
        assert grid.has_peer(report.address)
        assert report.final_depth >= 1
        assert report.exchanges >= 1

    def test_newcomer_usually_reaches_full_depth(self, grid):
        membership = MembershipEngine(grid)
        depths = [membership.join(bootstrap=i).final_depth for i in range(10)]
        assert max(depths) == grid.config.maxl
        assert sum(depths) / len(depths) >= grid.config.maxl - 1

    def test_join_preserves_routing_invariant(self, grid):
        membership = MembershipEngine(grid)
        for i in range(10):
            membership.join(bootstrap=i * 7 % 128)
        assert_routing_consistent(grid)

    def test_newcomer_is_searchable_and_can_search(self, grid):
        membership = MembershipEngine(grid)
        report = membership.join(bootstrap=3)
        engine = SearchEngine(grid)
        # the newcomer can resolve queries...
        assert engine.query_from(report.address, "10101").found
        # ...and other peers can reach the newcomer's region
        newcomer = grid.peer(report.address)
        if newcomer.path:
            result = engine.query_from(0, newcomer.path)
            assert result.found

    def test_join_respects_meeting_budget(self, grid):
        membership = MembershipEngine(grid)
        report = membership.join(bootstrap=0, max_meetings=1)
        assert report.meetings <= 1

    def test_join_validation(self, grid):
        membership = MembershipEngine(grid)
        with pytest.raises(ValueError):
            membership.join(bootstrap=0, max_meetings=0)
        with pytest.raises(ValueError):
            membership.join(bootstrap=0, target_depth=-1)
        with pytest.raises(UnknownPeerError):
            membership.join(bootstrap=9999)

    def test_join_target_depth(self, grid):
        membership = MembershipEngine(grid)
        report = membership.join(bootstrap=0, target_depth=2)
        assert report.final_depth >= 2 or report.meetings == 64


class TestLeave:
    def test_leave_removes_peer(self, grid):
        membership = MembershipEngine(grid)
        membership.leave(5)
        assert not grid.has_peer(5)

    def test_graceful_leave_hands_over_index(self, grid):
        membership = MembershipEngine(grid)
        peer = grid.peer(10)
        key = peer.path + "0" * (5 - peer.depth) if peer.depth < 5 else peer.path
        ref = DataRef(key=key, holder=99, version=2)
        peer.store.add_ref(ref)
        report = membership.leave(10)
        if report.handover_target is not None:
            target = grid.peer(report.handover_target)
            assert target.store.version_of(key, 99) == 2
            assert report.entries_handed_over >= 1

    def test_leave_prefers_buddies(self, grid):
        membership = MembershipEngine(grid)
        peer = grid.peer(20)
        # fabricate a buddy relationship
        twin = next(
            p for p in grid.peers()
            if p.path == peer.path and p.address != peer.address
        ) if any(
            p.path == peer.path and p.address != peer.address
            for p in grid.peers()
        ) else None
        if twin is None:
            pytest.skip("no exact replica in this seed")
        peer.add_buddy(twin.address)
        peer.store.add_ref(DataRef(key=peer.path, holder=1, version=1))
        report = membership.leave(20)
        assert report.handover_target == twin.address

    def test_fail_drops_state(self, grid):
        membership = MembershipEngine(grid)
        peer = membership.fail(7)
        assert peer.address == 7
        assert not grid.has_peer(7)
        with pytest.raises(UnknownPeerError):
            grid.peer(7)

    def test_search_survives_failures(self, grid):
        membership = MembershipEngine(grid)
        for victim in (3, 30, 60, 90):
            membership.fail(victim)
        engine = SearchEngine(grid)
        hits = sum(
            engine.query_from(start, "01010").found
            for start in grid.addresses()[:40]
        )
        assert hits >= 30  # refmax=3 absorbs a few failures


class TestRepair:
    def test_repair_drops_dangling_refs(self, grid):
        membership = MembershipEngine(grid)
        victim = 40
        holders = [
            peer.address
            for peer in grid.peers()
            if any(
                victim in refs for _lvl, refs in peer.routing.iter_levels()
            )
        ]
        membership.fail(victim)
        assert holders, "victim was referenced by someone"
        report = membership.repair(holders[0])
        assert report.dead_refs_dropped >= 1
        for _lvl, refs in grid.peer(holders[0]).routing.iter_levels():
            assert victim not in refs

    def test_repair_refills_via_search(self, grid):
        membership = MembershipEngine(grid)
        peer = grid.peer(50)
        # artificially deplete level 1 (keep other levels as delegates)
        for ref in peer.routing.refs(1):
            peer.routing.remove_ref(1, ref)
        report = membership.repair(50)
        assert report.refs_added >= 1
        refs = peer.routing.refs(1)
        assert refs
        expected_prefix = ("1" if peer.path[0] == "0" else "0")
        for ref in refs:
            assert grid.peer(ref).path.startswith(expected_prefix)

    def test_repair_preserves_invariant(self, grid):
        membership = MembershipEngine(grid)
        for victim in (8, 16, 24, 32):
            membership.fail(victim)
        membership.repair_all()
        assert_routing_consistent(grid)

    def test_repair_without_refill(self, grid):
        membership = MembershipEngine(grid)
        membership.fail(60)
        reports = membership.repair_all(refill=False)
        assert all(report.refs_added == 0 for report in reports)

    def test_repair_counts_messages(self, grid):
        membership = MembershipEngine(grid)
        peer = grid.peer(70)
        for ref in peer.routing.refs(1):
            peer.routing.remove_ref(1, ref)
        report = membership.repair(70)
        assert report.messages >= 1

    def test_repair_respects_churn(self, grid):
        membership = MembershipEngine(grid)
        peer = grid.peer(80)
        for level in range(1, peer.depth + 1):
            for ref in peer.routing.refs(level):
                peer.routing.remove_ref(level, ref)
        grid.online_oracle = FixedOnlineSet({80})  # everyone else offline
        report = membership.repair(80)
        assert report.refs_added == 0
        assert report.levels_left_empty


class TestChurnCycle:
    def test_replace_and_repair_recovers_search(self, grid):
        membership = MembershipEngine(grid)
        rng_victims = [2, 12, 22, 32, 42, 52, 62, 72, 82, 92]
        for victim in rng_victims:
            membership.fail(victim)
        for bootstrap in (0, 1, 3, 4, 5, 6, 7, 8, 9, 10):
            membership.join(bootstrap)
        membership.repair_all()
        engine = SearchEngine(grid)
        hits = sum(
            engine.query_from(start, "11011").found
            for start in grid.addresses()[:50]
        )
        assert hits >= 48
        assert len(grid) == 128
