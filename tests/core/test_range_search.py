"""Tests for range queries over the order-preserving key space."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import keys as keyspace
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from tests.conftest import build_grid


class TestRangeCover:
    def test_doc_examples(self):
        assert keyspace.range_cover("001", "110") == ["001", "01", "10", "110"]
        assert keyspace.range_cover("000", "111") == [""]

    def test_single_leaf(self):
        assert keyspace.range_cover("010", "010") == ["010"]

    def test_adjacent_siblings_merge(self):
        assert keyspace.range_cover("010", "011") == ["01"]

    def test_validation(self):
        with pytest.raises(ValueError):
            keyspace.range_cover("01", "001")  # unequal lengths
        with pytest.raises(ValueError):
            keyspace.range_cover("10", "01")  # empty range
        from repro.errors import InvalidKeyError

        with pytest.raises(InvalidKeyError):
            keyspace.range_cover("0x", "11")

    @given(st.integers(1, 8), st.data())
    def test_cover_tiles_exactly_the_range(self, length, data):
        low_value = data.draw(st.integers(0, 2**length - 1))
        high_value = data.draw(st.integers(low_value, 2**length - 1))
        low = format(low_value, f"0{length}b")
        high = format(high_value, f"0{length}b")
        cover = keyspace.range_cover(low, high)
        # every leaf in [low, high] is covered by exactly one prefix,
        # leaves outside by none.
        for value in range(2**length):
            leaf = format(value, f"0{length}b")
            covering = [p for p in cover if leaf.startswith(p)]
            if low <= leaf <= high:
                assert len(covering) == 1, (leaf, cover)
            else:
                assert not covering, (leaf, cover)

    @given(st.integers(1, 10), st.data())
    def test_cover_is_antichain_and_ordered(self, length, data):
        low_value = data.draw(st.integers(0, 2**length - 1))
        high_value = data.draw(st.integers(low_value, 2**length - 1))
        cover = keyspace.range_cover(
            format(low_value, f"0{length}b"), format(high_value, f"0{length}b")
        )
        for i, a in enumerate(cover):
            for b in cover[i + 1 :]:
                assert not keyspace.in_prefix_relation(a, b)
        values = [keyspace.key_value(p) for p in cover]
        assert values == sorted(values)

    @given(st.integers(1, 8), st.data())
    def test_cover_size_bound(self, length, data):
        """The canonical cover has at most 2*length prefixes."""
        low_value = data.draw(st.integers(0, 2**length - 1))
        high_value = data.draw(st.integers(low_value, 2**length - 1))
        cover = keyspace.range_cover(
            format(low_value, f"0{length}b"), format(high_value, f"0{length}b")
        )
        assert len(cover) <= 2 * length


@pytest.fixture(scope="module")
def populated_grid():
    grid = build_grid(256, maxl=5, refmax=3, seed=81)
    rng = random.Random(4)
    items = []
    for index in range(120):
        key = keyspace.random_key(7, rng)
        items.append((DataItem(key=key, value=f"item-{index}"), index % 256))
    grid.seed_index(items)
    return grid, [item.key for item, _holder in items]


class TestQueryRange:
    def _brute_force(self, keys, low, high):
        width = len(low)
        return {key for key in keys if low <= key[:width] <= high}

    def test_matches_brute_force(self, populated_grid):
        grid, keys = populated_grid
        engine = SearchEngine(grid)
        result = engine.query_range(0, "0100000", "0111111")
        found_keys = {ref.key for ref in result.data_refs}
        assert found_keys == self._brute_force(keys, "0100000", "0111111")

    def test_full_range_returns_everything_reachable(self, populated_grid):
        grid, keys = populated_grid
        engine = SearchEngine(grid)
        result = engine.query_range(3, "0000000", "1111111", recbreadth=4)
        found_keys = {ref.key for ref in result.data_refs}
        # full range cover is [""] -> breadth search from one peer; with
        # everyone online and recbreadth=4 it must recover most keys, and
        # never invent any.
        assert found_keys <= set(keys)
        assert len(found_keys) > 0.5 * len(set(keys))

    def test_narrow_range(self, populated_grid):
        grid, keys = populated_grid
        engine = SearchEngine(grid)
        target = sorted(keys)[len(keys) // 2]
        result = engine.query_range(7, target, target)
        assert target in {ref.key for ref in result.data_refs}
        assert all(ref.key == target for ref in result.data_refs)

    def test_empty_region(self, populated_grid):
        grid, keys = populated_grid
        engine = SearchEngine(grid)
        # find an uninhabited leaf range if one exists
        present = {key[:5] for key in keys}
        missing = next(
            (k for k in keyspace.all_keys(5) if k not in present), None
        )
        if missing is None:
            pytest.skip("all 5-bit regions inhabited in this seed")
        result = engine.query_range(0, missing + "00", missing + "11")
        assert result.data_refs == []
        assert result.found  # responsible peers exist even without data

    def test_messages_accumulate_over_cover(self, populated_grid):
        grid, _keys = populated_grid
        engine = SearchEngine(grid)
        result = engine.query_range(0, "0010000", "1101111")
        assert result.cover == keyspace.range_cover("0010000", "1101111")
        assert result.messages >= len(result.cover) - 1

    def test_responders_deduplicated(self, populated_grid):
        grid, _keys = populated_grid
        engine = SearchEngine(grid)
        result = engine.query_range(9, "0000000", "1111111", recbreadth=3)
        assert len(result.responders) == len(set(result.responders))

    def test_validation_propagates(self, populated_grid):
        grid, _keys = populated_grid
        engine = SearchEngine(grid)
        with pytest.raises(ValueError):
            engine.query_range(0, "10", "01")


class TestKeyInRange:
    def test_equal_length(self):
        assert SearchEngine._key_in_range("0101", "0100", "0110")
        assert not SearchEngine._key_in_range("0111", "0100", "0110")

    def test_longer_key_truncates(self):
        assert SearchEngine._key_in_range("010111", "0100", "0110")
        assert not SearchEngine._key_in_range("011100", "0100", "0110")

    def test_shorter_key_subtree_intersection(self):
        # "01" covers 0100..0111, which intersects [0100, 0110]
        assert SearchEngine._key_in_range("01", "0100", "0110")
        # "00" covers 0000..0011: disjoint
        assert not SearchEngine._key_in_range("00", "0100", "0110")
