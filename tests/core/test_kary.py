"""Tests for the k-ary P-Grid (§6 extended-alphabet extension)."""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidKeyError, UnknownPeerError
from repro.kary import (
    KaryExchangeEngine,
    KaryGrid,
    KaryItem,
    KaryRoutingTable,
    KarySearchEngine,
    KeySpace,
    build_kary_grid,
)


class TestKeySpace:
    def test_validation(self):
        with pytest.raises(ValueError):
            KeySpace("a")
        with pytest.raises(ValueError):
            KeySpace("aab")

    def test_arity(self):
        assert KeySpace("abc").arity == 3
        assert KeySpace().arity == 27

    def test_is_valid_and_validate(self):
        space = KeySpace("abc")
        assert space.is_valid("abcba")
        assert space.is_valid("")
        assert not space.is_valid("abd")
        with pytest.raises(InvalidKeyError):
            space.validate("xyz")

    def test_siblings(self):
        assert list(KeySpace("abc").siblings("b")) == ["a", "c"]
        with pytest.raises(InvalidKeyError):
            list(KeySpace("abc").siblings("z"))

    def test_random_symbol_excluding(self):
        space = KeySpace("ab")
        rng = random.Random(1)
        for _ in range(20):
            assert space.random_symbol(rng, excluding="a") == "b"

    def test_random_key(self):
        space = KeySpace("abc")
        key = space.random_key(5, random.Random(2))
        assert len(key) == 5
        assert space.is_valid(key)
        with pytest.raises(ValueError):
            space.random_key(-1, random.Random(0))

    def test_common_prefix_and_relation(self):
        assert KeySpace.common_prefix("abcx", "abcy") == "abc"
        assert KeySpace.in_prefix_relation("ab", "abc")
        assert not KeySpace.in_prefix_relation("ab", "ba")


class TestKaryRoutingTable:
    def test_capacity(self):
        table = KaryRoutingTable(2)
        assert table.add_ref(1, "a", 10)
        assert table.add_ref(1, "a", 11)
        assert not table.add_ref(1, "a", 12)
        assert not table.add_ref(1, "a", 10)  # duplicate
        assert table.refs(1, "a") == [10, 11]
        assert table.refs(1, "b") == []

    def test_levels_one_based(self):
        table = KaryRoutingTable(1)
        with pytest.raises(IndexError):
            table.refs(0, "a")
        with pytest.raises(IndexError):
            table.add_ref(0, "a", 1)

    def test_merge_caps_at_refmax(self):
        table = KaryRoutingTable(2)
        table.merge_refs(1, "a", [1, 2, 3, 4], random.Random(0))
        refs = table.refs(1, "a")
        assert len(refs) == 2
        assert set(refs) <= {1, 2, 3, 4}

    def test_remove_and_totals(self):
        table = KaryRoutingTable(2)
        table.add_ref(1, "a", 1)
        table.add_ref(2, "b", 2)
        assert table.total_refs() == 2
        assert table.remove_ref(1, "a", 1)
        assert not table.remove_ref(1, "a", 1)
        assert table.total_refs() == 1

    def test_iter_all_sorted(self):
        table = KaryRoutingTable(2)
        table.add_ref(2, "b", 5)
        table.add_ref(1, "c", 6)
        assert [(lvl, sym) for lvl, sym, _ in table.iter_all()] == [
            (1, "c"),
            (2, "b"),
        ]

    def test_refmax_validated(self):
        with pytest.raises(ValueError):
            KaryRoutingTable(0)


class TestKaryGrid:
    def test_parameter_validation(self):
        space = KeySpace("abc")
        for kwargs in (
            {"maxl": 0},
            {"refmax": 0},
            {"recmax": -1},
            {"recursion_fanout": 0},
        ):
            with pytest.raises(ValueError):
                KaryGrid(space, **kwargs)

    def test_membership(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(3)
        assert len(grid) == 3
        assert grid.addresses() == [0, 1, 2]
        assert grid.has_peer(0)
        with pytest.raises(UnknownPeerError):
            grid.peer(9)
        with pytest.raises(ValueError):
            grid.add_peers(-1)

    def test_replicas_for_key(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(3)
        grid.peer(0).set_path("ab")
        grid.peer(1).set_path("a")
        grid.peer(2).set_path("b")
        assert grid.replicas_for_key("ab") == [0, 1]
        assert grid.replicas_for_key("abc") == [0, 1]
        assert grid.replicas_for_key("c") == []

    def test_seed_index(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        grid.peer(0).set_path("a")
        grid.peer(1).set_path("b")
        installed = grid.seed_index([(KaryItem(key="ab", value="w"), 1)])
        assert installed == 1
        assert grid.peer(0).store.version_of("ab", 1) == 0
        assert grid.peer(1).store.get_item("ab").value == "w"

    def test_audit_detects_wrong_symbol(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        grid.peer(0).set_path("a")
        grid.peer(1).set_path("b")
        # refs under own symbol are invalid
        grid.peer(0).routing.add_ref(1, "a", 1)
        assert any("own symbol" in v for v in grid.audit_routing())

    def test_audit_detects_wrong_target(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        grid.peer(0).set_path("a")
        grid.peer(1).set_path("c")
        grid.peer(0).routing.add_ref(1, "b", 1)  # peer 1's path is "c"
        assert any("expected prefix" in v for v in grid.audit_routing())


class TestConstructionAndSearch:
    @pytest.mark.parametrize("alphabet", ["01", "abc", "abcde"])
    def test_construction_converges_and_audits_clean(self, alphabet):
        grid = KaryGrid(
            KeySpace(alphabet), maxl=3, refmax=2, recmax=1,
            rng=random.Random(11),
        )
        grid.add_peers(60 * len(alphabet))
        report = build_kary_grid(grid)
        assert report.converged
        assert grid.audit_routing() == []
        assert all(p.depth <= 3 for p in grid.peers())

    def test_binary_alphabet_searches_like_core(self):
        grid = KaryGrid(
            KeySpace("01"), maxl=4, refmax=2, recmax=1, rng=random.Random(12)
        )
        grid.add_peers(128)
        build_kary_grid(grid)
        engine = KarySearchEngine(grid)
        rng = random.Random(13)
        hits = 0
        for _ in range(100):
            key = grid.space.random_key(4, rng)
            result = engine.query_from(rng.choice(grid.addresses()), key)
            hits += int(result.found)
            if result.found:
                assert grid.peer(result.responder).responsible_for(key)
                assert result.messages <= len(key)
        assert hits >= 98

    def test_wider_alphabet_resolves_in_fewer_hops(self):
        # depth-2 9-ary trie covers the same key space as a deeper binary
        # trie; lookups need at most 2 forwards.
        grid = KaryGrid(
            KeySpace("abcdefghi"), maxl=2, refmax=3, recmax=1,
            rng=random.Random(14),
        )
        grid.add_peers(700)
        build_kary_grid(grid, threshold_fraction=0.9)
        engine = KaryExchangeEngine(grid)
        addresses = grid.addresses()
        for _ in range(5 * len(grid)):  # populate sibling sets
            a, b = grid.rng.sample(addresses, 2)
            engine.meet(a, b)
        search = KarySearchEngine(grid)
        rng = random.Random(15)
        messages = []
        for _ in range(100):
            result = search.query_from(
                rng.choice(addresses), grid.space.random_key(2, rng)
            )
            if result.found:
                messages.append(result.messages)
        assert messages
        assert max(messages) <= 2

    def test_meet_rejects_self(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        with pytest.raises(ValueError):
            KaryExchangeEngine(grid).meet(0, 0)

    def test_search_validates_key(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        with pytest.raises(InvalidKeyError):
            KarySearchEngine(grid).query_from(0, "xyz")

    def test_build_validation(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peer()
        with pytest.raises(ValueError):
            build_kary_grid(grid)
        grid.add_peer()
        with pytest.raises(ValueError):
            build_kary_grid(grid, threshold_fraction=0.0)

    def test_case4_mutual_insertion(self):
        grid = KaryGrid(KeySpace("abc"), maxl=2, refmax=2, recmax=0,
                        rng=random.Random(16))
        grid.add_peers(2)
        grid.peer(0).set_path("ab")
        grid.peer(1).set_path("ba")
        KaryExchangeEngine(grid).meet(0, 1)
        assert 1 in grid.peer(0).routing.refs(1, "b")
        assert 0 in grid.peer(1).routing.refs(1, "a")

    def test_index_handover_on_specialization(self):
        grid = KaryGrid(KeySpace("abc"), maxl=2, refmax=2, recmax=0,
                        rng=random.Random(17))
        grid.add_peers(2)
        from repro.kary import KaryRef

        grid.peer(0).store.add_ref(KaryRef(key="aa", holder=5))
        grid.peer(0).store.add_ref(KaryRef(key="cc", holder=6))
        grid.peer(1).set_path("c")
        KaryExchangeEngine(grid).meet(0, 1)
        # peer 0 specialized away from "c" (some symbol != 'c'); the "cc"
        # entry moved to peer 1 which covers it.
        assert grid.peer(0).path and grid.peer(0).path != "c"
        assert grid.peer(1).store.version_of("cc", 6) == 0


class TestPrefixEnumeration:
    def test_enumerates_subtree_responders(self):
        grid = KaryGrid(
            KeySpace("abcd"), maxl=3, refmax=3, recmax=1,
            rng=random.Random(21),
        )
        grid.add_peers(400)
        build_kary_grid(grid)
        engine = KaryExchangeEngine(grid)
        addresses = grid.addresses()
        for _ in range(4 * len(grid)):  # populate sibling sets
            a, b = grid.rng.sample(addresses, 2)
            engine.meet(a, b)
        search = KarySearchEngine(grid)
        responders, messages = search.enumerate_prefix(0, "a", fanout=3)
        assert responders
        assert messages >= len(responders) - 1
        for address in responders:
            assert grid.peer(address).responsible_for("a")
        # the fan-out should reach several distinct sub-branches of "a"
        second_symbols = {
            grid.peer(address).path[1]
            for address in responders
            if grid.peer(address).depth >= 2
        }
        assert len(second_symbols) >= 2

    def test_enumeration_finds_indexed_words(self):
        grid = KaryGrid(
            KeySpace(), maxl=2, refmax=3, recmax=1, rng=random.Random(22)
        )
        grid.add_peers(1500)
        build_kary_grid(grid, threshold_fraction=0.9)
        engine = KaryExchangeEngine(grid)
        addresses = grid.addresses()
        for _ in range(8 * len(grid)):
            a, b = grid.rng.sample(addresses, 2)
            engine.meet(a, b)
        words = ["banana", "band", "bark", "cat"]
        grid.seed_index(
            [(KaryItem(key=w[:2], value=w), i) for i, w in enumerate(words)]
        )
        search = KarySearchEngine(grid)
        responders, _messages = search.enumerate_prefix(5, "b", fanout=4)
        found = {
            item
            for address in responders
            for ref in grid.peer(address).store.lookup("b")
            for item in [grid.peer(ref.holder).store.get_item(ref.key).value]
        }
        assert {"banana", "band", "bark"} & found
        assert "cat" not in found

    def test_enumeration_validates(self):
        grid = KaryGrid(KeySpace("abc"), rng=random.Random(0))
        grid.add_peers(2)
        search = KarySearchEngine(grid)
        with pytest.raises(ValueError):
            search.enumerate_prefix(0, "a", fanout=0)
        from repro.errors import InvalidKeyError

        with pytest.raises(InvalidKeyError):
            search.enumerate_prefix(0, "zz")
