"""Tests for the per-level routing table."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.routing import RoutingTable


class TestConstruction:
    def test_refmax_validated(self):
        with pytest.raises(ValueError):
            RoutingTable(0)

    def test_empty_table(self):
        table = RoutingTable(3)
        assert table.depth == 0
        assert table.refs(1) == []
        assert table.total_refs() == 0


class TestAddAndSet:
    def test_add_ref(self):
        table = RoutingTable(2)
        assert table.add_ref(1, 10)
        assert table.refs(1) == [10]

    def test_add_duplicate_is_noop(self):
        table = RoutingTable(2)
        table.add_ref(1, 10)
        assert not table.add_ref(1, 10)
        assert table.refs(1) == [10]

    def test_add_respects_capacity(self):
        table = RoutingTable(2)
        assert table.add_ref(1, 1)
        assert table.add_ref(1, 2)
        assert not table.add_ref(1, 3)
        assert table.refs(1) == [1, 2]

    def test_levels_are_one_based(self):
        table = RoutingTable(1)
        with pytest.raises(IndexError):
            table.refs(0)
        with pytest.raises(IndexError):
            table.add_ref(0, 1)

    def test_sparse_level_materialization(self):
        table = RoutingTable(2)
        table.add_ref(3, 7)
        assert table.depth == 3
        assert table.refs(1) == []
        assert table.refs(2) == []
        assert table.refs(3) == [7]

    def test_set_refs_deduplicates(self):
        table = RoutingTable(3)
        table.set_refs(1, [5, 5, 6])
        assert table.refs(1) == [5, 6]

    def test_set_refs_over_capacity_rejected(self):
        table = RoutingTable(2)
        with pytest.raises(ValueError):
            table.set_refs(1, [1, 2, 3])

    def test_refs_returns_copy(self):
        table = RoutingTable(2)
        table.set_refs(1, [1])
        table.refs(1).append(99)
        assert table.refs(1) == [1]


class TestMerge:
    def test_merge_within_capacity_keeps_all(self):
        table = RoutingTable(4)
        table.set_refs(1, [1, 2])
        table.merge_refs(1, [3], random.Random(0))
        assert set(table.refs(1)) == {1, 2, 3}

    def test_merge_over_capacity_samples_from_union(self):
        table = RoutingTable(2)
        table.set_refs(1, [1, 2])
        table.merge_refs(1, [3, 4], random.Random(0))
        refs = table.refs(1)
        assert len(refs) == 2
        assert set(refs) <= {1, 2, 3, 4}

    def test_merge_deterministic_for_seed(self):
        def build(seed):
            table = RoutingTable(2)
            table.set_refs(1, [1, 2])
            table.merge_refs(1, [3, 4, 5], random.Random(seed))
            return table.refs(1)

        assert build(42) == build(42)

    def test_merge_deduplicates_candidates(self):
        table = RoutingTable(3)
        table.set_refs(1, [1])
        table.merge_refs(1, [1, 2, 2], random.Random(0))
        assert sorted(table.refs(1)) == [1, 2]

    @given(
        st.lists(st.integers(0, 30), max_size=10),
        st.lists(st.integers(0, 30), max_size=10),
        st.integers(1, 5),
        st.integers(0, 1000),
    )
    def test_merge_never_exceeds_capacity(self, current, candidates, refmax, seed):
        table = RoutingTable(refmax)
        table.set_refs(1, list(dict.fromkeys(current))[:refmax])
        table.merge_refs(1, candidates, random.Random(seed))
        refs = table.refs(1)
        assert len(refs) <= refmax
        assert len(set(refs)) == len(refs)
        assert set(refs) <= set(current) | set(candidates)


class TestRemoval:
    def test_remove_ref(self):
        table = RoutingTable(2)
        table.set_refs(1, [1, 2])
        assert table.remove_ref(1, 1)
        assert table.refs(1) == [2]
        assert not table.remove_ref(1, 1)

    def test_remove_from_unknown_level(self):
        table = RoutingTable(2)
        assert not table.remove_ref(5, 1)
        assert not table.remove_ref(0, 1)

    def test_remove_everywhere(self):
        table = RoutingTable(2)
        table.set_refs(1, [7, 8])
        table.set_refs(2, [7])
        table.set_refs(3, [9])
        assert table.remove_everywhere(7) == 2
        assert table.refs(1) == [8]
        assert table.refs(2) == []
        assert table.refs(3) == [9]

    def test_truncate(self):
        table = RoutingTable(2)
        table.set_refs(1, [1])
        table.set_refs(2, [2])
        table.set_refs(3, [3])
        table.truncate(1)
        assert table.depth == 1
        assert table.refs(2) == []

    def test_truncate_negative(self):
        with pytest.raises(ValueError):
            RoutingTable(1).truncate(-1)


class TestSerialization:
    def test_roundtrip(self):
        table = RoutingTable(3)
        table.set_refs(1, [1, 2])
        table.set_refs(3, [5])
        clone = RoutingTable.from_lists(3, table.to_lists())
        assert clone == table

    def test_equality_requires_same_refmax(self):
        a = RoutingTable(2)
        b = RoutingTable(3)
        assert a != b

    def test_iter_levels(self):
        table = RoutingTable(2)
        table.set_refs(1, [4])
        table.set_refs(2, [5, 6])
        assert list(table.iter_levels()) == [(1, [4]), (2, [5, 6])]

    def test_total_refs(self):
        table = RoutingTable(2)
        table.set_refs(1, [4])
        table.set_refs(2, [5, 6])
        assert table.total_refs() == 3

    def test_repr_mentions_levels(self):
        table = RoutingTable(2)
        table.set_refs(1, [4])
        assert "L1" in repr(table)
