"""Tests for query-adaptive shortcut caching."""

from __future__ import annotations

import pytest

from repro.core.membership import MembershipEngine
from repro.core.shortcuts import ShortcutCache, ShortcutSearchEngine
from repro.core.storage import DataItem
from repro.errors import InvalidKeyError
from repro.sim.churn import FixedOnlineSet
from tests.conftest import build_grid


class TestShortcutCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ShortcutCache(0)

    def test_get_put(self):
        cache = ShortcutCache(2)
        assert cache.get("01") is None
        cache.put("01", 5)
        assert cache.get("01") == 5

    def test_lru_eviction(self):
        cache = ShortcutCache(2)
        cache.put("00", 1)
        cache.put("01", 2)
        cache.put("10", 3)  # evicts "00"
        assert cache.get("00") is None
        assert cache.get("01") == 2
        assert cache.get("10") == 3
        assert len(cache) == 2

    def test_get_refreshes_lru_position(self):
        cache = ShortcutCache(2)
        cache.put("00", 1)
        cache.put("01", 2)
        cache.get("00")  # refresh
        cache.put("10", 3)  # must evict "01", not "00"
        assert cache.get("00") == 1
        assert cache.get("01") is None

    def test_invalidate(self):
        cache = ShortcutCache(2)
        cache.put("00", 1)
        cache.invalidate("00")
        assert cache.get("00") is None
        cache.invalidate("00")  # idempotent


class TestShortcutSearchEngine:
    @pytest.fixture
    def grid(self):
        return build_grid(128, maxl=5, refmax=3, seed=101)

    def test_repeat_query_hits_cache(self, grid):
        engine = ShortcutSearchEngine(grid)
        first = engine.query_from(0, "10110")
        assert first.found
        assert engine.stats.misses == 1
        second = engine.query_from(0, "10110")
        assert second.found
        assert engine.stats.hits == 1
        assert second.responder == first.responder
        assert second.messages <= 1  # direct contact

    def test_results_match_plain_search_semantics(self, grid):
        grid.seed_index([(DataItem(key="01101", value="x"), 9)])
        engine = ShortcutSearchEngine(grid)
        first = engine.query_from(3, "01101")
        second = engine.query_from(3, "01101")
        assert {ref.holder for ref in first.data_refs} == {
            ref.holder for ref in second.data_refs
        }

    def test_caches_are_per_initiator(self, grid):
        engine = ShortcutSearchEngine(grid)
        engine.query_from(0, "11011")
        engine.query_from(1, "11011")
        # both were misses: peer 1 does not share peer 0's cache
        assert engine.stats.misses == 2

    def test_offline_responder_falls_back(self, grid):
        engine = ShortcutSearchEngine(grid)
        first = engine.query_from(0, "00110")
        assert first.found
        grid.online_oracle = FixedOnlineSet(
            set(grid.addresses()) - {first.responder}
        )
        second = engine.query_from(0, "00110")
        assert engine.stats.invalidations == 1
        if second.found:
            assert second.responder != first.responder

    def test_departed_responder_falls_back(self, grid):
        engine = ShortcutSearchEngine(grid)
        first = engine.query_from(0, "01010")
        assert first.found and first.responder != 0
        MembershipEngine(grid, search=engine.search).fail(first.responder)
        second = engine.query_from(0, "01010")
        assert engine.stats.invalidations == 1
        assert second.responder != first.responder

    def test_self_shortcut_costs_nothing(self, grid):
        # Find a peer and query for its own path from itself, twice.
        peer = next(p for p in grid.peers() if p.depth == 5)
        engine = ShortcutSearchEngine(grid)
        engine.query_from(peer.address, peer.path)
        result = engine.query_from(peer.address, peer.path)
        assert result.messages == 0

    def test_failed_search_not_cached(self, grid):
        grid.online_oracle = FixedOnlineSet({0})
        engine = ShortcutSearchEngine(grid)
        start_peer = grid.peer(0)
        query = ("1" if start_peer.path.startswith("0") else "0") * 5
        result = engine.query_from(0, query)
        assert not result.found
        assert len(engine.cache_for(0)) == 0

    def test_invalid_key_rejected(self, grid):
        with pytest.raises(InvalidKeyError):
            ShortcutSearchEngine(grid).query_from(0, "01x")

    def test_hit_rate_property(self, grid):
        engine = ShortcutSearchEngine(grid)
        assert engine.stats.hit_rate == 0.0
        engine.query_from(0, "10101")
        engine.query_from(0, "10101")
        assert engine.stats.hit_rate == 0.5
