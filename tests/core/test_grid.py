"""Tests for the PGrid network container."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import AlwaysOnline, PGrid
from repro.core.storage import DataItem
from repro.errors import DuplicatePeerError, UnknownPeerError
from tests.conftest import build_grid


def empty_grid(**config_kwargs) -> PGrid:
    return PGrid(PGridConfig(**config_kwargs), rng=random.Random(0))


class TestMembership:
    def test_add_peer_auto_addresses(self):
        grid = empty_grid()
        peers = grid.add_peers(3)
        assert [peer.address for peer in peers] == [0, 1, 2]
        assert len(grid) == 3

    def test_add_peer_explicit_address(self):
        grid = empty_grid()
        grid.add_peer(10)
        follow_up = grid.add_peer()
        assert follow_up.address == 11

    def test_duplicate_address_rejected(self):
        grid = empty_grid()
        grid.add_peer(1)
        with pytest.raises(DuplicatePeerError):
            grid.add_peer(1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            empty_grid().add_peers(-1)

    def test_peer_resolution(self):
        grid = empty_grid()
        peer = grid.add_peer()
        assert grid.peer(peer.address) is peer
        assert grid.has_peer(peer.address)
        assert peer.address in grid

    def test_unknown_peer(self):
        grid = empty_grid()
        with pytest.raises(UnknownPeerError):
            grid.peer(99)
        assert not grid.has_peer(99)

    def test_peers_iterate_in_address_order(self):
        grid = empty_grid()
        for address in (5, 1, 3):
            grid.add_peer(address)
        assert [peer.address for peer in grid.peers()] == [1, 3, 5]
        assert grid.addresses() == [1, 3, 5]

    def test_refmax_flows_from_config(self):
        grid = empty_grid(refmax=7)
        assert grid.add_peer().routing.refmax == 7


class TestAvailability:
    def test_default_oracle_always_online(self):
        grid = empty_grid()
        peer = grid.add_peer()
        assert grid.is_online(peer.address)

    def test_custom_oracle(self):
        class Nobody:
            def is_online(self, address):  # noqa: ARG002
                return False

        grid = PGrid(PGridConfig(), online_oracle=Nobody())
        peer = grid.add_peer()
        assert not grid.is_online(peer.address)

    def test_always_online_helper(self):
        assert AlwaysOnline().is_online(123)


class TestStatistics:
    def test_average_path_length_empty(self):
        assert empty_grid().average_path_length() == 0.0

    def test_average_path_length(self):
        grid = empty_grid()
        for path in ("", "0", "01", "011"):
            grid.add_peer().set_path(path)
        assert grid.average_path_length() == 1.5

    def test_path_length_histogram(self):
        grid = empty_grid()
        for path in ("0", "1", "01"):
            grid.add_peer().set_path(path)
        assert grid.path_length_histogram() == Counter({1: 2, 2: 1})

    def test_replica_groups(self):
        grid = empty_grid()
        for address, path in enumerate(("00", "00", "01")):
            grid.add_peer(address).set_path(path)
        groups = grid.replica_groups()
        assert groups == {"00": [0, 1], "01": [2]}

    def test_replication_histogram_counts_peers(self):
        grid = empty_grid()
        for path in ("00", "00", "00", "01"):
            grid.add_peer().set_path(path)
        # three peers have factor 3, one peer has factor 1
        assert grid.replication_histogram() == Counter({3: 3, 1: 1})
        assert grid.average_replication() == pytest.approx((3 * 3 + 1) / 4)

    def test_average_replication_empty(self):
        assert empty_grid().average_replication() == 0.0

    def test_replicas_for_key_prefix_semantics(self):
        grid = empty_grid()
        for address, path in enumerate(("00", "01", "0", "10")):
            grid.add_peer(address).set_path(path)
        assert grid.replicas_for_key("00") == [0, 2]
        assert grid.replicas_for_key("0") == [0, 1, 2]
        assert grid.replicas_for_key("11") == []

    def test_total_routing_refs(self):
        grid = empty_grid(refmax=2)
        a = grid.add_peer()
        a.set_path("0")
        b = grid.add_peer()
        b.set_path("1")
        a.routing.set_refs(1, [b.address])
        b.routing.set_refs(1, [a.address])
        assert grid.total_routing_refs() == 2

    def test_max_index_footprint_empty(self):
        assert empty_grid().max_index_footprint() == 0


class TestSeedIndex:
    def test_seed_installs_at_all_replicas(self):
        grid = empty_grid()
        for address, path in enumerate(("00", "00", "01")):
            grid.add_peer(address).set_path(path)
        installed = grid.seed_index([(DataItem(key="001", value="f"), 2)])
        assert installed == 2  # both "00" replicas
        assert grid.peer(0).store.version_of("001", 2) == 0
        assert grid.peer(1).store.version_of("001", 2) == 0
        assert grid.peer(2).store.version_of("001", 2) is None
        assert grid.peer(2).store.get_item("001").value == "f"


class TestAudit:
    def test_clean_grid_audits_clean(self, fig1_grid):
        assert fig1_grid.audit_routing() == []

    def test_constructed_grid_audits_clean(self):
        grid = build_grid(48, maxl=4, refmax=2, seed=3)
        assert grid.audit_routing() == []

    def test_detects_wrong_side_reference(self):
        grid = empty_grid()
        a = grid.add_peer()
        a.set_path("00")
        b = grid.add_peer()
        b.set_path("01")
        # level-1 ref must point to a peer whose first bit is 1; b's is 0.
        a.routing.set_refs(1, [b.address])
        violations = grid.audit_routing()
        assert len(violations) == 1
        assert "level 1" in violations[0]

    def test_detects_dangling_reference(self):
        grid = empty_grid()
        a = grid.add_peer()
        a.set_path("0")
        a.routing.set_refs(1, [42])
        violations = grid.audit_routing()
        assert any("dangling" in v for v in violations)

    def test_detects_refs_beyond_depth(self):
        grid = empty_grid()
        a = grid.add_peer()
        a.set_path("0")
        b = grid.add_peer()
        b.set_path("1")
        a.routing.set_refs(2, [b.address])
        violations = grid.audit_routing()
        assert any("beyond" in v for v in violations)

    def test_repr(self):
        grid = empty_grid()
        grid.add_peers(2)
        assert "N=2" in repr(grid)
