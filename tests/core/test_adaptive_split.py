"""Tests for data-driven splitting (``split_min_items``, §3's hint)."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.storage import DataRef
from repro.errors import InvalidConfigError
from repro.sim.builder import GridBuilder
from tests.conftest import assert_routing_consistent


def seeded_pair(threshold, entries_a=0, entries_b=0, maxl=4):
    grid = PGrid(
        PGridConfig(maxl=maxl, refmax=2, recmax=0, split_min_items=threshold),
        rng=random.Random(0),
    )
    a, b = grid.add_peers(2)
    for index in range(entries_a):
        a.store.add_ref(DataRef(key=format(index, "06b"), holder=a.address))
    for index in range(entries_b):
        b.store.add_ref(DataRef(key=format(index, "06b"), holder=b.address))
    return grid, ExchangeEngine(grid)


class TestConfig:
    def test_threshold_validated(self):
        with pytest.raises(InvalidConfigError):
            PGridConfig(split_min_items=0)

    def test_threshold_roundtrips(self):
        config = PGridConfig(split_min_items=5)
        assert PGridConfig.from_dict(config.to_dict()) == config

    def test_missing_key_defaults_to_none(self):
        # snapshots written before the field existed must still load
        data = PGridConfig().to_dict()
        del data["split_min_items"]
        assert PGridConfig.from_dict(data).split_min_items is None


class TestSplitGate:
    def test_data_rich_peers_split(self):
        grid, engine = seeded_pair(threshold=3, entries_a=5, entries_b=5)
        engine.meet(0, 1)
        assert {grid.peer(0).path, grid.peer(1).path} == {"0", "1"}

    def test_data_poor_peers_do_not_split(self):
        grid, engine = seeded_pair(threshold=3, entries_a=1, entries_b=1)
        engine.meet(0, 1)
        assert grid.peer(0).path == ""
        assert grid.peer(1).path == ""
        # ...but they recognized each other as replicas of the root region.
        assert grid.peer(0).buddies == {1}

    def test_mixed_pair_blocks_case1(self):
        grid, engine = seeded_pair(threshold=3, entries_a=5, entries_b=0)
        engine.meet(0, 1)
        assert grid.peer(0).path == ""
        assert grid.peer(1).path == ""

    def test_case2_gates_on_the_specializing_peer(self):
        grid, engine = seeded_pair(threshold=3, entries_a=0, entries_b=0)
        grid.peer(1).set_path("01")
        # peer 0 (shorter, empty store) must not specialize...
        engine.meet(0, 1)
        assert grid.peer(0).path == ""
        # ...until it holds enough data.
        for index in range(3):
            grid.peer(0).store.add_ref(
                DataRef(key=format(index, "06b"), holder=0)
            )
        engine.meet(0, 1)
        # case 2 extends opposite to peer 1's first bit ('0') -> '1'
        assert grid.peer(0).path == "1"

    def test_threshold_none_is_paper_behavior(self):
        grid, engine = seeded_pair(threshold=None)
        engine.meet(0, 1)
        assert {grid.peer(0).path, grid.peer(1).path} == {"0", "1"}

    def test_depth_stops_where_data_runs_out(self):
        # One peer starts with 8 entries under "0..."; after enough splits
        # the per-region count falls below the threshold and depth freezes.
        grid = PGrid(
            PGridConfig(maxl=10, refmax=2, recmax=2, recursion_fanout=2,
                        split_min_items=4),
            rng=random.Random(3),
        )
        grid.add_peers(64)
        rng = random.Random(4)
        for peer in grid.peers():
            for _ in range(8):
                key = "".join(rng.choice("01") for _ in range(10))
                peer.store.add_ref(DataRef(key=key, holder=peer.address))
        GridBuilder(grid).build(
            threshold_fraction=1.0, max_meetings=64 * 80
        )
        # 64 peers x 8 items = 512 items over the key space; a threshold of
        # 4 supports roughly 512/4 = 128 regions, i.e. depth ~7 at most —
        # and certainly far below the maxl=10 safety bound on average.
        assert grid.average_path_length() < 9
        assert all(peer.depth <= 10 for peer in grid.peers())
        assert_routing_consistent(grid)
