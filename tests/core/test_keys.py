"""Unit and property tests for the binary key space (paper §2)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import keys
from repro.errors import InvalidKeyError

binary_keys = st.text(alphabet="01", max_size=40)
nonempty_keys = st.text(alphabet="01", min_size=1, max_size=40)


class TestValidation:
    def test_empty_key_is_valid(self):
        assert keys.is_valid_key("")

    @pytest.mark.parametrize("key", ["0", "1", "0101", "111000"])
    def test_valid_keys(self, key):
        assert keys.is_valid_key(key)
        assert keys.validate_key(key) == key

    @pytest.mark.parametrize("key", ["2", "01a", "0 1", "０1"])
    def test_invalid_keys(self, key):
        assert not keys.is_valid_key(key)
        with pytest.raises(InvalidKeyError):
            keys.validate_key(key)

    def test_non_string_rejected(self):
        with pytest.raises(InvalidKeyError):
            keys.validate_key(101)  # type: ignore[arg-type]


class TestValue:
    def test_empty_key_value(self):
        assert keys.key_value("") == 0

    def test_paper_definition_examples(self):
        # val(k) = sum 2^-i p_i
        assert keys.key_value("1") == Fraction(1, 2)
        assert keys.key_value("01") == Fraction(1, 4)
        assert keys.key_value("11") == Fraction(3, 4)
        assert keys.key_value("101") == Fraction(5, 8)

    @given(nonempty_keys)
    def test_value_in_unit_interval(self, key):
        value = keys.key_value(key)
        assert 0 <= value < 1

    @given(nonempty_keys)
    def test_value_matches_explicit_sum(self, key):
        expected = sum(
            Fraction(int(bit), 2 ** (i + 1)) for i, bit in enumerate(key)
        )
        assert keys.key_value(key) == expected

    @given(binary_keys, binary_keys)
    def test_order_preservation_same_length(self, a, b):
        # For equal lengths, lexicographic order == numeric order.
        length = min(len(a), len(b))
        a, b = a[:length], b[:length]
        if a < b:
            assert keys.key_value(a) < keys.key_value(b)
        elif a == b:
            assert keys.key_value(a) == keys.key_value(b)


class TestInterval:
    def test_empty_key_spans_unit_interval(self):
        assert keys.key_interval("") == (Fraction(0), Fraction(1))

    def test_interval_width(self):
        low, high = keys.key_interval("010")
        assert high - low == Fraction(1, 8)

    def test_sibling_intervals_tile(self):
        _, mid_left = keys.key_interval("0")
        mid_right, _ = keys.key_interval("1")
        assert mid_left == mid_right == Fraction(1, 2)

    @given(binary_keys, binary_keys)
    def test_interval_contains_iff_prefix_relation(self, key, query):
        """The §2 interval semantics coincide with the prefix relation...

        ...whenever the query is at least as long as the key.  (A shorter
        query's value is the left endpoint of a *wider* interval; the paper
        routes such queries by prefix relation, which is the authoritative
        definition used across the library.)
        """
        if len(query) >= len(key):
            assert keys.interval_contains(key, query) == query.startswith(key)

    @given(nonempty_keys)
    def test_key_contained_in_own_interval(self, key):
        assert keys.interval_contains(key, key)


class TestUncheckedFastPaths:
    """The integer fast paths must be extensionally equal to the exact
    Fraction-based definitions on every valid input."""

    @given(binary_keys)
    def test_key_value_unchecked_matches_checked(self, key):
        assert keys._key_value_unchecked(key) == keys.key_value(key)

    @given(binary_keys, binary_keys)
    def test_interval_contains_unchecked_matches_definition(self, key, query):
        low, high = keys.key_interval(key)
        by_fractions = low <= keys.key_value(query) < high
        assert keys._interval_contains_unchecked(key, query) == by_fractions
        assert keys.interval_contains(key, query) == by_fractions


class TestPrefixAlgebra:
    def test_common_prefix_basic(self):
        assert keys.common_prefix("0110", "0101") == "01"
        assert keys.common_prefix("", "0101") == ""
        assert keys.common_prefix("11", "11") == "11"

    @given(binary_keys, binary_keys)
    def test_common_prefix_is_prefix_of_both(self, a, b):
        c = keys.common_prefix(a, b)
        assert a.startswith(c)
        assert b.startswith(c)

    @given(binary_keys, binary_keys)
    def test_common_prefix_is_maximal(self, a, b):
        c = keys.common_prefix(a, b)
        if len(c) < min(len(a), len(b)):
            assert a[len(c)] != b[len(c)]

    @given(binary_keys, binary_keys)
    def test_common_prefix_symmetric(self, a, b):
        assert keys.common_prefix(a, b) == keys.common_prefix(b, a)

    @given(binary_keys, binary_keys)
    def test_prefix_relation_iff_full_common_prefix(self, a, b):
        related = keys.in_prefix_relation(a, b)
        assert related == (keys.common_prefix_length(a, b) == min(len(a), len(b)))

    def test_is_prefix(self):
        assert keys.is_prefix("01", "0110")
        assert keys.is_prefix("", "0")
        assert not keys.is_prefix("11", "0110")

    def test_prefixes_enumeration(self):
        assert list(keys.prefixes("01")) == ["", "0", "01"]
        assert list(keys.prefixes("")) == [""]


class TestPaperHelpers:
    def test_sub_path_one_based_inclusive(self):
        # sub_path(p1...pn, l, k) = pl...pk
        assert keys.sub_path("abcde", 2, 4) == "bcd"
        assert keys.sub_path("01", 1, 2) == "01"
        assert keys.sub_path("01", 3, 2) == ""

    def test_bit_at_one_based(self):
        assert keys.bit_at("011", 1) == "0"
        assert keys.bit_at("011", 3) == "1"

    def test_bit_at_out_of_range(self):
        with pytest.raises(IndexError):
            keys.bit_at("011", 0)
        with pytest.raises(IndexError):
            keys.bit_at("011", 4)

    def test_complement_bit(self):
        assert keys.complement_bit("0") == "1"
        assert keys.complement_bit("1") == "0"
        with pytest.raises(InvalidKeyError):
            keys.complement_bit("x")

    def test_flip_last_bit(self):
        assert keys.flip_last_bit("010") == "011"
        assert keys.flip_last_bit("1") == "0"
        with pytest.raises(InvalidKeyError):
            keys.flip_last_bit("")


class TestGenerators:
    def test_random_key_length_and_alphabet(self):
        rng = random.Random(3)
        for length in (0, 1, 5, 17):
            key = keys.random_key(length, rng)
            assert len(key) == length
            assert keys.is_valid_key(key)

    def test_random_key_deterministic(self):
        assert keys.random_key(16, random.Random(5)) == keys.random_key(
            16, random.Random(5)
        )

    def test_random_key_negative_length(self):
        with pytest.raises(ValueError):
            keys.random_key(-1, random.Random(0))

    def test_all_keys(self):
        assert list(keys.all_keys(0)) == [""]
        assert list(keys.all_keys(2)) == ["00", "01", "10", "11"]
        assert len(list(keys.all_keys(5))) == 32

    def test_all_keys_sorted_numerically(self):
        ks = list(keys.all_keys(4))
        assert ks == sorted(ks)

    def test_key_from_value_roundtrip(self):
        for key in keys.all_keys(4):
            assert keys.key_from_value(float(keys.key_value(key)), 4) == key

    def test_key_from_value_bounds(self):
        with pytest.raises(ValueError):
            keys.key_from_value(1.0, 3)
        with pytest.raises(ValueError):
            keys.key_from_value(-0.1, 3)

    @given(st.floats(min_value=0.0, max_value=0.999999), st.integers(1, 20))
    def test_key_from_value_contains_value(self, value, length):
        key = keys.key_from_value(value, length)
        low, high = keys.key_interval(key)
        assert float(low) <= value < float(high) + 1e-12


class TestAverageLength:
    def test_average(self):
        assert keys.average_length(["0", "01", "011"]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            keys.average_length([])
