"""Tests for data items, index entries and the per-peer data store."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.storage import DataItem, DataRef, DataStore
from repro.errors import InvalidKeyError

keys_st = st.text(alphabet="01", min_size=1, max_size=12)


class TestDataItem:
    def test_valid(self):
        item = DataItem(key="0101", value={"name": "song.mp3"})
        assert item.key == "0101"

    def test_invalid_key(self):
        with pytest.raises(InvalidKeyError):
            DataItem(key="01x1")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DataItem(key="01").key = "10"  # type: ignore[misc]


class TestDataRef:
    def test_valid(self):
        ref = DataRef(key="0101", holder=3, version=2)
        assert (ref.key, ref.holder, ref.version) == ("0101", 3, 2)

    def test_default_version_zero(self):
        assert DataRef(key="1", holder=0).version == 0

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError):
            DataRef(key="1", holder=0, version=-1)

    def test_invalid_key(self):
        with pytest.raises(InvalidKeyError):
            DataRef(key="ab", holder=0)


class TestItemStorage:
    def test_store_and_get(self):
        store = DataStore()
        store.store_item(DataItem(key="010", value="x"))
        assert store.get_item("010").value == "x"
        assert store.get_item("011") is None
        assert store.item_count == 1

    def test_same_key_overwrites(self):
        store = DataStore()
        store.store_item(DataItem(key="010", value="old"))
        store.store_item(DataItem(key="010", value="new"))
        assert store.get_item("010").value == "new"
        assert store.item_count == 1

    def test_iter_items(self):
        store = DataStore()
        for key in ("0", "1", "01"):
            store.store_item(DataItem(key=key))
        assert {item.key for item in store.iter_items()} == {"0", "1", "01"}


class TestIndex:
    def test_add_and_lookup_exact(self):
        store = DataStore()
        store.add_ref(DataRef(key="0101", holder=7))
        refs = store.refs_for_key("0101")
        assert [ref.holder for ref in refs] == [7]

    def test_multiple_holders_sorted(self):
        store = DataStore()
        for holder in (9, 3, 5):
            store.add_ref(DataRef(key="01", holder=holder))
        assert [ref.holder for ref in store.refs_for_key("01")] == [3, 5, 9]

    def test_version_upgrade(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=0))
        store.add_ref(DataRef(key="01", holder=1, version=2))
        assert store.version_of("01", 1) == 2

    def test_stale_version_ignored(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=5))
        store.add_ref(DataRef(key="01", holder=1, version=3))
        assert store.version_of("01", 1) == 5

    def test_equal_version_idempotent(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1, version=1))
        store.add_ref(DataRef(key="01", holder=1, version=1))
        assert store.ref_count == 1

    def test_version_of_absent(self):
        store = DataStore()
        assert store.version_of("01", 1) is None
        store.add_ref(DataRef(key="01", holder=2))
        assert store.version_of("01", 1) is None

    def test_remove_ref(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=1))
        assert store.remove_ref("01", 1)
        assert not store.remove_ref("01", 1)
        assert store.ref_count == 0
        assert store.indexed_keys() == []

    def test_lookup_prefix_relation_both_directions(self):
        store = DataStore()
        store.add_ref(DataRef(key="0101", holder=1))
        store.add_ref(DataRef(key="0110", holder=2))
        store.add_ref(DataRef(key="1000", holder=3))
        # short query returns entries below it
        assert {ref.holder for ref in store.lookup("01")} == {1, 2}
        # long query returns entries that are prefixes of it
        assert {ref.holder for ref in store.lookup("010111")} == {1}
        # unrelated query returns nothing
        assert store.lookup("00") == []

    def test_lookup_sorted_deterministic(self):
        store = DataStore()
        store.add_ref(DataRef(key="01", holder=5))
        store.add_ref(DataRef(key="01", holder=2))
        store.add_ref(DataRef(key="00", holder=9))
        result = store.lookup("0")
        assert [(ref.key, ref.holder) for ref in result] == [
            ("00", 9),
            ("01", 2),
            ("01", 5),
        ]

    def test_indexed_keys_sorted(self):
        store = DataStore()
        for key in ("11", "00", "01"):
            store.add_ref(DataRef(key=key, holder=0))
        assert store.indexed_keys() == ["00", "01", "11"]

    def test_drop_refs_outside(self):
        store = DataStore()
        store.add_ref(DataRef(key="000", holder=1))
        store.add_ref(DataRef(key="001", holder=2))
        store.add_ref(DataRef(key="01", holder=3))
        store.add_ref(DataRef(key="0", holder=4))  # prefix of the path: kept
        dropped = store.drop_refs_outside("00")
        assert {ref.holder for ref in dropped} == {3}
        assert {ref.holder for ref in store.iter_refs()} == {1, 2, 4}

    def test_drop_refs_outside_returns_sorted(self):
        store = DataStore()
        store.add_ref(DataRef(key="11", holder=5))
        store.add_ref(DataRef(key="10", holder=1))
        dropped = store.drop_refs_outside("0")
        assert [(ref.key, ref.holder) for ref in dropped] == [("10", 1), ("11", 5)]

    @given(st.lists(st.tuples(keys_st, st.integers(0, 20), st.integers(0, 5))))
    def test_version_monotone_under_any_insertion_order(self, entries):
        """Property: the stored version is the max ever inserted per
        (key, holder) — propagation order cannot roll an entry back."""
        store = DataStore()
        expected: dict[tuple[str, int], int] = {}
        for key, holder, version in entries:
            store.add_ref(DataRef(key=key, holder=holder, version=version))
            pair = (key, holder)
            expected[pair] = max(expected.get(pair, -1), version)
        for (key, holder), version in expected.items():
            assert store.version_of(key, holder) == version
