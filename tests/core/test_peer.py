"""Tests for peer state."""

from __future__ import annotations

import pytest

from repro.core.peer import Peer
from repro.core.storage import DataRef
from repro.errors import InvalidKeyError


def make_peer(address: int = 0, refmax: int = 2) -> Peer:
    return Peer(address, refmax)


class TestPath:
    def test_starts_at_root(self):
        peer = make_peer()
        assert peer.path == ""
        assert peer.depth == 0

    def test_extend_path(self):
        peer = make_peer()
        peer.extend_path("0")
        peer.extend_path("1")
        assert peer.path == "01"
        assert peer.depth == 2

    def test_extend_rejects_non_bit(self):
        peer = make_peer()
        with pytest.raises(InvalidKeyError):
            peer.extend_path("2")
        with pytest.raises(InvalidKeyError):
            peer.extend_path("01")  # one bit at a time

    def test_set_path_validates(self):
        peer = make_peer()
        peer.set_path("0101")
        assert peer.path == "0101"
        with pytest.raises(InvalidKeyError):
            peer.set_path("01a")

    def test_prefix_accessor(self):
        peer = make_peer()
        peer.set_path("0110")
        assert peer.prefix(0) == ""
        assert peer.prefix(2) == "01"
        assert peer.prefix(4) == "0110"

    def test_prefix_out_of_range(self):
        peer = make_peer()
        peer.set_path("01")
        with pytest.raises(IndexError):
            peer.prefix(3)
        with pytest.raises(IndexError):
            peer.prefix(-1)


class TestResponsibility:
    def test_root_peer_responsible_for_everything(self):
        peer = make_peer()
        assert peer.responsible_for("")
        assert peer.responsible_for("0101")

    def test_prefix_relation_semantics(self):
        peer = make_peer()
        peer.set_path("01")
        assert peer.responsible_for("01")      # equal
        assert peer.responsible_for("0110")    # peer path is prefix of query
        assert peer.responsible_for("0")       # query is prefix of peer path
        assert not peer.responsible_for("10")  # diverges


class TestBuddies:
    def test_add_buddy_excludes_self(self):
        peer = make_peer(address=3)
        peer.add_buddy(3)
        assert peer.buddies == set()
        peer.add_buddy(4)
        assert peer.buddies == {4}

    def test_merge_buddies(self):
        peer = make_peer(address=1)
        peer.merge_buddies([2, 3, 1, 3])
        assert peer.buddies == {2, 3}

    def test_specialization_clears_buddies(self):
        peer = make_peer()
        peer.add_buddy(9)
        peer.extend_path("0")
        assert peer.buddies == set()

    def test_set_path_clears_buddies(self):
        peer = make_peer()
        peer.add_buddy(9)
        peer.set_path("11")
        assert peer.buddies == set()


class TestFootprint:
    def test_index_footprint_counts_routing_and_leaf_refs(self):
        peer = make_peer()
        peer.set_path("01")
        peer.routing.set_refs(1, [5])
        peer.routing.set_refs(2, [6, 7])
        peer.store.add_ref(DataRef(key="011", holder=9))
        assert peer.index_footprint() == 4

    def test_repr(self):
        peer = make_peer(address=12)
        peer.set_path("10")
        assert "addr=12" in repr(peer)
        assert "'10'" in repr(peer)
