"""Tests for update propagation and read strategies (§3/§5.2)."""

from __future__ import annotations

import random

import pytest

from repro.core.search import SearchEngine
from repro.core.storage import DataItem, DataRef
from repro.core.updates import ReadEngine, UpdateEngine, UpdateStrategy
from repro.errors import InvalidKeyError
from repro.sim.churn import FixedOnlineSet
from tests.conftest import build_grid


@pytest.fixture
def grid():
    return build_grid(256, maxl=5, refmax=3, seed=21)


class TestPropagation:
    @pytest.mark.parametrize("strategy", list(UpdateStrategy))
    def test_reached_peers_are_responsible(self, grid, strategy):
        engine = UpdateEngine(grid)
        ref = DataRef(key="10110", holder=0, version=1)
        result = engine.propagate(5, ref, strategy=strategy, repetition=3)
        assert result.reached
        for address in result.reached:
            assert grid.peer(address).responsible_for("10110")
            assert grid.peer(address).store.version_of("10110", 0) == 1

    def test_coverage_fraction(self, grid):
        engine = UpdateEngine(grid)
        ref = DataRef(key="01011", holder=0, version=1)
        result = engine.propagate(
            3, ref, strategy=UpdateStrategy.BFS, recbreadth=3
        )
        replicas = set(grid.replicas_for_key("01011"))
        assert result.replica_count == len(replicas)
        assert result.reached <= replicas
        assert result.coverage == pytest.approx(
            len(result.reached) / len(replicas)
        )

    def test_bfs_beats_single_dfs_coverage(self, grid):
        engine = UpdateEngine(grid)
        keys = ["10010", "01101", "11100", "00011"]
        bfs_total = dfs_total = 0
        for key in keys:
            bfs, _, _ = engine.find_replicas(
                2, key, strategy=UpdateStrategy.BFS, recbreadth=3
            )
            dfs, _, _ = engine.find_replicas(
                2, key, strategy=UpdateStrategy.REPEATED_DFS, repetition=1
            )
            bfs_total += len(bfs)
            dfs_total += len(dfs)
        assert bfs_total > dfs_total

    def test_buddies_strategy_extends_dfs(self, grid):
        engine = UpdateEngine(grid)
        key = "11011"
        base, base_msgs, _ = engine.find_replicas(
            1, key, strategy=UpdateStrategy.REPEATED_DFS, repetition=2
        )
        extended, ext_msgs, _ = engine.find_replicas(
            1, key, strategy=UpdateStrategy.DFS_BUDDIES, repetition=2
        )
        # Buddy forwarding can only add peers, at added message cost — the
        # two runs draw different randomness, so compare weakly: buddy runs
        # reach at least one peer and spend >= messages per reached peer
        # comparable to plain DFS.
        assert extended
        assert ext_msgs >= 0 and base_msgs >= 0 and base

    def test_propagate_validates(self, grid):
        engine = UpdateEngine(grid)
        with pytest.raises(ValueError):
            engine.propagate(
                0, DataRef(key="1", holder=0), repetition=0
            )
        with pytest.raises(InvalidKeyError):
            engine.find_replicas(
                0, "xy", strategy=UpdateStrategy.BFS
            )
        with pytest.raises(ValueError):
            engine.find_replicas(
                0, "01", strategy=UpdateStrategy.BFS, repetition=0
            )

    def test_unknown_strategy_rejected(self, grid):
        engine = UpdateEngine(grid)
        with pytest.raises(ValueError):
            engine._find_replicas(
                0, "01", strategy="bogus", repetition=1, recbreadth=2
            )

    def test_publish_stores_item_at_holder(self, grid):
        engine = UpdateEngine(grid)
        item = DataItem(key="00110", value="file.bin")
        result = engine.publish(4, item, holder=9, version=2)
        assert grid.peer(9).store.get_item("00110").value == "file.bin"
        for address in result.reached:
            assert grid.peer(address).store.version_of("00110", 9) == 2

    def test_buddy_forwarding_respects_churn(self, grid):
        # Make every buddy offline: DFS_BUDDIES degrades to plain DFS reach.
        engine = UpdateEngine(grid)
        key = "10101"
        reached_once, _, _ = engine.find_replicas(
            0, key, strategy=UpdateStrategy.REPEATED_DFS, repetition=1
        )
        only_reached_online = FixedOnlineSet(reached_once | {0})
        grid.online_oracle = only_reached_online
        reached, _, failed = engine.find_replicas(
            0, key, strategy=UpdateStrategy.DFS_BUDDIES, repetition=1
        )
        # any buddy outside the online set must have been skipped
        for address in reached:
            assert only_reached_online.is_online(address) or address == 0


class TestReadStrategies:
    def _updated_key(self, grid, coverage_breadth=3):
        """Publish version 1 of an entry and return (key, holder, reached)."""
        engine = UpdateEngine(grid)
        key = "01110"
        holder = 7
        result = engine.publish(
            2,
            DataItem(key=key, value="v1"),
            holder,
            strategy=UpdateStrategy.BFS,
            recbreadth=coverage_breadth,
            version=1,
        )
        return key, holder, result.reached

    def test_read_single_success_iff_fresh_responder(self, grid):
        key, holder, reached = self._updated_key(grid)
        reads = ReadEngine(grid)
        result = reads.read_single(0, key, holder, version=1)
        if result.success:
            # some responder in the reached set answered
            assert result.messages >= 0
        else:
            # a stale replica answered; it must exist
            stale = set(grid.replicas_for_key(key)) - reached
            assert stale

    def test_read_repeated_succeeds_when_any_replica_fresh(self, grid):
        key, holder, reached = self._updated_key(grid)
        assert reached  # sanity
        reads = ReadEngine(grid)
        result = reads.read_repeated(0, key, holder, version=1,
                                     max_repetitions=500)
        assert result.success
        assert result.repetitions >= 1

    def test_read_repeated_fails_when_nothing_updated(self, grid):
        reads = ReadEngine(grid)
        result = reads.read_repeated(
            0, "11111", holder=3, version=5, max_repetitions=5
        )
        assert not result.success
        assert result.repetitions == 5

    def test_read_repeated_validates(self, grid):
        with pytest.raises(ValueError):
            ReadEngine(grid).read_repeated(
                0, "1", holder=0, version=1, max_repetitions=0
            )

    def test_read_majority_all_fresh(self, grid):
        key, holder, _ = self._updated_key(grid, coverage_breadth=3)
        # Force freshness everywhere: install at every replica directly.
        for address in grid.replicas_for_key(key):
            grid.peer(address).store.add_ref(
                DataRef(key=key, holder=holder, version=1)
            )
        result = ReadEngine(grid).read_majority(0, key, holder, version=1)
        assert result.success
        assert result.repetitions == 3

    def test_read_majority_all_stale(self, grid):
        result = ReadEngine(grid).read_majority(
            0, "00101", holder=1, version=9, votes=3
        )
        assert not result.success

    def test_read_majority_validates_votes(self, grid):
        reads = ReadEngine(grid)
        with pytest.raises(ValueError):
            reads.read_majority(0, "1", holder=0, version=1, votes=2)
        with pytest.raises(ValueError):
            reads.read_majority(0, "1", holder=0, version=1, votes=0)

    def test_read_single_counts_messages(self, grid):
        key, holder, _ = self._updated_key(grid)
        result = ReadEngine(grid).read_single(0, key, holder, version=1)
        assert result.messages <= len(key)

    def test_shared_search_engine(self, grid):
        search = SearchEngine(grid)
        updates = UpdateEngine(grid, search=search)
        reads = ReadEngine(grid, search=search)
        assert updates.search is search
        assert reads.search is search


class TestUpdateConfigDefaults:
    def test_engine_uses_config_defaults(self, grid):
        from repro.core.config import UpdateConfig

        engine = UpdateEngine(grid, config=UpdateConfig(recbreadth=3, repetition=2))
        ref = DataRef(key="01010", holder=0, version=1)
        result = engine.propagate(4, ref)  # no per-call overrides
        assert result.reached

    def test_explicit_arguments_override_config(self, grid):
        from repro.core.config import UpdateConfig

        engine = UpdateEngine(grid, config=UpdateConfig(repetition=1))
        with pytest.raises(ValueError):
            engine.propagate(
                0, DataRef(key="1", holder=0), repetition=0
            )

    def test_default_config_matches_previous_behavior(self, grid):
        engine = UpdateEngine(grid)
        assert engine.config.recbreadth == 2
        assert engine.config.repetition == 1
