"""Tests for the §4 closed-form analysis and sizing planner."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analysis import (
    central_server_costs,
    expected_search_messages,
    index_entries_per_peer,
    min_peers_for_replication,
    pgrid_costs,
    plan_grid,
    required_key_length,
    search_success_probability,
)
from repro.errors import InvalidConfigError


class TestEquation1:
    def test_paper_example(self):
        # d_global = 10^7, i_leaf = 9800 -> k = 10 (2^10 = 1024 >= 1020.4)
        assert required_key_length(10**7, 10**4 - 200) == 10

    def test_exact_power(self):
        assert required_key_length(1024, 1) == 10
        assert required_key_length(1025, 1) == 11

    def test_small_ratio(self):
        assert required_key_length(10, 10) == 0
        assert required_key_length(5, 10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_key_length(0, 1)
        with pytest.raises(ValueError):
            required_key_length(1, 0)

    @given(st.integers(1, 10**9), st.integers(1, 10**6))
    def test_key_length_is_sufficient(self, d_global, i_leaf):
        k = required_key_length(d_global, i_leaf)
        assert 2**k * i_leaf >= d_global
        if k > 0:
            assert 2 ** (k - 1) * i_leaf < d_global


class TestEquation2:
    def test_paper_example(self):
        assert min_peers_for_replication(10**7, 10**4 - 200, 20) == 20409

    def test_validation(self):
        with pytest.raises(ValueError):
            min_peers_for_replication(1, 1, 0)
        with pytest.raises(ValueError):
            min_peers_for_replication(1, 0, 1)
        with pytest.raises(ValueError):
            min_peers_for_replication(0, 1, 1)

    @given(st.integers(1, 10**8), st.integers(1, 10**5), st.integers(1, 50))
    def test_constraint_satisfied_at_minimum(self, d_global, i_leaf, refmax):
        n = min_peers_for_replication(d_global, i_leaf, refmax)
        assert d_global / i_leaf * refmax <= n
        assert d_global / i_leaf * refmax > n - 1


class TestEquation3:
    def test_paper_example_exceeds_99_percent(self):
        assert search_success_probability(0.3, 20, 10) > 0.99

    def test_single_level_single_ref(self):
        assert search_success_probability(0.3, 1, 1) == pytest.approx(0.3)

    def test_zero_length_is_certain(self):
        assert search_success_probability(0.1, 1, 0) == 1.0

    def test_offline_world(self):
        assert search_success_probability(0.0, 5, 3) == 0.0

    def test_online_world(self):
        assert search_success_probability(1.0, 1, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            search_success_probability(1.5, 1, 1)
        with pytest.raises(ValueError):
            search_success_probability(0.5, 0, 1)
        with pytest.raises(ValueError):
            search_success_probability(0.5, 1, -1)

    @given(
        st.floats(0.01, 0.99),
        st.integers(1, 30),
        st.integers(0, 30),
    )
    def test_monotone_in_refmax(self, p, refmax, k):
        assert search_success_probability(p, refmax + 1, k) >= (
            search_success_probability(p, refmax, k)
        )

    @given(
        st.floats(0.01, 0.99),
        st.integers(1, 30),
        st.integers(0, 30),
    )
    def test_antitone_in_key_length(self, p, refmax, k):
        assert search_success_probability(p, refmax, k + 1) <= (
            search_success_probability(p, refmax, k)
        )

    @given(st.floats(0.0, 1.0), st.integers(1, 30), st.integers(0, 30))
    def test_is_probability(self, p, refmax, k):
        value = search_success_probability(p, refmax, k)
        assert 0.0 <= value <= 1.0


class TestHelpers:
    def test_index_entries_per_peer(self):
        assert index_entries_per_peer(9800, 10, 20) == 10_000

    def test_index_entries_validation(self):
        with pytest.raises(ValueError):
            index_entries_per_peer(-1, 1, 1)

    def test_expected_search_messages(self):
        assert expected_search_messages(10) == 10.0
        with pytest.raises(ValueError):
            expected_search_messages(-1)


class TestPlanner:
    def test_paper_worked_example(self):
        plan = plan_grid(
            10**7,
            reference_bytes=10,
            storage_bytes_per_peer=10**5,
            p_online=0.3,
            refmax=20,
            i_leaf=10**4 - 200,
        )
        assert plan.key_length == 10
        assert plan.min_peers == 20409
        assert plan.success_probability > 0.99
        assert plan.storage_used == 10**5
        assert plan.meets(0.99)
        assert not plan.meets(0.9999)

    def test_auto_i_leaf_fixed_point(self):
        plan = plan_grid(10**7, refmax=20)
        # auto-chosen i_leaf must saturate the budget exactly:
        assert plan.i_leaf + plan.key_length * plan.refmax == plan.i_peer
        assert plan.key_length == required_key_length(10**7, plan.i_leaf)

    def test_budget_too_small(self):
        with pytest.raises(InvalidConfigError):
            plan_grid(10**9, storage_bytes_per_peer=100, refmax=20)

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            plan_grid(10, reference_bytes=0)
        with pytest.raises(InvalidConfigError):
            plan_grid(10, reference_bytes=10, storage_bytes_per_peer=5)

    @given(st.integers(100, 10**7))
    def test_plan_always_feasible_within_budget(self, d_global):
        plan = plan_grid(d_global, refmax=5)
        assert plan.storage_used <= plan.storage_bytes_per_peer
        assert plan.i_leaf >= 1


class TestSection6Costs:
    def test_central_server_costs(self):
        costs = central_server_costs(10**6, 5000)
        assert costs["server_storage"] == 10**6
        assert costs["server_query_load"] == 5000
        assert costs["client_query_messages"] == 1

    def test_central_validation(self):
        with pytest.raises(ValueError):
            central_server_costs(-1, 0)

    def test_pgrid_costs_logarithmic(self):
        costs = pgrid_costs(10**6, 10**4)
        assert costs["peer_storage"] == math.ceil(math.log2(10**6))
        assert costs["query_messages"] == math.ceil(math.log2(10**4))

    def test_pgrid_validation(self):
        with pytest.raises(ValueError):
            pgrid_costs(0, 1)
