"""Tests for the Fig. 2 depth-first search and the breadth-first variant."""

from __future__ import annotations

import random

import pytest

from repro.core import keys as keyspace
from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataItem, DataRef
from repro.errors import InvalidKeyError
from repro.sim.churn import FixedOnlineSet
from tests.conftest import build_grid


class TestFig1Examples:
    """The two worked query examples of the paper's Fig. 1."""

    def test_query_00_at_peer_1_resolves_locally(self, fig1_grid):
        engine = SearchEngine(fig1_grid)
        result = engine.query_from(0, "00")  # paper peer 1 = address 0
        assert result.found
        assert result.responder == 0
        assert result.messages == 0  # handled entirely locally

    def test_query_10_at_peer_6_routes_two_hops(self, fig1_grid):
        engine = SearchEngine(fig1_grid)
        result = engine.query_from(5, "10")  # paper peer 6 = address 5
        assert result.found
        # Must end at one of the peers responsible for "10" (addresses 2, 3).
        assert result.responder in (2, 3)
        # Peer 6's own path is 11: the query diverges at the first bit, so at
        # least one forward happens; the figure's walk uses two.
        assert 1 <= result.messages <= 2

    def test_every_key_reachable_from_every_peer(self, fig1_grid):
        engine = SearchEngine(fig1_grid)
        for start in fig1_grid.addresses():
            for key in keyspace.all_keys(2):
                result = engine.query_from(start, key)
                assert result.found, (start, key)
                assert fig1_grid.peer(result.responder).responsible_for(key)


class TestSemantics:
    def test_invalid_query_rejected(self, fig1_grid):
        with pytest.raises(InvalidKeyError):
            SearchEngine(fig1_grid).query_from(0, "0a")

    def test_unknown_start_rejected(self, fig1_grid):
        from repro.errors import UnknownPeerError

        with pytest.raises(UnknownPeerError):
            SearchEngine(fig1_grid).query_from(99, "00")

    def test_query_shorter_than_path_matches(self, fig1_grid):
        # Query "0" is a prefix of peer 0's path "00" -> peer 0 responsible.
        result = SearchEngine(fig1_grid).query_from(0, "0")
        assert result.found and result.responder == 0

    def test_query_longer_than_path_matches(self, fig1_grid):
        # Peer 0's path "00" is a prefix of the query "0011".
        result = SearchEngine(fig1_grid).query_from(0, "0011")
        assert result.found and result.responder == 0

    def test_empty_query_found_immediately(self, fig1_grid):
        result = SearchEngine(fig1_grid).query_from(3, "")
        assert result.found and result.responder == 3 and result.messages == 0

    def test_data_refs_attached_to_result(self, fig1_grid):
        fig1_grid.peer(2).store.add_ref(DataRef(key="101", holder=4))
        fig1_grid.peer(3).store.add_ref(DataRef(key="101", holder=4))
        result = SearchEngine(fig1_grid).query_from(5, "10")
        assert result.found
        assert any(ref.key == "101" for ref in result.data_refs)

    def test_result_total_contacts(self, fig1_grid):
        result = SearchEngine(fig1_grid).query_from(5, "10")
        assert result.total_contacts == result.messages + result.failed_attempts


class TestFailureHandling:
    def test_search_fails_when_other_side_offline(self, fig1_grid):
        # Only the 0-side peers are online; a 1-side query from a 0-side
        # peer cannot cross.
        fig1_grid.online_oracle = FixedOnlineSet({0, 1})
        result = SearchEngine(fig1_grid).query_from(0, "10")
        assert not result.found
        assert result.messages == 0
        assert result.failed_attempts >= 1

    def test_search_succeeds_via_alternative_when_one_replica_offline(self):
        grid = build_grid(64, maxl=4, refmax=2, seed=9)
        # Knock out one specific peer; refmax=2 should usually route around.
        engine = SearchEngine(grid)
        baseline = engine.query_from(0, "1010")
        assert baseline.found
        grid.online_oracle = FixedOnlineSet(set(grid.addresses()) - {baseline.responder})
        rerun = engine.query_from(0, "1010")
        if rerun.found:
            assert rerun.responder != baseline.responder

    def test_offline_attempts_counted_not_charged(self, fig1_grid):
        fig1_grid.online_oracle = FixedOnlineSet({0, 1, 2})  # peer 3 offline
        result = SearchEngine(fig1_grid).query_from(0, "10")
        # Peer 0's L1 ref is peer 2 (online) -> should still succeed.
        assert result.found

    def test_message_budget_exhaustion_returns_not_found(self, fig1_grid):
        engine = SearchEngine(fig1_grid, config=SearchConfig(max_messages=1))
        # Query needing 2 hops from peer 5 can exhaust a 1-message budget
        # only if the first hop does not already resolve; run both ways.
        result = engine.query_from(5, "10")
        assert result.messages <= 1


class TestOnConstructedGrid:
    def test_all_leaf_keys_found_when_online(self, medium_grid):
        engine = SearchEngine(medium_grid)
        rng = random.Random(4)
        for _ in range(100):
            key = keyspace.random_key(5, rng)
            result = engine.query_from(rng.choice(medium_grid.addresses()), key)
            assert result.found, key
            assert medium_grid.peer(result.responder).responsible_for(key)

    def test_messages_bounded_by_key_length(self, medium_grid):
        engine = SearchEngine(medium_grid)
        rng = random.Random(5)
        for _ in range(50):
            key = keyspace.random_key(5, rng)
            result = engine.query_from(rng.choice(medium_grid.addresses()), key)
            # each message consumes at least one further bit of the query
            assert result.messages <= len(key)

    def test_deterministic_for_fixed_rng(self):
        def run(seed):
            grid = build_grid(64, maxl=4, refmax=2, seed=13)
            grid.rng = random.Random(seed)
            engine = SearchEngine(grid)
            return [
                (engine.query_from(0, key).responder)
                for key in keyspace.all_keys(4)
            ]

        assert run(77) == run(77)


class TestRepeatedQuery:
    def test_repeated_query_accumulates_responders(self, medium_grid):
        engine = SearchEngine(medium_grid)
        responders, messages, failed = engine.repeated_query(0, "10101", 10)
        assert responders
        assert all(
            medium_grid.peer(address).responsible_for("10101")
            for address in responders
        )
        assert messages >= len(responders) - 1
        assert failed == 0  # everyone online

    def test_repeated_query_validates_times(self, fig1_grid):
        with pytest.raises(ValueError):
            SearchEngine(fig1_grid).repeated_query(0, "00", 0)


class TestBreadthSearch:
    def test_finds_multiple_replicas(self, medium_grid):
        engine = SearchEngine(medium_grid)
        result = engine.query_breadth(0, "10101", recbreadth=3)
        assert result.found
        assert len(result.responders) >= 2
        assert len(set(result.responders)) == len(result.responders)
        for address in result.responders:
            assert medium_grid.peer(address).responsible_for("10101")

    def test_validates_recbreadth(self, fig1_grid):
        with pytest.raises(ValueError):
            SearchEngine(fig1_grid).query_breadth(0, "00", recbreadth=0)

    def test_validates_key(self, fig1_grid):
        with pytest.raises(InvalidKeyError):
            SearchEngine(fig1_grid).query_breadth(0, "0x", recbreadth=2)

    def test_wider_breadth_finds_at_least_as_many_on_average(self, medium_grid):
        engine = SearchEngine(medium_grid)
        rng = random.Random(8)
        narrow = wide = 0
        for _ in range(30):
            key = keyspace.random_key(5, rng)
            start = rng.choice(medium_grid.addresses())
            narrow += len(engine.query_breadth(start, key, 1).responders)
            wide += len(engine.query_breadth(start, key, 3).responders)
        assert wide > narrow

    def test_breadth_respects_online_oracle(self, fig1_grid):
        fig1_grid.online_oracle = FixedOnlineSet({0, 1})
        result = SearchEngine(fig1_grid).query_breadth(0, "10", recbreadth=2)
        assert not result.found
        assert result.failed_attempts >= 1

    def test_local_responsibility_counts_without_messages(self, fig1_grid):
        result = SearchEngine(fig1_grid).query_breadth(0, "00", recbreadth=2)
        assert result.found
        assert 0 in result.responders


class TestBreadthBudget:
    def test_breadth_respects_message_budget(self, medium_grid):
        engine = SearchEngine(medium_grid, config=SearchConfig(max_messages=2))
        result = engine.query_breadth(0, "10101", recbreadth=3)
        assert result.messages <= 2

    def test_range_query_respects_budget_per_cover(self, medium_grid):
        engine = SearchEngine(medium_grid, config=SearchConfig(max_messages=3))
        result = engine.query_range(0, "00000", "11111")
        # one budget per cover prefix search; cover of the full range is [""]
        assert result.messages <= 3 * len(result.cover)


class TestRangeUnderChurn:
    def test_range_query_degrades_gracefully(self, medium_grid):
        from repro.core.storage import DataItem

        medium_grid.seed_index(
            [(DataItem(key=format(v, "07b"), value=v), v % 256)
             for v in range(0, 128, 4)]
        )
        baseline = SearchEngine(medium_grid).query_range(
            0, "0000000", "1111111", recbreadth=4
        )
        medium_grid.online_oracle = FixedOnlineSet(
            set(medium_grid.addresses()[::2])  # half the peers are up
        )
        churned = SearchEngine(medium_grid).query_range(
            0, "0000000", "1111111", recbreadth=4
        )
        assert len(churned.data_refs) <= len(baseline.data_refs)
        assert churned.failed_attempts >= 0
        found_keys = {ref.key for ref in churned.data_refs}
        baseline_keys = {ref.key for ref in baseline.data_refs}
        assert found_keys <= baseline_keys
