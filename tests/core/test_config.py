"""Tests for configuration objects."""

from __future__ import annotations

import pytest

from repro.core.config import (
    PAPER_SECTION51_CONFIG,
    PAPER_SECTION52_CONFIG,
    PGridConfig,
    SearchConfig,
    UpdateConfig,
)
from repro.errors import InvalidConfigError


class TestPGridConfig:
    def test_defaults(self):
        config = PGridConfig()
        assert config.maxl == 6
        assert config.refmax == 1
        assert config.recmax == 2
        assert config.recursion_fanout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"maxl": 0},
            {"maxl": -3},
            {"refmax": 0},
            {"recmax": -1},
            {"recursion_fanout": 0},
            {"recursion_fanout": -2},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(InvalidConfigError):
            PGridConfig(**kwargs)

    def test_recmax_zero_allowed(self):
        assert PGridConfig(recmax=0).recmax == 0

    def test_frozen(self):
        config = PGridConfig()
        with pytest.raises(AttributeError):
            config.maxl = 9  # type: ignore[misc]

    def test_with_overrides(self):
        config = PGridConfig(maxl=6).with_overrides(maxl=10, refmax=20)
        assert (config.maxl, config.refmax) == (10, 20)
        assert config.recmax == 2  # untouched field preserved

    def test_with_overrides_validates(self):
        with pytest.raises(InvalidConfigError):
            PGridConfig().with_overrides(maxl=0)

    def test_dict_roundtrip(self):
        config = PGridConfig(
            maxl=8,
            refmax=5,
            recmax=3,
            recursion_fanout=2,
            mutual_refs_in_case4=True,
            exchange_refs_all_levels=True,
        )
        assert PGridConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidConfigError):
            PGridConfig.from_dict({"maxl": 6, "bogus": 1})

    def test_paper_section52_constants(self):
        assert PAPER_SECTION52_CONFIG.maxl == 10
        assert PAPER_SECTION52_CONFIG.refmax == 20
        assert PAPER_SECTION52_CONFIG.recmax == 2
        assert PAPER_SECTION52_CONFIG.recursion_fanout == 2

    def test_paper_section51_constants(self):
        assert PAPER_SECTION51_CONFIG.maxl == 6
        assert PAPER_SECTION51_CONFIG.refmax == 1


class TestSearchConfig:
    def test_default_budget(self):
        assert SearchConfig().max_messages == 10_000

    def test_invalid_budget(self):
        with pytest.raises(InvalidConfigError):
            SearchConfig(max_messages=0)


class TestUpdateConfig:
    def test_defaults(self):
        config = UpdateConfig()
        assert config.recbreadth == 2
        assert config.repetition == 1

    @pytest.mark.parametrize("kwargs", [{"recbreadth": 0}, {"repetition": 0}])
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidConfigError):
            UpdateConfig(**kwargs)
