"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path:

    pip install -e . --no-build-isolation

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
