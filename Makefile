# Convenience targets for the P-Grid reproduction.

PYTHON ?= python
# Scale of `make bench`: fig4 (default) or smoke (CI-fast).
SCALE ?= fig4

.PHONY: install test lint check bench bench-experiments bench-paper bench-quick bench-regression bench-shm-smoke check-parallel protocol-equivalence resilience-smoke replication-smoke swarm-smoke examples clean results

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Lint degrades gracefully: offline environments may lack ruff/mypy
# (CI always installs them — see .github/workflows/ci.yml).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed - skipping"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		PYTHONPATH=src $(PYTHON) -m mypy src/repro/obs; \
	else \
		echo "mypy not installed - skipping"; \
	fi

check: test lint

# Perf baselines: writes BENCH_micro.json / BENCH_construction.json /
# BENCH_search.json to the repo root (see benchmarks/harness.py).
bench:
	$(PYTHON) benchmarks/harness.py --scale $(SCALE)

# The paper-table regeneration suite (pytest-benchmark based).
bench-experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Perf gate: a fresh micro-bench run's hot-path speedup ratios must stay
# within 10% of the committed smoke-scale baseline, the construction
# engine ratios (array/batch vs object) within 35%, and the batch-search
# speedup within 35% of its baseline with found-rate/messages deltas
# inside the 2% equivalence bound (ratios, not raw timings, so the gate
# is machine-independent).
bench-regression:
	$(PYTHON) benchmarks/harness.py --scale smoke --out-dir benchmarks/results/fresh
	$(PYTHON) benchmarks/check_regression.py \
		--baseline benchmarks/baselines/BENCH_micro_smoke.json \
		--fresh benchmarks/results/fresh/BENCH_micro.json \
		--fresh-construction benchmarks/results/fresh/BENCH_construction.json \
		--fresh-array-search benchmarks/results/fresh/BENCH_array_search.json

# Array-core scale point: gridless batched construction at the smoke
# scale's 20k peers (fig4 scale runs 100k), reporting throughput, the
# replica distribution and the memory footprint.
bench-array:
	$(PYTHON) benchmarks/bench_array_smoke.py --scale $(SCALE)

# Shared-memory snapshot gate: a --jobs 2 sweep shipping only the
# GridSnapshot ref must stay bit-identical to serial, keep the pickled
# trial spec tiny, attach at most once per worker, and leave no
# pgrid_snap_* residue in /dev/shm (see benchmarks/check_shm.py).
bench-shm-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/check_shm.py

# Parallel-speedup gate over the committed BENCH_search.json: jobs=2
# sweeps must beat serial on multi-core machines and stay bit-identical
# everywhere (regression guard for the shared-pool amortization).
check-parallel:
	$(PYTHON) benchmarks/check_parallel.py --fresh BENCH_search.json

# Tentpole gate: the in-process engines, the message-driven node and the
# asyncio runtime run the same repro.protocol machines — identical
# results, costs and RNG streams (tests/protocol/, tests/aio/).
protocol-equivalence:
	PYTHONPATH=src $(PYTHON) -m pytest tests/protocol tests/aio/test_async_equivalence.py -q

# Resilience gate: measured success under injected faults must match the
# §4 analytic curve within the smoke tolerance (see docs/RESILIENCE.md).
resilience-smoke:
	PYTHONPATH=src $(PYTHON) -c "import sys; from repro.experiments import resilience; \
	sys.exit(resilience.main(['--scale', 'smoke', '--jobs', '2', '--check']))"

# Replication gate: under Zipf traffic with exponent >= 1.0 the adaptive
# balancer must beat the static §4 baseline on p95 messages-to-hit
# without losing found rate (see docs/REPLICATION.md).
replication-smoke:
	PYTHONPATH=src $(PYTHON) -c "import sys; from repro.experiments import replication; \
	sys.exit(replication.main(['--scale', 'smoke', '--jobs', '2', '--check']))"

# Swarm gate: 1000 concurrent asyncio nodes absorb a mixed
# search/update workload with a perfect found rate inside the time
# budget (see docs/ASYNC.md).
swarm-smoke:
	PYTHONPATH=src $(PYTHON) -m repro swarm --peers 1000 --maxl 6 \
		--operations 2000 --update-fraction 0.1 --concurrency 64 \
		--seed 0 --min-found-rate 1.0 --time-budget 120

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

results:
	@ls -1 benchmarks/results/*.txt 2>/dev/null || \
		echo "no results yet - run 'make bench' first"

clean:
	rm -rf benchmarks/.cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
