# Convenience targets for the P-Grid reproduction.

PYTHON ?= python

.PHONY: install test bench bench-paper bench-quick examples clean results

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

results:
	@ls -1 benchmarks/results/*.txt 2>/dev/null || \
		echo "no results yet - run 'make bench' first"

clean:
	rm -rf benchmarks/.cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
