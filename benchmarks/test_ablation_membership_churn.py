"""AB6 — extension: membership churn and reference repair.

§6's "continuously adapt" agenda, measured: after half the population is
replaced (crash-fail + protocol joins), search success dips — dangling
references and shallow newcomers — and a repair sweep (reference probing +
search-based refill) restores it.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_membership_churn(benchmark):
    result = benchmark.pedantic(
        ablations.run_membership_churn, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    intact, churned, repaired = result.rows

    # Shape 1: population size is restored by the joins.
    assert churned[1] == intact[1]

    # Shape 2: churn hurts, repair recovers most of the loss.
    assert churned[2] < intact[2]
    assert repaired[2] > churned[2]
    assert repaired[2] > 0.95

    # Shape 3: repair is cheaper than the joins that caused the damage
    # (lazy maintenance, not reconstruction).
    assert repaired[3] < churned[3]
