"""AB9 — extension: native k-ary trie vs. binary reduction for text.

§6 offers two roads to text search: reduce the alphabet to {0,1} (our
``repro.text``) or extend the access structure's alphabet itself.  This
benchmark indexes one word corpus both ways and runs the same lookups.
Expected shape: the native 27-ary trie answers in fewer messages (one hop
per character instead of up to five binary levels), but stores several
times more routing state per peer and costs more to construct — a
latency/storage trade, not a free win.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_kary_vs_binary(benchmark):
    result = benchmark.pedantic(
        ablations.run_kary_vs_binary, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    binary, kary = result.rows
    assert binary[0] == "binary reduction"

    # Shape 1: the native trie resolves lookups in fewer messages.
    assert kary[5] < 0.7 * binary[5], (kary[5], binary[5])

    # Shape 2: ...at several times the per-peer routing state.
    assert kary[3] > 2 * binary[3], (kary[3], binary[3])

    # Shape 3: both deliver usable lookup reliability, binary near-perfect.
    assert binary[4] > 0.97
    assert kary[4] > 0.85

    # Shape 4: the k-ary trie is shallower by construction.
    assert kary[1] < binary[1]
