"""F4 — §5.2 Fig. 4: distribution of replication factors.

Paper shape: a fairly uniform, unimodal distribution of replicas per path
with mean ≈ N / 2^maxl (19.46 at the paper's 20000/10 scale) — the
opposite-bit splitting rule balances the trie.
"""

from __future__ import annotations

import functools

from repro.experiments import fig4_replicas

from conftest import publish_result


def test_fig4_replica_distribution(benchmark, s52_profile, s52_grid):
    run = functools.partial(fig4_replicas.run, s52_profile, grid=s52_grid)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result)

    mean = result.config["mean_replication"]
    ideal = result.config["ideal_mean"]

    # Shape 1: the mean replication factor sits near the uniform ideal
    # N / 2^maxl (the paper's 19.46 vs 19.53).
    assert 0.5 * ideal <= mean <= 1.5 * ideal, (mean, ideal)

    # Shape 2: unimodal mass around the mean — most peers live within
    # [mean/2, 2*mean].
    total = sum(count for _, count in result.rows)
    central = sum(
        count for factor, count in result.rows
        if mean / 2 <= factor <= 2 * mean
    )
    assert central / total > 0.6, (central, total)

    # Shape 3: no runaway hot group — the largest replication factor stays
    # within a small multiple of the mean.
    max_factor = max(factor for factor, _ in result.rows)
    assert max_factor < 4 * ideal, (max_factor, ideal)
