"""AB3 — ablation: Zipf-skewed workloads (the §6 future-work gap).

This P-Grid variant partitions the key space data-agnostically, so skewed
keys must concentrate index entries and query traffic on the peers owning
popular prefixes.  Expected shape: storage and query-load imbalance (gini,
max/mean) clearly higher under Zipf than under uniform keys.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_skew(benchmark):
    result = benchmark.pedantic(ablations.run_skew, rounds=1, iterations=1)
    publish_result(result, float_digits=3)

    uniform, zipf = result.rows
    assert uniform[0] == "uniform"

    # Shape 1: query-load concentration rises under skew.
    assert zipf[4] > uniform[4], (zipf[4], uniform[4])

    # Shape 2: storage concentration rises under skew.
    assert zipf[1] > uniform[1], (zipf[1], uniform[1])

    # Shape 3: the hottest peer under Zipf carries a larger multiple of the
    # mean load than under uniform keys.
    zipf_ratio = zipf[5] / max(zipf[6], 1e-9)
    uniform_ratio = uniform[5] / max(uniform[6], 1e-9)
    assert zipf_ratio > uniform_ratio, (zipf_ratio, uniform_ratio)
