"""AB1 — ablation: mutual reference insertion in case 4.

The paper's case 4 only *forwards* the two diverged peers to referenced
peers; they are themselves valid references for each other.  Expected
shape: enabling mutual insertion densifies routing tables and does not
hurt construction cost meaningfully.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_case4_refs(benchmark):
    result = benchmark.pedantic(
        ablations.run_case4_refs, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    by_variant = {row[0]: row for row in result.rows}
    paper = by_variant["paper (forward only)"]
    mutual = by_variant["mutual refs"]

    # Shape 1: mutual insertion yields at least as dense routing tables.
    assert mutual[2] >= paper[2] * 0.95, (mutual[2], paper[2])

    # Shape 2: search success under churn does not degrade.
    assert mutual[3] >= paper[3] - 0.05, (mutual[3], paper[3])

    # Shape 3: construction cost stays the same order of magnitude.
    assert mutual[1] < 3 * paper[1]
