"""AB8 — extension: query-adaptive shortcut caching under skewed queries.

§6 lists "knowledge on query distribution" as an optimization lever; this
bench quantifies the simplest instance: an initiator-local LRU of recent
responders.  Expected shape: on a Zipf query stream the cache absorbs a
large share of searches at one direct contact each (lower average
messages, same success); on a uniform stream over a much larger key space
it is nearly useless.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_shortcut_cache(benchmark):
    result = benchmark.pedantic(
        ablations.run_shortcut_cache, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    rows = {(row[0], row[1]): row for row in result.rows}
    zipf_label = next(label for label, _ in rows if label.startswith("zipf"))

    zipf_plain = rows[(zipf_label, "plain")]
    zipf_cached = rows[(zipf_label, "shortcut cache")]
    uniform_plain = rows[("uniform", "plain")]
    uniform_cached = rows[("uniform", "shortcut cache")]

    # Shape 1: on Zipf queries the cache hits often and cuts message cost.
    assert zipf_cached[4] > 0.15, zipf_cached
    assert zipf_cached[3] < 0.9 * zipf_plain[3], (zipf_cached, zipf_plain)

    # Shape 2: on uniform queries the cache barely hits.
    assert uniform_cached[4] < 0.5 * zipf_cached[4]

    # Shape 3: caching never hurts success.
    assert zipf_cached[2] >= zipf_plain[2] - 0.03
    assert uniform_cached[2] >= uniform_plain[2] - 0.03
