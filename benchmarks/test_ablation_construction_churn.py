"""AB7 — extension: construction under availability (event-driven).

The paper's construction simulations run failure-free rounds; this
benchmark rebuilds construction as a Poisson meeting process over virtual
time with session churn, on the discrete-event kernel.  Expected shape: at
a fixed duration, achieved depth falls monotonically with availability —
offline endpoints thin the meeting process (~p^2) and case-4 recursion
finds fewer live partners.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_construction_churn(benchmark):
    result = benchmark.pedantic(
        ablations.run_construction_under_churn, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    rows = sorted(result.rows, key=lambda row: row[0])  # by p_online asc

    # Shape 1: executed meetings grow with availability (the ~p^2 thinning).
    meetings = [row[1] for row in rows]
    assert meetings == sorted(meetings), meetings
    assert rows[-1][1] > 3 * rows[0][1]

    # Shape 2: achieved depth is monotone (weakly) in availability.
    depths = [row[3] for row in rows]
    for earlier, later in zip(depths, depths[1:]):
        assert later >= earlier - 0.05, depths

    # Shape 3: full availability converges within the duration.
    assert rows[-1][5] is True or rows[-1][4] > 0.99
