"""T2 — §5.1 table 2: construction cost vs. maximal path length.

Paper shape: without recursion the cost roughly doubles per level
(ratios ≈ 1.85–2.36); with recmax=2 growth is much flatter (≈ 1.1–1.6).
"""

from __future__ import annotations

from repro.experiments import table2_maxl

from conftest import publish_result


def test_table2_maxl(benchmark):
    result = benchmark.pedantic(table2_maxl.run, rounds=1, iterations=1)
    publish_result(result)

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {2, 3, 4, 5, 6, 7}

    # Shape 1: recmax=0 ratios hover around 2 from maxl>=4 on (exponential).
    ratios0 = [rows[maxl][3] for maxl in (4, 5, 6, 7)]
    assert all(1.5 <= ratio <= 2.8 for ratio in ratios0), ratios0

    # Shape 2: recmax=2 ratios are consistently smaller than recmax=0's.
    for maxl in (4, 5, 6, 7):
        assert rows[maxl][7] < rows[maxl][3], (maxl, rows[maxl])

    # Shape 3: at maxl=7 the recursive variant wins by a wide margin
    # (paper: 171770 vs 27998, a factor ~6).
    assert rows[7][5] < 0.4 * rows[7][1]
