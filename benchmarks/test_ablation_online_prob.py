"""AB2 — ablation: search success vs. availability, validating eq. (3).

Expected shape: measured success rates track and dominate the eq. (3)
analytical bound across the availability range (the bound ignores
depth-first backtracking), both rising monotonically with availability.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_online_prob(benchmark):
    result = benchmark.pedantic(
        ablations.run_online_prob, rounds=1, iterations=1
    )
    publish_result(result, float_digits=4)

    rows = sorted(result.rows)  # sorted by p_online

    # Shape 1: measured success dominates the analytical lower bound
    # (up to sampling noise at 2000 searches per point).
    for p_online, measured, bound, _delta, _messages in rows:
        assert measured >= bound - 0.03, (p_online, measured, bound)

    # Shape 2: success is monotone (weakly) in availability.
    measured_series = [row[1] for row in rows]
    for earlier, later in zip(measured_series, measured_series[1:]):
        assert later >= earlier - 0.03, measured_series

    # Shape 3: at high availability, search is essentially certain.
    assert rows[-1][1] > 0.99
