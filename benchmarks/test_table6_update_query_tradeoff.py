"""T6 — §5.2 table 6: the update-cost / query-cost trade-off.

Paper shape: repetitive search pins the success rate at ~1.0 with a query
cost that falls steeply as updates cover more replicas; non-repetitive
search keeps ~5-message queries but its success rate stays below 1.0,
rising with insertion effort; insertion cost grows steeply with recbreadth
and linearly with repetition.
"""

from __future__ import annotations

import functools

from repro.experiments import table6_tradeoff

from conftest import publish_result


def test_table6_update_query_tradeoff(benchmark, s52_profile, s52_grid):
    run = functools.partial(table6_tradeoff.run, s52_profile, grid=s52_grid)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result, float_digits=3)

    rows = {
        (row[0], row[1], row[2]): {
            "success": row[3],
            "query_cost": row[4],
            "insertion_cost": row[5],
        }
        for row in result.rows
    }

    # Shape 1: repetitive search dominates non-repetitive success for every
    # configuration and is near-perfect.
    for recbreadth in (2, 3):
        for repetition in (1, 2, 3):
            repetitive = rows[("repetitive", recbreadth, repetition)]
            single = rows[("non-repetitive", recbreadth, repetition)]
            assert repetitive["success"] >= single["success"] - 1e-9
            assert repetitive["success"] > 0.9

    # Shape 2: non-repetitive success rises with insertion effort
    # (paper: 0.65 -> 0.89 over repetition 1 -> 3 at recbreadth 2).
    assert (
        rows[("non-repetitive", 2, 3)]["success"]
        > rows[("non-repetitive", 2, 1)]["success"]
    )

    # Shape 3: repetitive query cost falls as updates cover more replicas
    # (paper: 137 -> 17 over repetition 1 -> 3 at recbreadth 2).
    assert (
        rows[("repetitive", 2, 3)]["query_cost"]
        < rows[("repetitive", 2, 1)]["query_cost"]
    )

    # Shape 4: insertion cost grows with repetition and with recbreadth.
    for mode in ("repetitive", "non-repetitive"):
        assert (
            rows[(mode, 2, 3)]["insertion_cost"]
            > rows[(mode, 2, 1)]["insertion_cost"]
        )
        assert (
            rows[(mode, 3, 1)]["insertion_cost"]
            > rows[(mode, 2, 1)]["insertion_cost"]
        )

    # Shape 5: non-repetitive queries stay cheap (a handful of messages).
    for recbreadth in (2, 3):
        for repetition in (1, 2, 3):
            assert rows[("non-repetitive", recbreadth, repetition)][
                "query_cost"
            ] <= s52_profile.query_key_length
