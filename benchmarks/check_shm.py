"""Shared-memory snapshot smoke gate (what ``make bench-shm-smoke`` runs).

End-to-end check of the zero-copy fan-out contract on a small grid:

1. build once, export a :class:`~repro.fast.GridSnapshot`;
2. run a ``--jobs 2`` search sweep shipping only the snapshot's ref —
   results must be bit-identical to the serial run, the pickled trial
   spec must stay under a hard byte cap, and no worker may attach the
   segment more than once;
3. tear everything down and assert ``/dev/shm`` holds no
   ``pgrid_snap_*`` residue (segment leaks outlive the process and
   accumulate across CI runs, so this is a hard failure).

Exit code 0 = all gates passed.  Requires numpy; a numpy-less
environment skips with code 0 so the target can sit in any job.
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.fast import HAVE_NUMPY  # noqa: E402

MAX_SPEC_BYTES = 8_192
N_PEERS = 300
TRIALS = 6
N_QUERIES = 150
MASTER_SEED = 20020101


def _shm_residue() -> list[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux: nothing to scan
        return []
    return sorted(entry.name for entry in shm.glob("pgrid_snap_*"))


def main() -> int:
    if not HAVE_NUMPY:
        print("[check-shm] numpy not available — skipping")
        return 0

    from repro.core.config import PGridConfig
    from repro.experiments.common import run_snapshot_search_sweep
    from repro.perf.parallel import shutdown_pool, warm_pool
    from repro.sim.builder import construct_snapshot

    before = _shm_residue()
    if before:
        print(
            f"[check-shm] WARNING: stale segments before the run: {before}",
            file=sys.stderr,
        )

    config = PGridConfig(maxl=6, refmax=4, recmax=2, recursion_fanout=2)
    # Warm the pool *before* the snapshot exists so workers must go through
    # a genuine attach (fork-inherited mappings would trivially pass).
    warm_pool(2)
    snapshot, report = construct_snapshot(
        config,
        N_PEERS,
        seed=MASTER_SEED,
        threshold_fraction=0.985,
        max_exchanges=600 * N_PEERS,
    )
    failures: list[str] = []
    try:
        spec_bytes = len(
            pickle.dumps(
                {
                    "snapshot": snapshot.ref(),
                    "seed": 0,
                    "n_queries": N_QUERIES,
                    "key_length": config.maxl - 1,
                }
            )
        )
        print(
            f"[check-shm] grid n={N_PEERS} converged={report.converged}; "
            f"segment {snapshot.nbytes} B, trial spec {spec_bytes} B"
        )
        if spec_bytes > MAX_SPEC_BYTES:
            failures.append(
                f"trial spec pickles to {spec_bytes} B > cap {MAX_SPEC_BYTES} B"
            )

        serial = run_snapshot_search_sweep(
            snapshot,
            trials=TRIALS,
            n_queries=N_QUERIES,
            jobs=1,
            master_seed=MASTER_SEED,
        )
        pooled = run_snapshot_search_sweep(
            snapshot,
            trials=TRIALS,
            n_queries=N_QUERIES,
            jobs=2,
            master_seed=MASTER_SEED,
        )
        if [t["results"] for t in serial] != [t["results"] for t in pooled]:
            failures.append("jobs=2 results are not bit-identical to serial")
        attaches: dict[int, int] = {}
        for trial in pooled:
            worker = trial["worker"]
            attaches[worker["pid"]] = max(
                attaches.get(worker["pid"], 0), worker["fresh_attaches"]
            )
        print(f"[check-shm] worker fresh-attach counts: {attaches}")
        if any(count > 1 for count in attaches.values()):
            failures.append(
                f"a worker attached the segment more than once: {attaches}"
            )
    finally:
        snapshot.close()
        snapshot.unlink()
        shutdown_pool()

    residue = [name for name in _shm_residue() if name not in before]
    if residue:
        failures.append(f"leaked shared-memory segments: {residue}")

    if failures:
        for line in failures:
            print(f"[check-shm] FAIL {line}", file=sys.stderr)
        return 1
    print("[check-shm] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
