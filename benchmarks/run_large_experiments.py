"""Run the §5.2 experiments at the 100k-peer ``large`` profile.

The ``large`` profile is array-core only: no object grid is ever
materialized (100k peer objects would not fit the memory budget), so
every experiment runs through the vectorized batch query plane over
gridless-built flat state.  Committed outputs live in
``benchmarks/results_large_scale/`` next to the 20k-peer
``results_paper_scale/`` record.

The expensive step is the gridless construction (~25M exchanges), so
this driver builds the flat state once and wraps a *fresh*
:class:`~repro.fast.BatchQueryEngine` per experiment from the same
derived seed — each result is identical to what a standalone
``REPRO_SCALE=large pgrid experiment <name> --core array`` run
produces, while construction is paid once instead of three times.

Usage::

    PYTHONPATH=src python benchmarks/run_large_experiments.py \
        [--out-dir benchmarks/results_large_scale] [--scale large]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    fig5_update_strategies,
    search_reliability,
    table6_tradeoff,
)
from repro.experiments.common import section52_profile
from repro.sim import rng as rngmod

_ROOT = Path(__file__).resolve().parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", default=str(_ROOT / "results_large_scale")
    )
    parser.add_argument(
        "--scale", default="large", help="§5.2 profile name (default: large)"
    )
    args = parser.parse_args(argv)

    from repro.fast import HAVE_NUMPY, BatchGridBuilder, BatchQueryEngine

    if not HAVE_NUMPY:
        print("numpy unavailable: the large profile needs the array core")
        return 1

    profile = section52_profile(args.scale)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    print(
        f"[large] constructing N={profile.n_peers} maxl={profile.maxl} "
        f"refmax={profile.refmax} (gridless batch engine)"
    )
    began = time.perf_counter()
    builder = BatchGridBuilder(
        n=profile.n_peers,
        config=profile.config,
        seed=rngmod.derive_seed(profile.seed, "construction-batch"),
    )
    report = builder.build(
        threshold_fraction=profile.threshold_fraction,
        max_exchanges=max(profile.max_exchanges, 600 * profile.n_peers),
    )
    elapsed = time.perf_counter() - began
    print(
        f"[large] construction: {report.exchanges} exchanges in "
        f"{elapsed:.1f}s (converged={report.converged})"
    )
    if not report.converged:
        print("[large] construction did not converge; aborting")
        return 1

    def fresh_engine() -> "BatchQueryEngine":
        # Same seed every time: each experiment sees the engine state a
        # standalone `pgrid experiment --core array` run would see.
        return BatchQueryEngine.from_batch_builder(
            builder,
            seed=rngmod.derive_seed(profile.seed, "post-build"),
            p_online=profile.p_online,
        )

    for module in (search_reliability, fig5_update_strategies, table6_tradeoff):
        name = module.EXPERIMENT_ID
        print(f"[large] running {name} ...")
        began = time.perf_counter()
        result = module.run(profile, core="array", array_engine=fresh_engine())
        elapsed = time.perf_counter() - began
        result.save(out_dir)
        text = result.to_text(float_digits=3)
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(text)
        print(f"[large] {name} done in {elapsed:.1f}s -> {out_dir}/{name}.*")
    return 0


if __name__ == "__main__":
    sys.exit(main())
