"""S1 — §5.2 text: search reliability at 30% availability.

Paper shape: 10 000 random searches succeed 99.97% of the time at ~5.6
messages each, beating the eq. (3) analytical bound (depth-first
backtracking helps).
"""

from __future__ import annotations

import functools

from repro.experiments import search_reliability

from conftest import publish_result


def test_search_reliability(benchmark, s52_profile, s52_grid):
    run = functools.partial(
        search_reliability.run, s52_profile, grid=s52_grid
    )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result, float_digits=4)

    (row,) = result.rows
    searches, success, _paper, bound, avg_messages = row[0], row[1], row[2], row[3], row[4]

    assert searches == s52_profile.n_searches

    # Shape 1: search is reliable — success at or above the eq.(3) bound
    # (sampling slack) and near-certain overall.
    assert success >= bound - 0.02, (success, bound)
    assert success > 0.98, success

    # Shape 2: a successful search costs only a handful of messages,
    # bounded by the query length (paper: 5.56 for 9-bit queries).
    assert avg_messages <= s52_profile.query_key_length
    assert avg_messages >= 1.0
