"""T1 — §5.1 table 1: construction cost vs. community size.

Paper shape: ``e`` linear in N (``e/N`` ≈ 70–80 at recmax=0, ≈ 25 at
recmax=2), reproduced at the paper's exact sizes.
"""

from __future__ import annotations

from repro.experiments import table1_construction_scaling

from conftest import publish_result


def test_table1_construction_scaling(benchmark):
    result = benchmark.pedantic(
        table1_construction_scaling.run, rounds=1, iterations=1
    )
    publish_result(result)

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {200, 400, 600, 800, 1000}

    # Shape 1: e/N roughly constant in N for both recursion bounds
    # (linearity), within a generous factor across the sweep.
    for column in (2, 5):  # e/N at recmax=0 and recmax=2
        ratios = [rows[n][column] for n in sorted(rows)]
        assert max(ratios) < 1.8 * min(ratios), ratios

    # Shape 2: recmax=2 is substantially cheaper than recmax=0 (paper: ~3x).
    for n in rows:
        assert rows[n][4] < 0.6 * rows[n][1], (n, rows[n])

    # Shape 3: same ballpark as the paper's absolute e/N bands.
    assert all(40 <= rows[n][2] <= 130 for n in rows)   # paper 69-80
    assert all(12 <= rows[n][5] <= 50 for n in rows)    # paper 23-26
