"""Array-core scale gate: gridless batch construction with a wall budget.

Runs only the large construction point of ``benchmarks/harness.py``
(smoke: 20k peers, fig4: 100k peers) so CI can exercise the 100k-peer
claim without paying for the full harness.  Exits non-zero if the run
fails to converge or blows the wall-clock budget.

Usage (what ``make bench-array`` runs)::

    python benchmarks/bench_array_smoke.py [--scale smoke|fig4]
        [--out-dir DIR] [--budget-seconds S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from harness import SCALES, _write, bench_large_construction  # noqa: E402

from repro.fast import HAVE_NUMPY  # noqa: E402

#: Default wall budgets, sized ~10x the measured time on a busy 1-CPU
#: runner so the gate catches order-of-magnitude regressions, not noise.
DEFAULT_BUDGETS = {"smoke": 120.0, "fig4": 900.0}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument(
        "--out-dir", type=Path, default=_ROOT,
        help="directory for BENCH_array_smoke.json (default: repo root)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None,
        help="fail if the construction takes longer (default per scale)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    budget = (
        args.budget_seconds
        if args.budget_seconds is not None
        else DEFAULT_BUDGETS[scale.name]
    )

    if not HAVE_NUMPY:
        # The batch engine is numpy-only by design; without it this gate
        # has nothing to measure (the strict kernel is covered by
        # bench-regression).
        print("[bench-array] SKIP: numpy not available")
        return 0

    print(
        f"[bench-array] scale={scale.name}: N={scale.large_peers} "
        f"maxl={scale.large_maxl} refmax={scale.refmax} "
        f"(budget {budget:.0f}s)"
    )
    results = bench_large_construction(scale)
    args.out_dir.mkdir(parents=True, exist_ok=True)
    path = _write(args.out_dir, "array_smoke", scale, results)
    print(
        f"[bench-array] converged={results['converged']} "
        f"exchanges={results['exchanges']:,} in {results['seconds']:.1f}s "
        f"({results['exchanges_per_second']:,.0f} exch/s, "
        f"{results['bytes_per_peer']:.0f} B/peer, "
        f"peak RSS {results['peak_rss_bytes'] / 1e6:,.0f} MB)"
    )
    print(f"[bench-array] wrote {path}")
    if not results["converged"]:
        print("[bench-array] FAIL: construction did not converge", file=sys.stderr)
        return 1
    if results["seconds"] > budget:
        print(
            f"[bench-array] FAIL: {results['seconds']:.1f}s exceeded the "
            f"{budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    print("[bench-array] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
