"""Array-core scale gate: gridless construction + batch search, budgeted.

Runs the two array-core claims of ``benchmarks/harness.py`` that CI must
hold on every PR without paying for the full harness:

1. **Gridless batch construction** at the scale's large point (smoke:
   20k peers, fig4: 100k peers) must converge inside a wall budget.
2. **Batch query plane**: ``BatchQueryEngine.search_many`` must beat the
   object ``SearchEngine`` loop by the scale's speedup floor while
   matching its found rate and messages-per-search within the
   equivalence tolerance (twin seeds, statistical — see
   ``harness.bench_array_search``).

Exits non-zero if either claim fails.  Usage (what ``make bench-array``
runs)::

    python benchmarks/bench_array_smoke.py [--scale smoke|fig4]
        [--out-dir DIR] [--budget-seconds S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from harness import (  # noqa: E402
    SCALES,
    _write,
    bench_array_search,
    bench_large_construction,
)

from repro.core.grid import PGrid  # noqa: E402
from repro.fast import HAVE_NUMPY  # noqa: E402
from repro.sim import rng as rngmod  # noqa: E402
from repro.sim.builder import GridBuilder  # noqa: E402

#: Default wall budgets for the construction phase, sized ~10x the
#: measured time on a busy 1-CPU runner so the gate catches
#: order-of-magnitude regressions, not noise.
DEFAULT_BUDGETS = {"smoke": 120.0, "fig4": 900.0}

#: Minimum batch-vs-object search speedup per scale.  The fig4 floor is
#: the tentpole acceptance criterion; the smoke floor is lower because
#: 500 queries amortize the per-wave numpy overhead less.
SPEEDUP_FLOORS = {"smoke": 3.0, "fig4": 5.0}

#: Maximum relative found-rate / messages-per-search deviation between
#: the two engines (they draw from different RNG streams, so exact
#: equality is not expected; 2% is the statistical-equivalence bound).
EQUIVALENCE_TOLERANCE = 0.02


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument(
        "--out-dir", type=Path, default=_ROOT,
        help="directory for BENCH_array_smoke.json (default: repo root)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None,
        help="fail if the construction takes longer (default per scale)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    budget = (
        args.budget_seconds
        if args.budget_seconds is not None
        else DEFAULT_BUDGETS[scale.name]
    )

    if not HAVE_NUMPY:
        # The batch engines are numpy-only by design; without it this
        # gate has nothing to measure (the strict kernel is covered by
        # bench-regression).
        print("[bench-array] SKIP: numpy not available")
        return 0

    print(
        f"[bench-array] scale={scale.name}: N={scale.large_peers} "
        f"maxl={scale.large_maxl} refmax={scale.refmax} "
        f"(budget {budget:.0f}s)"
    )
    large = bench_large_construction(scale)
    print(
        f"[bench-array] converged={large['converged']} "
        f"exchanges={large['exchanges']:,} in {large['seconds']:.1f}s "
        f"({large['exchanges_per_second']:,.0f} exch/s, "
        f"{large['bytes_per_peer']:.0f} B/peer, "
        f"peak RSS {large['peak_rss_bytes'] / 1e6:,.0f} MB)"
    )

    # Batch-search gate on a converged object grid at the scale's core
    # sizing (same build as harness.bench_construction's full run).
    print(
        f"[bench-array] batch search: N={scale.n_peers} "
        f"queries={scale.n_searches}"
    )
    grid = PGrid(scale.config, rng=rngmod.derive(scale.seed, "construction"))
    grid.add_peers(scale.n_peers)
    GridBuilder(grid).build(threshold_fraction=0.985, max_exchanges=10_000_000)
    search = bench_array_search(scale, grid)
    print(
        f"[bench-array] search speedup {search['speedup']:.1f}x "
        f"(object {search['object']['searches_per_second']:,.0f}/s, "
        f"batch {search['batch']['searches_per_second']:,.0f}/s); "
        f"found-rate delta {search['found_rate_rel_delta']:.3%}, "
        f"messages delta {search['mean_messages_rel_delta']:.3%}"
    )

    args.out_dir.mkdir(parents=True, exist_ok=True)
    path = _write(
        args.out_dir, "array_smoke", scale,
        {"large_construction": large, "batch_search": search},
        engines=("batch-gridless", "object-dfs", "batch-dfs"),
    )
    print(f"[bench-array] wrote {path}")

    failures = []
    if not large["converged"]:
        failures.append("construction did not converge")
    if large["seconds"] > budget:
        failures.append(
            f"construction {large['seconds']:.1f}s exceeded the "
            f"{budget:.0f}s budget"
        )
    floor = SPEEDUP_FLOORS[scale.name]
    if search["speedup"] < floor:
        failures.append(
            f"batch search speedup {search['speedup']:.2f}x < {floor:.1f}x floor"
        )
    for metric in ("found_rate_rel_delta", "mean_messages_rel_delta"):
        if search[metric] > EQUIVALENCE_TOLERANCE:
            failures.append(
                f"batch search {metric} {search[metric]:.3%} > "
                f"{EQUIVALENCE_TOLERANCE:.0%} equivalence tolerance"
            )
    if failures:
        for line in failures:
            print(f"[bench-array] FAIL: {line}", file=sys.stderr)
        return 1
    print("[bench-array] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
