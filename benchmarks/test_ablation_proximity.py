"""AB10 — extension: proximity-aware reference selection and routing.

§6 lists "knowledge on the network topology" among the optimization
levers.  Peers get coordinates in a unit square; the benchmark crosses
random vs. nearest reference *retention* (construction) with random vs.
nearest-first *routing* (search).  Expected shape: hop counts and success
are unchanged (the trie fixes them); end-to-end latency falls step by
step, with both levers together cutting it by more than half.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_proximity(benchmark):
    result = benchmark.pedantic(ablations.run_proximity, rounds=1, iterations=1)
    publish_result(result, float_digits=4)

    rows = {(row[0], row[1]): row for row in result.rows}
    baseline = rows[("random", "random")]
    both = rows[("proximity", "proximity")]

    # Shape 1: latency falls by more than half with both levers on.
    assert both[4] < 0.6 * baseline[4], (both[4], baseline[4])

    # Shape 2: each single lever already helps.
    assert rows[("random", "proximity")][4] < baseline[4]
    assert rows[("proximity", "random")][4] < baseline[4]

    # Shape 3: success and hop counts are unaffected (within noise).
    for row in rows.values():
        assert row[2] > baseline[2] - 0.02
        assert abs(row[3] - baseline[3]) < 0.5
