"""F5 — §5.2 Fig. 5: fraction of replicas found vs. messages spent.

Paper shape: breadth-first search is by far superior — at comparable
message budgets it identifies a much larger fraction of replicas; repeated
depth-first and depth-first+buddies perform comparably to each other.
"""

from __future__ import annotations

import functools

from repro.experiments import fig5_update_strategies

from conftest import publish_result


def _interpolate_coverage(points, budget):
    """Best coverage achievable within *budget* messages for a strategy."""
    feasible = [coverage for messages, coverage in points if messages <= budget]
    return max(feasible, default=0.0)


def test_fig5_update_strategies(benchmark, s52_profile, s52_grid):
    run = functools.partial(
        fig5_update_strategies.run, s52_profile, grid=s52_grid
    )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result, float_digits=3)

    series: dict[str, list[tuple[float, float]]] = {}
    for strategy, _effort, messages, coverage in result.rows:
        series.setdefault(strategy, []).append((messages, coverage))

    bfs = series["breadth-first"]
    dfs = series["repeated DFS"]
    buddies = series["DFS + buddies"]

    # Shape 1: at the DFS strategies' largest budget, BFS achieves strictly
    # better coverage than repeated DFS at the same or lower cost.
    budget = max(messages for messages, _ in dfs)
    assert _interpolate_coverage(bfs, budget) > _interpolate_coverage(
        dfs, budget
    ), (bfs, dfs)

    # Shape 2: BFS reaches most replicas at its higher effort levels.
    assert max(coverage for _, coverage in bfs) > 0.5

    # Shape 3: repeated DFS and DFS+buddies are the same order of
    # magnitude (the paper: "perform comparably"), with buddies at least
    # as good since forwarding only adds coverage.
    assert (
        _interpolate_coverage(buddies, budget)
        >= 0.8 * _interpolate_coverage(dfs, budget)
    )

    # Shape 4: every strategy's coverage is monotone in effort (more
    # messages, more replicas) up to sampling noise.
    for name, points in series.items():
        coverages = [coverage for _, coverage in points]
        assert coverages[-1] >= coverages[0], (name, coverages)
