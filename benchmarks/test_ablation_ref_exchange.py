"""AB4 — ablation: reference exchange at all shared levels vs. only ``lc``.

The paper refreshes reference sets only at the deepest shared level of the
two meeting peers.  Expected shape: exchanging at every shared level keeps
shallow levels fresher/denser without changing construction cost class,
and search robustness under churn does not degrade.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_ref_exchange(benchmark):
    result = benchmark.pedantic(
        ablations.run_ref_exchange, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    by_variant = {row[0]: row for row in result.rows}
    paper = by_variant["paper (level lc only)"]
    all_levels = by_variant["all shared levels"]

    # Shape 1: same construction-cost class.
    assert all_levels[1] < 3 * paper[1], (all_levels[1], paper[1])

    # Shape 2: at least comparable routing density.
    assert all_levels[2] >= 0.9 * paper[2]

    # Shape 3: search success under churn within noise or better.
    assert all_levels[3] >= paper[3] - 0.05
