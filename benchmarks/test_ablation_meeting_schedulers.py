"""AB11 — extension: meeting schedulers.

The paper leaves the meeting process open; this benchmark compares its
uniform random pairs against a prefix-biased process (meetings induced by
search traffic) and a round-robin sweep.  Measured shape (a genuine
finding of this reproduction): round-robin converges with ~30% fewer
exchanges than uniform — the convergence bill is gated by the laggard
peers that uniform sampling keeps missing — while prefix-biased meetings
are *worse* than uniform (related peers mostly trigger case-4 recursion
instead of fresh splits).
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_meeting_schedulers(benchmark):
    result = benchmark.pedantic(
        ablations.run_meeting_schedulers, rounds=1, iterations=1
    )
    publish_result(result)

    rows = {row[0].split(" ")[0]: row for row in result.rows}
    uniform = rows["uniform"]
    biased = rows["prefix-biased"]
    round_robin = rows["round-robin"]

    # Shape 1: everything converges with a clean invariant.
    for row in result.rows:
        assert row[1] is True
        assert row[5] == 0

    # Shape 2: round-robin needs fewer exchanges than uniform.
    assert round_robin[3] < 0.9 * uniform[3], (round_robin[3], uniform[3])

    # Shape 3: prefix bias does not beat uniform (and is typically worse).
    assert biased[3] > 0.9 * uniform[3], (biased[3], uniform[3])
