"""Micro-benchmarks of the core operations (proper multi-round timing).

The table/figure benchmarks above are macro experiments run once; these
time the primitive operations a deployment's throughput hangs on — one
search, one exchange meeting, one breadth-first update, one range query,
one snapshot round trip — with pytest-benchmark's statistical machinery.
No paper claims here; these guard against performance regressions in the
library itself.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.core.updates import UpdateEngine, UpdateStrategy
from repro.sim.builder import GridBuilder
from repro.sim.persistence import grid_from_dict, grid_to_dict
from repro.sim.workload import UniformKeyWorkload


@pytest.fixture(scope="module")
def micro_grid():
    grid = PGrid(
        PGridConfig(maxl=7, refmax=5, recmax=2, recursion_fanout=2),
        rng=random.Random(1234),
    )
    grid.add_peers(1024)
    GridBuilder(grid).build(max_exchanges=2_000_000)
    return grid


def test_micro_search(benchmark, micro_grid):
    engine = SearchEngine(micro_grid)
    keys = UniformKeyWorkload(6, random.Random(1)).keys(512)
    starts = random.Random(2).choices(micro_grid.addresses(), k=512)
    cycle = itertools.cycle(zip(starts, keys))

    def one_search():
        start, key = next(cycle)
        return engine.query_from(start, key)

    result = benchmark(one_search)
    assert result is not None


def test_micro_exchange_meeting(benchmark):
    grid = PGrid(
        PGridConfig(maxl=7, refmax=5, recmax=2, recursion_fanout=2),
        rng=random.Random(5),
    )
    grid.add_peers(1024)
    from repro.core.exchange import ExchangeEngine

    engine = ExchangeEngine(grid)
    rng = random.Random(6)
    addresses = grid.addresses()

    def one_meeting():
        a, b = rng.sample(addresses, 2)
        engine.meet(a, b)

    benchmark(one_meeting)


def test_micro_bfs_update(benchmark, micro_grid):
    engine = UpdateEngine(micro_grid)
    keys = UniformKeyWorkload(6, random.Random(3)).keys(256)
    starts = random.Random(4).choices(micro_grid.addresses(), k=256)
    counter = itertools.count()
    cycle = itertools.cycle(zip(starts, keys))

    def one_update():
        start, key = next(cycle)
        return engine.propagate(
            start,
            DataRef(key=key, holder=0, version=next(counter) + 1),
            strategy=UpdateStrategy.BFS,
            recbreadth=2,
        )

    result = benchmark(one_update)
    assert result.reached


def test_micro_range_query(benchmark, micro_grid):
    engine = SearchEngine(micro_grid)
    rng = random.Random(7)

    def one_range():
        low_value = rng.randrange(0, 2**6 - 4)
        low = format(low_value, "06b")
        high = format(low_value + 3, "06b")
        return engine.query_range(rng.randrange(1024), low, high)

    result = benchmark(one_range)
    assert result.cover


def test_micro_snapshot_roundtrip(benchmark, micro_grid):
    def roundtrip():
        return grid_from_dict(grid_to_dict(micro_grid))

    clone = benchmark(roundtrip)
    assert len(clone) == len(micro_grid)
