"""D1 — §6 table: P-Grid vs. central server vs. flooding, measured.

Paper shape (asymptotic, here measured): P-Grid queries cost O(log N)
messages and per-peer storage stays small; flooding queries cost O(N);
the central server stores O(D) and serves every query itself.
"""

from __future__ import annotations

import math

from repro.experiments import scaling_comparison

from conftest import publish_result


def test_discussion_scaling(benchmark):
    result = benchmark.pedantic(
        scaling_comparison.run, rounds=1, iterations=1
    )
    publish_result(result)

    rows = {row[0]: row for row in result.rows}
    ns = sorted(rows)
    smallest, largest = ns[0], ns[-1]
    growth = largest / smallest

    # Shape 1: flooding messages grow ~linearly with N.
    flood_growth = rows[largest][7] / rows[smallest][7]
    assert flood_growth > 0.5 * growth, (flood_growth, growth)

    # Shape 2: P-Grid messages grow ~logarithmically — far slower than N.
    pgrid_growth = rows[largest][1] / rows[smallest][1]
    assert pgrid_growth < 0.25 * growth, (pgrid_growth, growth)
    assert rows[largest][1] <= 3 * math.log2(largest)

    # Shape 3: central server storage grows linearly with D while P-Grid
    # per-peer storage stays orders of magnitude below it at scale.
    assert rows[largest][6] > 10 * rows[largest][3]

    # Shape 4: P-Grid answers queries reliably in the failure-free setting.
    assert all(rows[n][2] > 0.95 for n in ns)

    # Shape 5: a central query is always exactly one message.
    assert all(rows[n][4] == 1 for n in ns)
