"""C1 — supplementary: convergence trajectory of construction.

Expected shape: average depth grows monotonically with diminishing
returns (each deeper level costs about twice the previous one — the T2
law seen as a curve), and the recursive variant (recmax=2) reaches the
threshold with several times fewer exchanges than recmax=0 at the paper's
N=500 / maxl=6 size.
"""

from __future__ import annotations

from repro.experiments import convergence

from conftest import publish_result


def test_convergence_trajectory(benchmark):
    result = benchmark.pedantic(convergence.run, rounds=1, iterations=1)
    publish_result(result)

    by_recmax: dict[int, list[tuple[float, float]]] = {}
    for recmax, exchanges, depth in result.rows:
        by_recmax.setdefault(recmax, []).append((exchanges, depth))

    # Shape 1: monotone trajectories.
    for recmax, points in by_recmax.items():
        exchange_series = [e for e, _ in points]
        depth_series = [d for _, d in points]
        assert exchange_series == sorted(exchange_series), recmax
        assert depth_series == sorted(depth_series), recmax

    # Shape 2: diminishing returns for recmax=0 — the second half of the
    # exchanges buys less than half of the final depth gain.
    points = by_recmax[0]
    final_exchanges, final_depth = points[-1]
    halfway_depth = max(
        depth for exchanges, depth in points
        if exchanges <= final_exchanges / 2
    )
    assert halfway_depth > final_depth / 2

    # Shape 3: recursion dominates at this size (paper T3: ~3x cheaper).
    finals = result.config["final_exchanges"]
    assert finals[2] < 0.6 * finals[0], finals
