"""Perf regression gate over ``BENCH_micro.json`` / ``BENCH_construction.json``.

The micro benchmark (``benchmarks/harness.py``) times each keyspace
hot-path twice — a straightforward reference implementation ("baseline")
and the shipped fast path ("current") — and records their ratio as
``speedup``.  That ratio is a property of the *code*, not the machine:
both sides run in the same process on the same hardware, so comparing
the committed baseline's ratios against a fresh run's is meaningful on
any CI runner, unlike raw ns/op numbers.

The construction benchmark records the same kind of same-run ratios for
the construction engines: incremental vs. naive depth tracking, the
strict array kernel vs. the object core, and the vectorized batch engine
vs. the object core.  Passing ``--fresh-construction`` gates those too
(with a wider tolerance — the two sides are separate timed runs, not
interleaved best-of-N loops, so they wear more scheduler noise).

This script fails (exit 1) if any gated ratio has dropped more than the
applicable tolerance below the committed baseline's, i.e. someone slowed
a fast path back down relative to its reference.

Passing ``--fresh-array-search`` additionally gates the batch query
plane (``BENCH_array_search.json``): the batch-vs-object search speedup
must stay within tolerance of the committed baseline's ratio, and the
fresh run's found-rate / messages-per-search deltas must stay inside the
absolute statistical-equivalence bound (the two engines draw from
different RNG streams, so equality is statistical, never exact).

The committed gate baselines live at
``benchmarks/baselines/BENCH_micro_smoke.json``,
``benchmarks/baselines/BENCH_construction_smoke.json`` and
``benchmarks/baselines/BENCH_array_search_smoke.json`` (smoke scale, so
CI can regenerate the comparison in seconds; scales must match — the
fast paths' advantage depends on the grid sizing).

Usage (what ``make bench-regression`` runs)::

    python benchmarks/harness.py --scale smoke --out-dir benchmarks/results/fresh
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_micro_smoke.json \
        --fresh benchmarks/results/fresh/BENCH_micro.json \
        --fresh-construction benchmarks/results/fresh/BENCH_construction.json \
        --fresh-array-search benchmarks/results/fresh/BENCH_array_search.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Ratios below this are timing noise, not a meaningful fast path; a
#: hot-path whose committed speedup is ~1x cannot "regress by 10%".
MIN_MEANINGFUL_SPEEDUP = 1.2


def load_speedups(path: Path) -> tuple[str, dict[str, float]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "micro":
        raise SystemExit(f"{path}: not a micro benchmark file")
    return payload["scale"], {
        name: row["speedup"] for name, row in payload["results"].items()
    }


def load_construction_ratios(path: Path) -> tuple[str, dict[str, float]]:
    """Same-run engine speedup ratios from a ``BENCH_construction.json``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "construction":
        raise SystemExit(f"{path}: not a construction benchmark file")
    results = payload["results"]
    ratios: dict[str, float] = {}
    depth = results.get("depth_tracking", {})
    if depth.get("speedup") is not None:
        ratios["depth_tracking"] = depth["speedup"]
    array = results.get("full_construction_array", {})
    if array.get("speedup_vs_object") is not None:
        ratios["array_strict_vs_object"] = array["speedup_vs_object"]
    batch = results.get("full_construction_batch", {})
    if batch.get("speedup_vs_object") is not None:
        ratios["batch_vs_object"] = batch["speedup_vs_object"]
    return payload["scale"], ratios


def load_array_search(path: Path) -> tuple[str, dict[str, float], dict[str, float]]:
    """Scale, speedup ratios and equivalence deltas from a
    ``BENCH_array_search.json``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "array_search":
        raise SystemExit(f"{path}: not an array_search benchmark file")
    results = payload["results"]
    ratios: dict[str, float] = {}
    if results.get("speedup") is not None:
        ratios["batch_search_vs_object"] = results["speedup"]
    deltas = {
        name: results[name]
        for name in ("found_rate_rel_delta", "mean_messages_rel_delta")
        if results.get(name) is not None
    }
    return payload["scale"], ratios, deltas


def check(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Return one failure line per regressed hot-path (empty = pass)."""
    failures = []
    for name, committed in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        if committed < MIN_MEANINGFUL_SPEEDUP:
            continue
        measured = fresh[name]
        floor = committed * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: speedup {measured:.2f}x < floor {floor:.2f}x "
                f"(committed baseline {committed:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path,
        default=_ROOT / "benchmarks" / "baselines" / "BENCH_micro_smoke.json",
        help="committed micro benchmark gate baseline",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="BENCH_micro.json from a fresh `harness.py` run",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup drop per hot-path (default 0.10)",
    )
    parser.add_argument(
        "--baseline-construction", type=Path,
        default=_ROOT / "benchmarks" / "baselines"
        / "BENCH_construction_smoke.json",
        help="committed construction benchmark gate baseline",
    )
    parser.add_argument(
        "--fresh-construction", type=Path, default=None,
        help="BENCH_construction.json from a fresh run "
             "(omit to gate micro hot-paths only)",
    )
    parser.add_argument(
        "--construction-tolerance", type=float, default=0.35,
        help="allowed fractional drop per construction ratio (default 0.35; "
             "wider than --tolerance because the two sides are separately "
             "timed full runs)",
    )
    parser.add_argument(
        "--baseline-array-search", type=Path,
        default=_ROOT / "benchmarks" / "baselines"
        / "BENCH_array_search_smoke.json",
        help="committed batch-search benchmark gate baseline",
    )
    parser.add_argument(
        "--fresh-array-search", type=Path, default=None,
        help="BENCH_array_search.json from a fresh run "
             "(omit to skip the batch query plane gate)",
    )
    parser.add_argument(
        "--equivalence-tolerance", type=float, default=0.02,
        help="max relative found-rate / messages-per-search deviation of "
             "the batch query plane from the object core (default 0.02)",
    )
    args = parser.parse_args(argv)

    baseline_scale, baseline = load_speedups(args.baseline)
    fresh_scale, fresh = load_speedups(args.fresh)
    if baseline_scale != fresh_scale:
        # Key lengths (and thus the fast paths' advantage) scale with the
        # grid sizing, so cross-scale ratios are not comparable.
        raise SystemExit(
            f"scale mismatch: baseline is {baseline_scale!r}, "
            f"fresh run is {fresh_scale!r}"
        )
    failures = check(baseline, fresh, args.tolerance)

    for name in sorted(baseline):
        committed = baseline[name]
        measured = fresh.get(name)
        gate = "gated" if committed >= MIN_MEANINGFUL_SPEEDUP else "noise-floor"
        shown = f"{measured:.2f}x" if measured is not None else "missing"
        print(f"[bench-regression] {name}: {committed:.2f}x -> {shown} ({gate})")

    if args.fresh_construction is not None:
        base_scale, base_ratios = load_construction_ratios(
            args.baseline_construction
        )
        run_scale, run_ratios = load_construction_ratios(args.fresh_construction)
        if base_scale != run_scale:
            raise SystemExit(
                f"construction scale mismatch: baseline is {base_scale!r}, "
                f"fresh run is {run_scale!r}"
            )
        failures += check(base_ratios, run_ratios, args.construction_tolerance)
        for name in sorted(base_ratios):
            committed = base_ratios[name]
            measured = run_ratios.get(name)
            gate = (
                "gated" if committed >= MIN_MEANINGFUL_SPEEDUP else "noise-floor"
            )
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(
                f"[bench-regression] construction {name}: "
                f"{committed:.2f}x -> {shown} ({gate})"
            )

    if args.fresh_array_search is not None:
        base_scale, base_ratios, _ = load_array_search(
            args.baseline_array_search
        )
        run_scale, run_ratios, run_deltas = load_array_search(
            args.fresh_array_search
        )
        if base_scale != run_scale:
            raise SystemExit(
                f"array-search scale mismatch: baseline is {base_scale!r}, "
                f"fresh run is {run_scale!r}"
            )
        # Ratio gate (speedup vs the committed baseline, separately timed
        # runs → construction tolerance) plus the absolute equivalence
        # gate on the fresh run's own deltas.
        failures += check(base_ratios, run_ratios, args.construction_tolerance)
        for name in sorted(base_ratios):
            committed = base_ratios[name]
            measured = run_ratios.get(name)
            gate = (
                "gated" if committed >= MIN_MEANINGFUL_SPEEDUP else "noise-floor"
            )
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(
                f"[bench-regression] array-search {name}: "
                f"{committed:.2f}x -> {shown} ({gate})"
            )
        for name, delta in sorted(run_deltas.items()):
            print(
                f"[bench-regression] array-search {name}: {delta:.3%} "
                f"(bound {args.equivalence_tolerance:.0%})"
            )
            if delta > args.equivalence_tolerance:
                failures.append(
                    f"array-search {name}: {delta:.3%} exceeds the "
                    f"{args.equivalence_tolerance:.0%} equivalence bound"
                )

    if failures:
        for line in failures:
            print(f"[bench-regression] FAIL {line}", file=sys.stderr)
        return 1
    print("[bench-regression] OK: no gated ratio regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
