"""Hot-path perf regression gate over ``BENCH_micro.json``.

The micro benchmark (``benchmarks/harness.py``) times each keyspace
hot-path twice — a straightforward reference implementation ("baseline")
and the shipped fast path ("current") — and records their ratio as
``speedup``.  That ratio is a property of the *code*, not the machine:
both sides run in the same process on the same hardware, so comparing
the committed baseline's ratios against a fresh run's is meaningful on
any CI runner, unlike raw ns/op numbers.

This script fails (exit 1) if any hot-path's fresh speedup has dropped
more than ``--tolerance`` (default 10%) below the committed baseline's,
i.e. someone slowed the fast path back down relative to the reference.

The committed gate baseline lives at
``benchmarks/baselines/BENCH_micro_smoke.json`` (smoke scale, so CI can
regenerate the comparison in seconds; scales must match — key lengths,
and thus the fast paths' advantage, depend on the grid sizing).

Usage (what ``make bench-regression`` runs)::

    python benchmarks/harness.py --scale smoke --out-dir benchmarks/results/fresh
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_micro_smoke.json \
        --fresh benchmarks/results/fresh/BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Ratios below this are timing noise, not a meaningful fast path; a
#: hot-path whose committed speedup is ~1x cannot "regress by 10%".
MIN_MEANINGFUL_SPEEDUP = 1.2


def load_speedups(path: Path) -> tuple[str, dict[str, float]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "micro":
        raise SystemExit(f"{path}: not a micro benchmark file")
    return payload["scale"], {
        name: row["speedup"] for name, row in payload["results"].items()
    }


def check(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Return one failure line per regressed hot-path (empty = pass)."""
    failures = []
    for name, committed in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        if committed < MIN_MEANINGFUL_SPEEDUP:
            continue
        measured = fresh[name]
        floor = committed * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: speedup {measured:.2f}x < floor {floor:.2f}x "
                f"(committed baseline {committed:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path,
        default=_ROOT / "benchmarks" / "baselines" / "BENCH_micro_smoke.json",
        help="committed micro benchmark gate baseline",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="BENCH_micro.json from a fresh `harness.py` run",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup drop per hot-path (default 0.10)",
    )
    args = parser.parse_args(argv)

    baseline_scale, baseline = load_speedups(args.baseline)
    fresh_scale, fresh = load_speedups(args.fresh)
    if baseline_scale != fresh_scale:
        # Key lengths (and thus the fast paths' advantage) scale with the
        # grid sizing, so cross-scale ratios are not comparable.
        raise SystemExit(
            f"scale mismatch: baseline is {baseline_scale!r}, "
            f"fresh run is {fresh_scale!r}"
        )
    failures = check(baseline, fresh, args.tolerance)

    for name in sorted(baseline):
        committed = baseline[name]
        measured = fresh.get(name)
        gate = "gated" if committed >= MIN_MEANINGFUL_SPEEDUP else "noise-floor"
        shown = f"{measured:.2f}x" if measured is not None else "missing"
        print(f"[bench-regression] {name}: {committed:.2f}x -> {shown} ({gate})")

    if failures:
        for line in failures:
            print(f"[bench-regression] FAIL {line}", file=sys.stderr)
        return 1
    print("[bench-regression] OK: no hot-path regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
