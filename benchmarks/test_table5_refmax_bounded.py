"""T5 — §5.1 table 5: refmax vs. cost with recursion fan-out bounded to 2.

Paper shape: "the results become very stable" — cost grows only mildly
with refmax (24k → 44k over refmax 1→4) instead of blowing up.
"""

from __future__ import annotations

import functools

from repro.experiments import table4_refmax

from conftest import publish_result


def test_table5_refmax_bounded(benchmark):
    run = functools.partial(table4_refmax.run, bounded_fanout=True)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result)

    costs = {row[0]: row[1] for row in result.rows}
    assert set(costs) == {1, 2, 3, 4}

    # Shape 1: no blow-up — refmax 4 costs at most ~2.5x refmax 1
    # (paper factor ~1.8; the unbounded variant's is ~5).
    assert costs[4] < 2.5 * costs[1], costs

    # Shape 2: beyond refmax=2 the curve is nearly flat (paper: 38k/41k/44k).
    assert costs[4] < 1.5 * costs[2], costs


def test_fanout_bound_beats_unbounded_at_high_refmax(benchmark):
    """Cross-table shape: at refmax=4 the bounded variant is far cheaper."""

    def run_both():
        unbounded = table4_refmax.run(
            bounded_fanout=False, refmax_values=(4,), seed=44
        )
        bounded = table4_refmax.run(
            bounded_fanout=True, refmax_values=(4,), seed=44
        )
        return unbounded.rows[0][1], bounded.rows[0][1]

    cost_unbounded, cost_bounded = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(
        f"\nrefmax=4: unbounded fan-out e={cost_unbounded}, "
        f"fan-out<=2 e={cost_bounded}"
    )
    assert cost_bounded < 0.7 * cost_unbounded
