"""A1 — §4 worked example: Gnutella-scale sizing via the planner.

All four paper numbers must reproduce exactly (closed form): key length
k = 10, refmax = 20, at least 20 409 peers, success probability > 99%.
"""

from __future__ import annotations

from repro.experiments import analysis_example

from conftest import publish_result


def test_analysis_example(benchmark):
    result = benchmark.pedantic(analysis_example.run, rounds=1, iterations=1)
    publish_result(result, float_digits=4)

    values = {row[0]: row[1] for row in result.rows}
    assert values["key length k"] == 10
    assert values["refmax"] == 20
    assert values["min peers (eq. 2)"] == 20409
    assert values["success probability (eq. 3)"] > 0.99
    assert values["storage used (bytes)"] == 10**5
