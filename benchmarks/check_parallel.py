"""Parallel-speedup gate over ``BENCH_search.json``.

The search benchmark times one experiment sweep twice — serially and over
the shared worker pool with ``jobs=2`` — and records
``parallel_trials.speedup`` plus ``bit_identical`` (the determinism
contract end-to-end).  Since the pool became process-global and is
pre-warmed outside the timed region, a parallel sweep must actually beat
the serial one wherever a second CPU exists; this gate enforces that the
``jobs 2`` path never slides back to the old
slower-than-serial behaviour (the 0.74x regression this fixes).

The speedup check is conditional on the *recorded* ``cpu_count`` of the
machine that produced the file: on a single-CPU runner two workers
time-slice one core, so no speedup is possible and only the
``bit_identical`` contract is enforced (the gate prints a skip notice).

Usage (what ``make check-parallel`` runs, after ``make bench``)::

    python benchmarks/check_parallel.py --fresh BENCH_search.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Required jobs=2 advantage over serial on a multi-core machine.  Well
#: below the ideal 2x to absorb scheduler noise, but decisively above
#: the old regressed behaviour (0.74x).
MIN_SPEEDUP = 1.0

#: Hard cap on the pickled snapshot-ref trial spec: the whole point of the
#: shared-memory snapshot is that the spec carries a name + layout table,
#: never grid arrays.  Generous headroom over the observed ~700 bytes.
MAX_SNAPSHOT_SPEC_BYTES = 8_192

#: ...and relative to shipping the grid: the ref must be a rounding error
#: next to the arrays it replaces.
MAX_SNAPSHOT_SPEC_RATIO = 0.05

#: The snapshot jobs=2 sweep may trail the gridship jobs=2 *speedup* by at
#: most this much — attach-once must never be slower than re-pickling the
#: grid per trial (tolerance absorbs scheduler noise on small sweeps).
SPEEDUP_TOLERANCE = 0.15


def _check_snapshot_scaling(results: dict, cpu_count: int) -> list[str]:
    """Gates over the ``snapshot_scaling`` section (absent in files from
    numpy-less runs or pre-snapshot harnesses — skipped with a notice)."""
    section = results.get("snapshot_scaling")
    failures: list[str] = []
    if not section or "skipped" in section:
        reason = (section or {}).get("skipped", "section missing (stale file?)")
        print(f"[check-parallel] snapshot scaling skipped: {reason}")
        return failures
    spec = section["pickled_trial_bytes"]
    print(
        f"[check-parallel] snapshot spec {spec['snapshot_ref']} B "
        f"(gridship {spec['gridship']} B, ratio {spec['ratio']:.3%}); "
        + ", ".join(
            f"jobs={jobs} {row['speedup_vs_serial']:.2f}x "
            f"attaches<={row['max_fresh_attaches_per_worker']}"
            for jobs, row in section["jobs"].items()
        )
    )
    if spec["snapshot_ref"] > MAX_SNAPSHOT_SPEC_BYTES:
        failures.append(
            f"snapshot trial spec pickles to {spec['snapshot_ref']} B > "
            f"cap {MAX_SNAPSHOT_SPEC_BYTES} B — grid state is leaking into "
            f"the spec"
        )
    if spec["ratio"] is not None and spec["ratio"] > MAX_SNAPSHOT_SPEC_RATIO:
        failures.append(
            f"snapshot spec is {spec['ratio']:.1%} of the gridship payload "
            f"(cap {MAX_SNAPSHOT_SPEC_RATIO:.0%})"
        )
    for jobs, row in section["jobs"].items():
        if row.get("bit_identical_to_serial") is not True:
            failures.append(
                f"snapshot sweep at jobs={jobs} was not bit-identical to serial"
            )
        if row.get("max_fresh_attaches_per_worker", 0) > 1:
            failures.append(
                f"jobs={jobs}: a worker attached the segment "
                f"{row['max_fresh_attaches_per_worker']} times — the grid must "
                f"cross the process boundary at most once per worker"
            )
    gridship = section.get("gridship", {})
    if gridship.get("results_identical_to_snapshot_path") is not True:
        failures.append(
            "gridship baseline results differ from the snapshot path — the "
            "two trial functions no longer compute the same thing"
        )
    jobs2 = section["jobs"].get("2")
    if cpu_count >= 2 and jobs2 is not None:
        snapshot_speedup = jobs2.get("speedup_vs_serial") or 0.0
        gridship_speedup = gridship.get("speedup") or 0.0
        if snapshot_speedup + SPEEDUP_TOLERANCE < gridship_speedup:
            failures.append(
                f"snapshot jobs=2 speedup {snapshot_speedup:.2f}x trails the "
                f"gridship path's {gridship_speedup:.2f}x by more than "
                f"{SPEEDUP_TOLERANCE:.2f}"
            )
    elif cpu_count < 2:
        print(
            "[check-parallel] single CPU recorded: snapshot speedup "
            "comparison skipped"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=_ROOT / "BENCH_search.json",
        help="BENCH_search.json from a fresh `harness.py` run",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help=f"required jobs=2 speedup on multi-core (default {MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    payload = json.loads(args.fresh.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "search":
        raise SystemExit(f"{args.fresh}: not a search benchmark file")
    trials = payload["results"]["parallel_trials"]
    cpu_count = payload.get("cpu_count") or 1
    speedup = trials.get("speedup")
    bit_identical = trials.get("bit_identical")

    print(
        f"[check-parallel] points={trials.get('points')} cpu_count={cpu_count} "
        f"serial={trials.get('serial_seconds', 0.0):.3f}s "
        f"jobs2={trials.get('parallel_jobs2_seconds', 0.0):.3f}s "
        f"speedup={speedup if speedup is None else f'{speedup:.2f}x'}"
    )

    failures = []
    failures.extend(_check_snapshot_scaling(payload["results"], cpu_count))
    if bit_identical is not True:
        failures.append("parallel run was not bit-identical to the serial run")
    if cpu_count >= 2:
        if speedup is None or speedup < args.min_speedup:
            shown = "none" if speedup is None else f"{speedup:.2f}x"
            failures.append(
                f"jobs=2 speedup {shown} < required {args.min_speedup:.2f}x "
                f"on a {cpu_count}-CPU machine (parallel sweeps must beat serial)"
            )
    else:
        print(
            "[check-parallel] single CPU recorded: speedup check skipped "
            "(two workers time-slice one core), determinism still enforced"
        )

    if failures:
        for line in failures:
            print(f"[check-parallel] FAIL {line}", file=sys.stderr)
        return 1
    print("[check-parallel] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
