"""Parallel-speedup gate over ``BENCH_search.json``.

The search benchmark times one experiment sweep twice — serially and over
the shared worker pool with ``jobs=2`` — and records
``parallel_trials.speedup`` plus ``bit_identical`` (the determinism
contract end-to-end).  Since the pool became process-global and is
pre-warmed outside the timed region, a parallel sweep must actually beat
the serial one wherever a second CPU exists; this gate enforces that the
``jobs 2`` path never slides back to the old
slower-than-serial behaviour (the 0.74x regression this fixes).

The speedup check is conditional on the *recorded* ``cpu_count`` of the
machine that produced the file: on a single-CPU runner two workers
time-slice one core, so no speedup is possible and only the
``bit_identical`` contract is enforced (the gate prints a skip notice).

Usage (what ``make check-parallel`` runs, after ``make bench``)::

    python benchmarks/check_parallel.py --fresh BENCH_search.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Required jobs=2 advantage over serial on a multi-core machine.  Well
#: below the ideal 2x to absorb scheduler noise, but decisively above
#: the old regressed behaviour (0.74x).
MIN_SPEEDUP = 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=_ROOT / "BENCH_search.json",
        help="BENCH_search.json from a fresh `harness.py` run",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help=f"required jobs=2 speedup on multi-core (default {MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    payload = json.loads(args.fresh.read_text(encoding="utf-8"))
    if payload.get("benchmark") != "search":
        raise SystemExit(f"{args.fresh}: not a search benchmark file")
    trials = payload["results"]["parallel_trials"]
    cpu_count = payload.get("cpu_count") or 1
    speedup = trials.get("speedup")
    bit_identical = trials.get("bit_identical")

    print(
        f"[check-parallel] points={trials.get('points')} cpu_count={cpu_count} "
        f"serial={trials.get('serial_seconds', 0.0):.3f}s "
        f"jobs2={trials.get('parallel_jobs2_seconds', 0.0):.3f}s "
        f"speedup={speedup if speedup is None else f'{speedup:.2f}x'}"
    )

    failures = []
    if bit_identical is not True:
        failures.append("parallel run was not bit-identical to the serial run")
    if cpu_count >= 2:
        if speedup is None or speedup < args.min_speedup:
            shown = "none" if speedup is None else f"{speedup:.2f}x"
            failures.append(
                f"jobs=2 speedup {shown} < required {args.min_speedup:.2f}x "
                f"on a {cpu_count}-CPU machine (parallel sweeps must beat serial)"
            )
    else:
        print(
            "[check-parallel] single CPU recorded: speedup check skipped "
            "(two workers time-slice one core), determinism still enforced"
        )

    if failures:
        for line in failures:
            print(f"[check-parallel] FAIL {line}", file=sys.stderr)
        return 1
    print("[check-parallel] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
