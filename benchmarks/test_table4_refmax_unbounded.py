"""T4 — §5.1 table 4: refmax vs. cost, unbounded recursion fan-out.

Paper shape: ``e`` grows steeply (the paper says "exponentially") with
refmax when every reference is recursed into — 25k → 126k over refmax 1→4,
a factor ~5.
"""

from __future__ import annotations

import functools

from repro.experiments import table4_refmax

from conftest import publish_result


def test_table4_refmax_unbounded(benchmark):
    run = functools.partial(table4_refmax.run, bounded_fanout=False)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish_result(result)

    costs = {row[0]: row[1] for row in result.rows}
    assert set(costs) == {1, 2, 3, 4}

    # Shape 1: monotone growth in refmax.
    assert costs[1] < costs[2] < costs[4]

    # Shape 2: super-linear blow-up — refmax 4 costs several times refmax 1
    # (paper factor ~5).
    assert costs[4] > 3.0 * costs[1], costs

    # Shape 3: the growth accelerates (convex): the 3->4 jump exceeds 1->2.
    assert costs[4] - costs[3] > costs[2] - costs[1], costs
