"""Benchmark-suite infrastructure.

Each benchmark file regenerates one paper table/figure (see DESIGN.md's
experiment index).  Results are printed to stdout AND written under
``benchmarks/results/`` (ASCII table + CSV + JSON) so they survive pytest's
capture; pytest-benchmark's own table reports the wall-clock cost of each
experiment.

Scale selection: ``REPRO_SCALE=quick|scaled|paper`` (default ``scaled``)
governs the §5.2 grid size; §5.1 tables always run at the paper's exact
sizes, which are cheap here.  The shared §5.2 grid is built once and cached
as a JSON snapshot under ``benchmarks/.cache``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.experiments.common import (  # noqa: E402
    ExperimentResult,
    build_section52_grid,
    section52_profile,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def publish_result(result: ExperimentResult, *, float_digits: int = 2) -> None:
    """Print the reproduced table/figure and persist it under results/."""
    text = result.to_text(float_digits=float_digits)
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(
        text + "\n", encoding="utf-8"
    )
    result.save(RESULTS_DIR)


@pytest.fixture(scope="session")
def s52_profile():
    """The active §5.2 profile (REPRO_SCALE)."""
    return section52_profile()


@pytest.fixture
def s52_grid(s52_profile):
    """A fresh copy of the §5.2 grid.

    Function-scoped on purpose: experiments attach their own churn oracle
    and (table 6) write index entries; reloading from the snapshot cache
    keeps benchmarks order-independent.  The expensive *construction* still
    happens only once — subsequent calls deserialize the cached snapshot.
    """
    return build_section52_grid(s52_profile)
