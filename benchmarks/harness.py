"""BENCH harness: repo-root perf baselines with before/after comparisons.

Writes three JSON files (default: the repository root) so every future PR
has a perf trajectory to compare against:

``BENCH_micro.json``
    Hot-path micro-operations (``key_value`` / ``interval_contains`` /
    ``common_prefix``), each timed against a *baseline* reference
    implementation preserving the pre-optimization code (per-call
    validation, ``Fraction`` arithmetic, Python character loops).

``BENCH_construction.json``
    Wall-clock of ``GridBuilder`` over a fixed meeting schedule with the
    incremental average-depth tracking versus a naive variant that rescans
    every peer per meeting (the O(N)-per-meeting "before" behavior), plus
    one full construction to convergence at the active scale.

``BENCH_search.json``
    End-to-end search throughput on the constructed grid, and a
    serial-vs-parallel experiment-trial run (``jobs=1`` vs ``jobs=2``)
    with a bit-identity check of the results.

``BENCH_array_search.json``
    The batch query plane versus the object core: the same query set
    resolved by a ``SearchEngine`` loop and by
    ``BatchQueryEngine.search_many`` on twin seeds, reporting the
    speedup and the found-rate / messages-per-search deltas that the
    regression gate holds within tolerance.

Scales: ``--scale fig4`` (default — the §5.2 Fig. 4 sizing ratios) or
``--scale smoke`` (seconds, for CI).  Usage::

    python benchmarks/harness.py [--scale fig4|smoke] [--out-dir DIR]
        [--no-million]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from fractions import Fraction
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import keys as keyspace  # noqa: E402
from repro.core.config import PGridConfig  # noqa: E402
from repro.core.grid import PGrid  # noqa: E402
from repro.core.search import SearchEngine  # noqa: E402
from repro.experiments.common import run_experiment_points  # noqa: E402
from repro.perf.parallel import warm_pool  # noqa: E402
from repro.experiments.table1_construction_scaling import (  # noqa: E402
    construction_cost,
)
from repro.fast import (  # noqa: E402
    HAVE_NUMPY,
    ArrayGrid,
    ArrayGridBuilder,
    BatchQueryEngine,
    grid_memory_report,
    peak_rss_bytes,
)
from repro.sim import rng as rngmod  # noqa: E402
from repro.sim.builder import GridBuilder  # noqa: E402


@dataclass(frozen=True)
class BenchScale:
    """Sizing of one harness run."""

    name: str
    n_peers: int
    maxl: int
    refmax: int
    recmax: int
    recursion_fanout: int
    depth_meetings: int      # fixed meeting budget for the depth comparison
    n_searches: int
    micro_repeats: int
    trial_points: int        # parallel-vs-serial experiment points
    trial_peers: int
    large_peers: int = 0     # gridless batch construction point (0 = skip)
    large_maxl: int = 0
    million_peers: int = 0   # headline gridless point (0 = skip)
    million_maxl: int = 0
    seed: int = 20020101

    @property
    def config(self) -> PGridConfig:
        return PGridConfig(
            maxl=self.maxl,
            refmax=self.refmax,
            recmax=self.recmax,
            recursion_fanout=self.recursion_fanout,
        )


SCALES = {
    # The §5.2 / Fig. 4 sizing ratios at the "scaled" profile's N.
    "fig4": BenchScale(
        name="fig4",
        n_peers=4_000,
        maxl=8,
        refmax=20,
        recmax=2,
        recursion_fanout=2,
        depth_meetings=8_000,
        n_searches=5_000,
        micro_repeats=200_000,
        trial_points=4,
        trial_peers=300,
        large_peers=100_000,
        large_maxl=12,
        million_peers=1_000_000,
        million_maxl=14,
    ),
    # CI smoke: every phase in seconds.
    "smoke": BenchScale(
        name="smoke",
        n_peers=400,
        maxl=6,
        refmax=5,
        recmax=2,
        recursion_fanout=2,
        depth_meetings=1_500,
        n_searches=500,
        micro_repeats=20_000,
        trial_points=2,
        trial_peers=150,
        large_peers=20_000,
        large_maxl=10,
    ),
}


# -- baseline (pre-optimization) reference implementations -----------------------
#
# Frozen copies of the seed's hot-path code, kept here so the micro bench
# always reports the before/after delta of the integer-bit fast paths.


def _is_valid_key_baseline(key: str) -> bool:
    return all(bit in ("0", "1") for bit in key)


def _key_value_baseline(key: str) -> Fraction:
    if not _is_valid_key_baseline(key):
        raise ValueError(key)
    if not key:
        return Fraction(0)
    return Fraction(int(key, 2), 2 ** len(key))


def _interval_contains_baseline(key: str, query: str) -> bool:
    low = _key_value_baseline(key)
    high = low + Fraction(1, 2 ** len(key))
    value = _key_value_baseline(query)
    return low <= value < high


def _common_prefix_baseline(a: str, b: str) -> str:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


class NaiveDepthBuilder(GridBuilder):
    """The "before" builder: full O(N) peer rescan per meeting.

    Only the depth bookkeeping differs from :class:`GridBuilder`; RNG
    consumption is untouched, so both variants replay the identical meeting
    schedule for the same seed and their speedup isolates the
    incremental-depth fix alone.
    """

    def _average_depth(self) -> float:
        return self.grid.average_path_length()


# -- phases ---------------------------------------------------------------------


def _time(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum over *repeats* timed passes — the noise-robust estimator
    the regression gate (benchmarks/check_regression.py) depends on:
    single-pass micro timings vary run-to-run by far more than the gate's
    10% tolerance."""
    return min(_time(fn) for _ in range(repeats))


def bench_micro(scale: BenchScale) -> dict:
    rng = rngmod.derive(scale.seed, "micro")
    pairs = [
        (
            keyspace.random_key(rng.randint(1, scale.maxl), rng),
            keyspace.random_key(rng.randint(1, scale.maxl), rng),
        )
        for _ in range(512)
    ]

    def loop(fn):
        def body() -> None:
            ops = scale.micro_repeats // len(pairs)
            for _ in range(ops):
                for a, b in pairs:
                    fn(a, b)
        return body

    cases = {
        "key_value": (
            lambda a, b: _key_value_baseline(a),
            lambda a, b: keyspace.key_value(a),
        ),
        "key_value_unchecked": (
            lambda a, b: _key_value_baseline(a),
            lambda a, b: keyspace._key_value_unchecked(a),
        ),
        "interval_contains": (
            _interval_contains_baseline,
            keyspace.interval_contains,
        ),
        "interval_contains_unchecked": (
            _interval_contains_baseline,
            keyspace._interval_contains_unchecked,
        ),
        "common_prefix": (
            _common_prefix_baseline,
            keyspace.common_prefix,
        ),
    }
    results = {}
    ops = (scale.micro_repeats // len(pairs)) * len(pairs)
    for name, (baseline, current) in cases.items():
        for a, b in pairs:  # sanity: both paths agree before timing
            assert baseline(a, b) == current(a, b)
        baseline_s = _best_of(loop(baseline))
        current_s = _best_of(loop(current))
        results[name] = {
            "ops": ops,
            "baseline_seconds": baseline_s,
            "current_seconds": current_s,
            "baseline_ns_per_op": baseline_s / ops * 1e9,
            "current_ns_per_op": current_s / ops * 1e9,
            "speedup": baseline_s / current_s if current_s else None,
        }
    return results


def _run_depth_variant(scale: BenchScale, builder_cls) -> tuple[float, float]:
    """Run *depth_meetings* meetings; return (seconds, final avg depth)."""
    grid = PGrid(scale.config, rng=rngmod.derive(scale.seed, "depth-bench"))
    grid.add_peers(scale.n_peers)
    builder = builder_cls(grid)
    start = time.perf_counter()
    builder.build(max_meetings=scale.depth_meetings, threshold_fraction=1.0)
    elapsed = time.perf_counter() - start
    return elapsed, grid.average_path_length()


def bench_construction(scale: BenchScale) -> tuple[dict, PGrid]:
    naive_s, naive_depth = _run_depth_variant(scale, NaiveDepthBuilder)
    incremental_s, incremental_depth = _run_depth_variant(scale, GridBuilder)
    assert naive_depth == incremental_depth, (
        "depth-tracking variants diverged — the comparison is void"
    )

    # Full construction to convergence with the production builder.
    grid = PGrid(scale.config, rng=rngmod.derive(scale.seed, "construction"))
    grid.add_peers(scale.n_peers)
    start = time.perf_counter()
    report = GridBuilder(grid).build(
        threshold_fraction=0.985, max_exchanges=10_000_000
    )
    full_s = time.perf_counter() - start
    results = {
        "depth_tracking": {
            "meetings": scale.depth_meetings,
            "naive_rescan_seconds": naive_s,
            "incremental_seconds": incremental_s,
            "speedup": naive_s / incremental_s if incremental_s else None,
            "final_average_depth": incremental_depth,
        },
        "full_construction": {
            "n_peers": scale.n_peers,
            "maxl": scale.maxl,
            "converged": report.converged,
            "exchanges": report.exchanges,
            "meetings": report.meetings,
            "average_depth": report.average_depth,
            "seconds": full_s,
            "exchanges_per_second": report.exchanges / full_s if full_s else None,
        },
    }

    # Strict array kernel, twin-seeded: must replay the object run
    # bit-for-bit, so its speedup is apples-to-apples by construction.
    arr_pgrid = PGrid(scale.config, rng=rngmod.derive(scale.seed, "construction"))
    arr_pgrid.add_peers(scale.n_peers)
    agrid = ArrayGrid.from_pgrid(arr_pgrid)
    start = time.perf_counter()
    arr_report = ArrayGridBuilder(agrid).build(
        threshold_fraction=0.985, max_exchanges=10_000_000
    )
    arr_s = time.perf_counter() - start
    assert arr_report.stats == report.stats, (
        "strict array kernel diverged from the object core — bit-identity broken"
    )
    results["full_construction_array"] = {
        "engine": "array-strict",
        "accelerated_rng": HAVE_NUMPY,
        "bit_identical_to_object": True,
        "exchanges": arr_report.exchanges,
        "seconds": arr_s,
        "exchanges_per_second": arr_report.exchanges / arr_s if arr_s else None,
        "speedup_vs_object": full_s / arr_s if arr_s else None,
    }

    # Vectorized batch engine: deterministic, statistically equivalent,
    # not bit-identical (different meeting interleaving + numpy RNG).
    if HAVE_NUMPY:
        from repro.fast import BatchGridBuilder

        batch_pgrid = PGrid(
            scale.config, rng=rngmod.derive(scale.seed, "construction")
        )
        batch_pgrid.add_peers(scale.n_peers)
        batch_agrid = ArrayGrid.from_pgrid(batch_pgrid)
        builder = BatchGridBuilder(
            batch_agrid, seed=rngmod.derive_seed(scale.seed, "construction-batch")
        )
        start = time.perf_counter()
        batch_report = builder.build(
            threshold_fraction=0.985, max_exchanges=10_000_000
        )
        batch_s = time.perf_counter() - start
        results["full_construction_batch"] = {
            "engine": "batch",
            "converged": batch_report.converged,
            "exchanges": batch_report.exchanges,
            "meetings": batch_report.meetings,
            "average_depth": batch_report.average_depth,
            "seconds": batch_s,
            "exchanges_per_second": (
                batch_report.exchanges / batch_s if batch_s else None
            ),
            "speedup_vs_object": full_s / batch_s if batch_s else None,
        }
        results["memory"] = grid_memory_report(pgrid=grid, agrid=batch_agrid)
    else:
        results["full_construction_batch"] = {"skipped": "numpy not available"}
        results["memory"] = grid_memory_report(pgrid=grid)
    return results, grid


def _gridless_construction(
    scale: BenchScale, n_peers: int, maxl: int, seed_label: str
) -> dict:
    """One gridless batch construction point on numpy state only."""
    from repro.fast import BatchGridBuilder

    config = PGridConfig(
        maxl=maxl,
        refmax=scale.refmax,
        recmax=scale.recmax,
        recursion_fanout=scale.recursion_fanout,
    )
    builder = BatchGridBuilder(
        n=n_peers,
        config=config,
        seed=rngmod.derive_seed(scale.seed, seed_label),
    )
    # Convergence cost grows linearly in N (~250 exchanges/peer observed),
    # so the cap must scale with the point or the 1M run starves.
    max_exchanges = max(100_000_000, 600 * n_peers)
    start = time.perf_counter()
    report = builder.build(
        threshold_fraction=0.985, max_exchanges=max_exchanges
    )
    elapsed = time.perf_counter() - start
    sizes = builder.replication_sizes()
    state_bytes = builder.memory_bytes()
    return {
        "engine": "batch-gridless",
        "n_peers": n_peers,
        "maxl": maxl,
        "refmax": scale.refmax,
        "converged": report.converged,
        "exchanges": report.exchanges,
        "meetings": report.meetings,
        "exchanges_per_peer": report.exchanges_per_peer,
        "average_depth": report.average_depth,
        "seconds": elapsed,
        "exchanges_per_second": report.exchanges / elapsed if elapsed else None,
        "mean_replication": float(sizes.mean()),
        "max_replication": int(sizes.max()),
        "replication_histogram": {
            str(k): v for k, v in sorted(builder.replication_histogram().items())
        },
        "state_bytes": state_bytes,
        "bytes_per_peer": round(state_bytes / n_peers, 1),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def bench_large_construction(scale: BenchScale) -> dict:
    """The CI-gated scale point: gridless batch construction at 100k peers.

    Runs entirely on numpy state (no Python object per peer), reporting
    wall-clock, throughput, the Fig. 4 replica distribution at scale, and
    the memory footprint.
    """
    if not scale.large_peers:
        return {"skipped": "no large point at this scale"}
    if not HAVE_NUMPY:
        return {"skipped": "numpy not available"}
    return _gridless_construction(
        scale, scale.large_peers, scale.large_maxl, "large-construction"
    )


def bench_million_construction(scale: BenchScale) -> dict:
    """The headline 1M-peer gridless point (fig4 scale only, ~15 min)."""
    if not scale.million_peers:
        return {"skipped": "no million point at this scale"}
    if not HAVE_NUMPY:
        return {"skipped": "numpy not available"}
    return _gridless_construction(
        scale, scale.million_peers, scale.million_maxl, "million-construction"
    )


def bench_search(scale: BenchScale, grid: PGrid) -> dict:
    grid.rng = rngmod.derive(scale.seed, "search-bench")
    engine = SearchEngine(grid)
    query_rng = rngmod.derive(scale.seed, "search-queries")
    addresses = grid.addresses()
    queries = [
        (
            addresses[query_rng.randrange(len(addresses))],
            keyspace.random_key(scale.maxl - 1, query_rng),
        )
        for _ in range(scale.n_searches)
    ]
    found = 0
    messages = 0
    start = time.perf_counter()
    for address, query in queries:
        result = engine.query_from(address, query)
        found += result.found
        messages += result.messages
    search_s = time.perf_counter() - start

    # Serial vs parallel trial execution of an experiment sweep, with the
    # determinism contract checked end-to-end.
    points = [
        {"n_peers": scale.trial_peers, "maxl": 5, "refmax": 2,
         "recmax": 2, "recursion_fanout": 2, "seed": scale.seed + index}
        for index in range(scale.trial_points)
    ]
    start = time.perf_counter()
    serial = run_experiment_points(construction_cost, points, jobs=1)
    serial_s = time.perf_counter() - start
    # Pre-spawn the shared worker pool outside the timed region: the
    # speedup gate measures steady-state sweep throughput, not one-time
    # interpreter start-up (which pool amortization pays exactly once per
    # process anyway).
    parallel_jobs = min(2, len(points))
    warm_pool(parallel_jobs)
    start = time.perf_counter()
    parallel = run_experiment_points(construction_cost, points, jobs=parallel_jobs)
    parallel_s = time.perf_counter() - start
    return {
        "search": {
            "n_searches": scale.n_searches,
            "found": found,
            "messages": messages,
            "seconds": search_s,
            "searches_per_second": (
                scale.n_searches / search_s if search_s else None
            ),
        },
        "parallel_trials": {
            "points": len(points),
            "serial_seconds": serial_s,
            "parallel_jobs2_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else None,
            "bit_identical": serial == parallel,
        },
    }


def bench_snapshot_scaling(scale: BenchScale) -> dict:
    """Zero-copy snapshot fan-out versus pickling the grid per trial.

    Builds one grid, exports it as a shared-memory ``GridSnapshot``, and
    runs the same search sweep at ``--jobs`` 1/2/4/8 (capped by the CPU
    count) shipping only the snapshot's handle; the pre-snapshot baseline
    ships the full arrays inside every pickled trial spec.  Reported per
    jobs level: wall-clock, speedup vs serial, bit-identity of results,
    and the per-worker fresh-attach count the regression gate caps at 1
    (the grid crosses the process boundary at most once per worker).
    """
    if not HAVE_NUMPY:
        return {"skipped": "numpy not available"}
    import pickle

    from repro.experiments.common import (
        _gridship_search_trial,
        gridship_state,
        run_snapshot_search_sweep,
    )
    from repro.perf.parallel import parallel_starmap
    from repro.sim.builder import construct_snapshot

    n_peers = min(scale.n_peers, 2_000)
    config = PGridConfig(
        maxl=scale.maxl,
        refmax=scale.refmax,
        recmax=scale.recmax,
        recursion_fanout=scale.recursion_fanout,
    )
    snapshot, _report = construct_snapshot(
        config,
        n_peers,
        seed=rngmod.derive_seed(scale.seed, "snapshot-bench"),
        threshold_fraction=0.985,
        max_exchanges=max(2_000_000, 600 * n_peers),
    )
    try:
        trials = max(8, 2 * scale.trial_points)
        n_queries = max(200, scale.n_searches // 10)
        master = rngmod.derive_seed(scale.seed, "snapshot-sweep")
        key_length = config.maxl - 1

        state = gridship_state(snapshot)
        spec_tail = {"seed": 1, "n_queries": n_queries, "key_length": key_length}
        snapshot_trial_bytes = len(
            pickle.dumps({"snapshot": snapshot.ref(), **spec_tail})
        )
        gridship_trial_bytes = len(pickle.dumps({"state": state, **spec_tail}))

        cpu = os.cpu_count() or 1
        jobs_levels = [jobs for jobs in (1, 2, 4, 8) if jobs <= cpu] or [1]
        serial_results = None
        serial_s = None
        per_jobs: dict[str, dict] = {}
        for jobs in jobs_levels:
            if jobs > 1:
                warm_pool(jobs)
            start = time.perf_counter()
            out = run_snapshot_search_sweep(
                snapshot,
                trials=trials,
                n_queries=n_queries,
                jobs=jobs,
                master_seed=master,
                key_length=key_length,
            )
            elapsed = time.perf_counter() - start
            results = [trial["results"] for trial in out]
            attaches = {}
            for trial in out:
                worker = trial["worker"]
                attaches[worker["pid"]] = max(
                    attaches.get(worker["pid"], 0), worker["fresh_attaches"]
                )
            if serial_results is None:
                serial_results, serial_s = results, elapsed
            per_jobs[str(jobs)] = {
                "seconds": elapsed,
                "speedup_vs_serial": serial_s / elapsed if elapsed else None,
                "bit_identical_to_serial": results == serial_results,
                "worker_count": len(attaches),
                "max_fresh_attaches_per_worker": max(attaches.values()),
            }

        # Pre-snapshot baseline: grid arrays pickled into every trial spec.
        ship_specs = [
            {
                "state": state,
                "seed": rngmod.derive_seed(master, f"trial-{index}"),
                "n_queries": n_queries,
                "key_length": key_length,
            }
            for index in range(trials)
        ]
        start = time.perf_counter()
        ship_serial = parallel_starmap(_gridship_search_trial, ship_specs, jobs=1)
        ship_serial_s = time.perf_counter() - start
        ship_jobs = min(2, cpu)
        if ship_jobs > 1:
            warm_pool(ship_jobs)
        start = time.perf_counter()
        ship_pooled = parallel_starmap(
            _gridship_search_trial, ship_specs, jobs=ship_jobs
        )
        ship_pooled_s = time.perf_counter() - start
        return {
            "n_peers": n_peers,
            "trials": trials,
            "n_queries": n_queries,
            "cpu_count": cpu,
            "segment_bytes": snapshot.nbytes,
            "pickled_trial_bytes": {
                "snapshot_ref": snapshot_trial_bytes,
                "gridship": gridship_trial_bytes,
                "ratio": (
                    snapshot_trial_bytes / gridship_trial_bytes
                    if gridship_trial_bytes
                    else None
                ),
            },
            "jobs": per_jobs,
            "gridship": {
                "jobs": ship_jobs,
                "serial_seconds": ship_serial_s,
                "pooled_seconds": ship_pooled_s,
                "speedup": (
                    ship_serial_s / ship_pooled_s if ship_pooled_s else None
                ),
                "results_identical_to_snapshot_path": (
                    [trial["results"] for trial in ship_pooled] == serial_results
                ),
            },
        }
    finally:
        snapshot.close()
        snapshot.unlink()


def bench_array_search(scale: BenchScale, grid: PGrid) -> dict:
    """The batch query plane versus the object ``SearchEngine`` loop.

    Both sides resolve the same (start, query) set over the same
    converged grid with every peer online, on twin seeds.  The two
    engines draw routing choices from different RNG streams, so the
    comparison is statistical, not bit-identical: the regression gate
    (``check_regression.py``) holds the found-rate and
    messages-per-search deltas within tolerance while requiring the
    wall-clock speedup.
    """
    if not HAVE_NUMPY:
        return {"skipped": "numpy not available"}
    query_rng = rngmod.derive(scale.seed, "array-search-queries")
    addresses = grid.addresses()
    starts = [
        addresses[query_rng.randrange(len(addresses))]
        for _ in range(scale.n_searches)
    ]
    queries = [
        keyspace.random_key(scale.maxl - 1, query_rng)
        for _ in range(scale.n_searches)
    ]

    grid.rng = rngmod.derive(scale.seed, "array-search-object")
    engine = SearchEngine(grid)
    obj_found = 0
    obj_messages = 0
    obj_failed = 0
    start_t = time.perf_counter()
    for address, query in zip(starts, queries):
        result = engine.query_from(address, query)
        obj_found += result.found
        obj_messages += result.messages
        obj_failed += result.failed_attempts
    object_s = time.perf_counter() - start_t

    agrid = ArrayGrid.from_pgrid(grid)
    batch_engine = BatchQueryEngine.from_arraygrid(
        agrid, seed=rngmod.derive_seed(scale.seed, "array-search-batch")
    )
    start_t = time.perf_counter()
    batch = batch_engine.search_many(queries, starts)
    batch_s = time.perf_counter() - start_t

    n = scale.n_searches
    obj_rate = obj_found / n
    batch_rate = batch.found_rate
    obj_mean_msgs = obj_messages / n
    batch_mean_msgs = batch.mean_messages
    return {
        "n_queries": n,
        "n_peers": scale.n_peers,
        "object": {
            "engine": "object-dfs",
            "found": obj_found,
            "found_rate": obj_rate,
            "messages": obj_messages,
            "mean_messages": obj_mean_msgs,
            "failed_attempts": obj_failed,
            "seconds": object_s,
            "searches_per_second": n / object_s if object_s else None,
        },
        "batch": {
            "engine": "batch-dfs",
            "found": int(batch.found.sum()),
            "found_rate": batch_rate,
            "messages": int(batch.messages.sum()),
            "mean_messages": batch_mean_msgs,
            "failed_attempts": int(batch.failed_attempts.sum()),
            "seconds": batch_s,
            "searches_per_second": n / batch_s if batch_s else None,
        },
        "speedup": object_s / batch_s if batch_s else None,
        "found_rate_rel_delta": (
            abs(obj_rate - batch_rate) / obj_rate if obj_rate else None
        ),
        "mean_messages_rel_delta": (
            abs(obj_mean_msgs - batch_mean_msgs) / obj_mean_msgs
            if obj_mean_msgs
            else None
        ),
    }


def _numpy_version() -> str | None:
    if not HAVE_NUMPY:
        return None
    import numpy

    return numpy.__version__


def _write(
    out_dir: Path,
    name: str,
    scale: BenchScale,
    results: dict,
    *,
    engines: tuple[str, ...] = (),
) -> Path:
    payload = {
        "benchmark": name,
        "scale": scale.name,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "engines": sorted(engines),
        "peak_rss_bytes": peak_rss_bytes(),
        "params": {
            "n_peers": scale.n_peers,
            "maxl": scale.maxl,
            "refmax": scale.refmax,
            "recmax": scale.recmax,
            "seed": scale.seed,
        },
        "results": results,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="fig4")
    parser.add_argument(
        "--out-dir", type=Path, default=_ROOT,
        help="directory for the BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--no-million", action="store_true",
        help="skip the 1M-peer gridless point (fig4 scale; ~15 min)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    args.out_dir.mkdir(parents=True, exist_ok=True)

    print(f"[bench] scale={scale.name} (N={scale.n_peers}, maxl={scale.maxl})")
    micro = bench_micro(scale)
    path = _write(args.out_dir, "micro", scale, micro, engines=("reference",))
    for name, row in micro.items():
        print(
            f"[bench] micro {name}: {row['baseline_ns_per_op']:.0f} -> "
            f"{row['current_ns_per_op']:.0f} ns/op "
            f"({row['speedup']:.2f}x)"
        )
    print(f"[bench] wrote {path}")

    construction, grid = bench_construction(scale)
    depth = construction["depth_tracking"]
    full = construction["full_construction"]
    print(
        f"[bench] construction depth-tracking over {depth['meetings']} "
        f"meetings: naive {depth['naive_rescan_seconds']:.2f}s vs "
        f"incremental {depth['incremental_seconds']:.2f}s "
        f"({depth['speedup']:.1f}x)"
    )
    print(
        f"[bench] full construction: {full['exchanges']} exchanges in "
        f"{full['seconds']:.2f}s (converged={full['converged']})"
    )
    arr = construction["full_construction_array"]
    print(
        f"[bench] array strict: {arr['seconds']:.2f}s "
        f"({arr['speedup_vs_object']:.2f}x object, bit-identical)"
    )
    batch = construction["full_construction_batch"]
    if "skipped" not in batch:
        print(
            f"[bench] batch engine: {batch['exchanges']} exchanges in "
            f"{batch['seconds']:.2f}s ({batch['speedup_vs_object']:.1f}x object, "
            f"{batch['exchanges_per_second']:,.0f} exch/s)"
        )
    large = bench_large_construction(scale)
    construction["large_construction"] = large
    if "skipped" not in large:
        print(
            f"[bench] large construction: N={large['n_peers']} "
            f"maxl={large['maxl']} converged={large['converged']} in "
            f"{large['seconds']:.1f}s ({large['exchanges_per_second']:,.0f} exch/s, "
            f"{large['bytes_per_peer']:.0f} B/peer)"
        )
    if args.no_million:
        million = {"skipped": "--no-million"}
    else:
        million = bench_million_construction(scale)
    construction["million_construction"] = million
    if "skipped" not in million:
        print(
            f"[bench] million construction: N={million['n_peers']} "
            f"maxl={million['maxl']} converged={million['converged']} in "
            f"{million['seconds']:.1f}s "
            f"({million['exchanges_per_second']:,.0f} exch/s, "
            f"{million['bytes_per_peer']:.0f} B/peer, "
            f"peak RSS {million['peak_rss_bytes'] / 1e9:.2f} GB)"
        )
    path = _write(
        args.out_dir, "construction", scale, construction,
        engines=("object", "array-strict", "batch", "batch-gridless"),
    )
    print(f"[bench] wrote {path}")

    search = bench_search(scale, grid)
    print(
        f"[bench] search: {search['search']['searches_per_second']:.0f} "
        f"searches/s; parallel trials jobs=2 "
        f"{search['parallel_trials']['speedup']:.2f}x, "
        f"bit_identical={search['parallel_trials']['bit_identical']}"
    )
    snapshot_scaling = bench_snapshot_scaling(scale)
    search["snapshot_scaling"] = snapshot_scaling
    if "skipped" not in snapshot_scaling:
        bytes_row = snapshot_scaling["pickled_trial_bytes"]
        jobs_text = ", ".join(
            f"jobs={jobs} {row['speedup_vs_serial']:.2f}x"
            for jobs, row in snapshot_scaling["jobs"].items()
        )
        print(
            f"[bench] snapshot scaling: {bytes_row['snapshot_ref']} B/trial "
            f"shipped vs {bytes_row['gridship']} B gridship "
            f"({bytes_row['ratio']:.3%}); {jobs_text}"
        )
    path = _write(args.out_dir, "search", scale, search, engines=("object",))
    print(f"[bench] wrote {path}")

    array_search = bench_array_search(scale, grid)
    if "skipped" not in array_search:
        print(
            f"[bench] array search: object "
            f"{array_search['object']['searches_per_second']:,.0f}/s vs batch "
            f"{array_search['batch']['searches_per_second']:,.0f}/s "
            f"({array_search['speedup']:.1f}x); found-rate delta "
            f"{array_search['found_rate_rel_delta']:.3%}, messages delta "
            f"{array_search['mean_messages_rel_delta']:.3%}"
        )
        path = _write(
            args.out_dir, "array_search", scale, array_search,
            engines=("object-dfs", "batch-dfs"),
        )
        print(f"[bench] wrote {path}")
    else:
        print(f"[bench] array search skipped: {array_search['skipped']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
