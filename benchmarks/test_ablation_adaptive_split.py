"""AB5 — extension: data-driven splitting under Zipf-skewed data.

§3 hints that the split depth could be driven by the local data volume
instead of a global ``maxl``; §6 lists skewed distributions as the open
problem.  Expected shape: the data-driven variant splits the popular half
of the key space deeper than the unpopular half and balances the per-peer
index load far better than the fixed-depth baseline.
"""

from __future__ import annotations

from repro.experiments import ablations

from conftest import publish_result


def test_ablation_adaptive_split(benchmark):
    result = benchmark.pedantic(
        ablations.run_adaptive_split, rounds=1, iterations=1
    )
    publish_result(result, float_digits=3)

    fixed, adaptive = result.rows
    assert fixed[0] == "fixed depth"

    # Shape 1: depth follows the data — the dense half is split deeper
    # than the sparse half under the data-driven rule, while the
    # fixed-depth baseline splits both identically.
    assert adaptive[2] > adaptive[3] + 0.3, adaptive
    assert abs(fixed[2] - fixed[3]) < 0.3, fixed

    # Shape 2: storage balance improves (lower gini and lower hot-peer
    # maximum).
    assert adaptive[4] < fixed[4], (adaptive[4], fixed[4])
    assert adaptive[5] < fixed[5], (adaptive[5], fixed[5])
