"""T3 — §5.1 table 3: effect of the recursion bound.

Paper shape: U-shaped construction cost over recmax with the optimum at a
small bound (2 in the paper), recmax=0 the most expensive.
"""

from __future__ import annotations

from repro.experiments import table3_recmax

from conftest import publish_result


def test_table3_recmax(benchmark):
    result = benchmark.pedantic(table3_recmax.run, rounds=1, iterations=1)
    publish_result(result)

    costs = {row[0]: row[1] for row in result.rows}
    assert set(costs) == {0, 1, 2, 3, 4, 5, 6}

    # Shape 1: any recursion beats none.
    assert all(costs[r] < costs[0] for r in range(1, 7)), costs

    # Shape 2: the optimum sits at a small recursion bound (paper: 2).
    optimum = min(costs, key=costs.get)
    assert optimum in (1, 2, 3), costs

    # Shape 3: cost rises again beyond the optimum (the U's right branch).
    assert costs[6] > costs[optimum], costs
