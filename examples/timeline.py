#!/usr/bin/env python
"""Construction over time: the discrete-event view.

The paper counts exchanges; a deployment cares about wall-clock time.  This
example runs construction as a Poisson meeting process on the event kernel
— once failure-free, once with only 40% of peers online per epoch — and
plots average trie depth against virtual time.

Run:  python examples/timeline.py
"""

from __future__ import annotations

import random

from repro import PGrid, PGridConfig
from repro.report import render_plot
from repro.sim import SessionChurn, run_timed_construction

N_PEERS = 400
DURATION = 60.0


def build(p_online: float | None, seed: int):
    config = PGridConfig(maxl=6, refmax=3, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(N_PEERS)
    churn = (
        None
        if p_online is None
        else SessionChurn(p_online, random.Random(seed + 1), grid.addresses())
    )
    return run_timed_construction(
        grid,
        meeting_rate=N_PEERS,  # one meeting per peer per time unit
        duration=DURATION,
        sample_every=2.0,
        churn=churn,
        rng=random.Random(seed + 2),
    )


def main() -> None:
    healthy = build(None, seed=31)
    churned = build(0.4, seed=41)

    print(
        f"failure-free: {healthy.meetings} meetings, "
        f"avg depth {healthy.average_depth:.2f}, converged={healthy.converged}"
    )
    print(
        f"40% online  : {churned.meetings} meetings "
        f"(offline arrivals wasted), avg depth {churned.average_depth:.2f}, "
        f"converged={churned.converged}"
    )
    print()
    print(
        render_plot(
            {
                "all online": [
                    (s.time, s.average_depth) for s in healthy.trajectory
                ],
                "40% online": [
                    (s.time, s.average_depth) for s in churned.trajectory
                ],
            },
            title="Average trie depth over virtual time",
            x_label="time",
            y_label="depth",
        )
    )


if __name__ == "__main__":
    main()
