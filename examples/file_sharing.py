#!/usr/bin/env python
"""File sharing at Gnutella scale — the paper's §1 motivation.

A community of peers shares files under 30% availability.  The same
workload runs against

* a P-Grid (searches route over the distributed trie), and
* a Gnutella-style flooding overlay (no index, broadcast search),

and the script reports hit rates and message costs side by side.  The
P-Grid side runs over the explicit message transport so the costs are
counted by the network substrate, not inferred.

Run:  python examples/file_sharing.py
"""

from __future__ import annotations

import random

from repro import (
    DataItem,
    GridBuilder,
    PGrid,
    PGridConfig,
    UpdateEngine,
    UpdateStrategy,
)
from repro.baselines.flooding import GnutellaNetwork
from repro.net.node import attach_nodes
from repro.net.transport import LocalTransport
from repro.sim.churn import BernoulliChurn
from repro.sim.workload import UniformKeyWorkload

N_PEERS = 512
FILES_PER_PEER = 3
N_SEARCHES = 300
P_ONLINE = 0.3
KEY_LENGTH = 8


def main() -> None:
    rng = random.Random(7)

    # ---- shared workload: every peer shares a few files -----------------
    workload = UniformKeyWorkload(KEY_LENGTH, random.Random(11))
    library = {
        holder: workload.keys(FILES_PER_PEER) for holder in range(N_PEERS)
    }
    queries = [
        (rng.randrange(N_PEERS), rng.choice(library[rng.randrange(N_PEERS)]))
        for _ in range(N_SEARCHES)
    ]

    # ---- P-Grid --------------------------------------------------------------
    config = PGridConfig(maxl=6, refmax=10, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(13))
    grid.add_peers(N_PEERS)
    report = GridBuilder(grid).build()
    print(
        f"P-Grid constructed: {report.exchanges} exchanges, "
        f"avg depth {report.average_depth:.2f}"
    )
    updates = UpdateEngine(grid)
    publish_messages = 0
    for holder, keys in library.items():
        for key in keys:
            result = updates.publish(
                holder,
                DataItem(key=key, value=f"file-{holder}-{key}"),
                holder,
                strategy=UpdateStrategy.BFS,
                recbreadth=2,
            )
            publish_messages += result.messages
    print(
        f"P-Grid indexed {N_PEERS * FILES_PER_PEER} files "
        f"({publish_messages / (N_PEERS * FILES_PER_PEER):.1f} messages/file)"
    )

    # searches run over the message transport, under churn
    grid.online_oracle = BernoulliChurn(P_ONLINE, random.Random(17))
    transport = LocalTransport(grid)
    nodes = attach_nodes(grid, transport)
    pgrid_hits = 0
    pgrid_messages = 0
    for start, key in queries:
        outcome = nodes[start].search(key)
        pgrid_hits += int(outcome.found)
        pgrid_messages += outcome.messages_sent

    # ---- Gnutella flooding ----------------------------------------------------
    flood = GnutellaNetwork(
        N_PEERS,
        extra_edges_per_peer=3,
        rng=random.Random(19),
        p_online=P_ONLINE,
        default_ttl=7,
    )
    for holder, keys in library.items():
        for key in keys:
            flood.publish(DataItem(key=key), holder)
    flood_hits = 0
    flood_messages = 0
    for start, key in queries:
        result = flood.search(start, key)
        flood_hits += int(result.found)
        flood_messages += result.messages

    # ---- comparison -------------------------------------------------------------
    print()
    print(f"{N_SEARCHES} searches at {P_ONLINE:.0%} availability:")
    print(
        f"  P-Grid   : hit rate {pgrid_hits / N_SEARCHES:6.1%}   "
        f"avg messages {pgrid_messages / N_SEARCHES:8.1f}"
    )
    print(
        f"  Gnutella : hit rate {flood_hits / N_SEARCHES:6.1%}   "
        f"avg messages {flood_messages / N_SEARCHES:8.1f}"
    )
    print()
    print(
        "P-Grid answers from a handful of routed messages; flooding pays "
        "hundreds of messages per query to reach the same files."
    )


if __name__ == "__main__":
    main()
