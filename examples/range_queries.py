#!/usr/bin/env python
"""Range queries over the order-preserving key space.

P-Grid keys are order-preserving (`val(k)` intervals, §2), so the access
structure supports range scans, not just exact lookups: a range decomposes
into its canonical cover prefixes and each cover prefix is resolved with a
subtree-enumerating breadth-first search.  This example indexes items with
numeric keys (temperatures, encoded order-preservingly into bits) and runs
interval queries.

Run:  python examples/range_queries.py
"""

from __future__ import annotations

import random

from repro import DataItem, GridBuilder, PGrid, PGridConfig, SearchEngine
from repro.core import keys as keyspace

KEY_BITS = 10
MIN_TEMP, MAX_TEMP = -30.0, 50.0


def encode_temperature(celsius: float) -> str:
    """Order-preserving fixed-point encoding of a temperature reading."""
    fraction = (celsius - MIN_TEMP) / (MAX_TEMP - MIN_TEMP)
    fraction = min(max(fraction, 0.0), 1.0 - 1e-9)
    return keyspace.key_from_value(fraction, KEY_BITS)


def decode_temperature(key: str) -> float:
    """Left edge of the reading's interval, back in Celsius."""
    return MIN_TEMP + float(keyspace.key_value(key)) * (MAX_TEMP - MIN_TEMP)


def main() -> None:
    config = PGridConfig(maxl=6, refmax=4, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(21))
    grid.add_peers(256)
    GridBuilder(grid).build()
    print(f"grid ready: avg depth {grid.average_path_length():.2f}")

    # 300 sensor readings, each stored at its reporting peer.
    rng = random.Random(22)
    readings = [
        (round(rng.gauss(15, 12), 1), sensor % 256) for sensor in range(300)
    ]
    grid.seed_index(
        [
            (DataItem(key=encode_temperature(t), value=t), holder)
            for t, holder in readings
        ]
    )
    print(f"indexed {len(readings)} sensor readings")
    print()

    engine = SearchEngine(grid)
    for low_temperature, high_temperature in ((20.0, 30.0), (-10.0, 0.0), (35.0, 50.0)):
        low = encode_temperature(low_temperature)
        high = encode_temperature(high_temperature)
        result = engine.query_range(0, low, high, recbreadth=3)
        temps = sorted(
            decode_temperature(ref.key) for ref in result.data_refs
        )
        expected = sorted(
            t for t, _ in readings
            if low <= encode_temperature(t) <= high
        )
        print(
            f"range [{low_temperature:6.1f}, {high_temperature:6.1f}] C: "
            f"cover={len(result.cover)} prefixes, "
            f"{len(result.data_refs)} readings in {result.messages} messages "
            f"(ground truth: {len(expected)})"
        )
        if temps:
            print(
                f"   sample: {', '.join(f'{t:.1f}' for t in temps[:8])}"
                + (" ..." if len(temps) > 8 else "")
            )


if __name__ == "__main__":
    main()
