#!/usr/bin/env python
"""Capacity planning with the §4 analysis — "how big must the community be?"

Reproduces the paper's Gnutella-scale worked example and then sweeps a few
what-if scenarios: more data, flakier peers, smaller index budgets.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import plan_grid, search_success_probability
from repro.report.tables import render_table


def main() -> None:
    # --- the paper's worked example --------------------------------------
    plan = plan_grid(
        d_global=10**7,
        reference_bytes=10,
        storage_bytes_per_peer=10**5,
        p_online=0.3,
        refmax=20,
        i_leaf=10**4 - 200,
    )
    print("Paper §4 example (10^7 files, 100 KB/peer, 30% online):")
    print(f"  key length k         = {plan.key_length}   (paper: 10)")
    print(f"  min peers            = {plan.min_peers}   (paper: 20409)")
    print(
        f"  search success       = {plan.success_probability:.4f} "
        f"(paper: > 0.99)"
    )
    print(f"  storage used         = {plan.storage_used} bytes")
    print()

    # --- what-if sweeps ------------------------------------------------------
    rows = []
    for d_global, storage, p_online, refmax in [
        (10**7, 10**5, 0.3, 20),   # the paper's setting
        (10**8, 10**5, 0.3, 20),   # 10x the data
        (10**7, 10**4, 0.3, 10),   # 10x smaller index budget
        (10**7, 10**5, 0.1, 20),   # much flakier peers
        (10**7, 10**5, 0.1, 40),   # ...compensated by more references
    ]:
        plan = plan_grid(
            d_global,
            storage_bytes_per_peer=storage,
            p_online=p_online,
            refmax=refmax,
        )
        rows.append(
            [
                f"{d_global:.0e}",
                storage,
                p_online,
                refmax,
                plan.key_length,
                plan.min_peers,
                plan.success_probability,
            ]
        )
    print(
        render_table(
            ["files", "bytes/peer", "p_online", "refmax", "k",
             "min peers", "success"],
            rows,
            title="What-if capacity plans",
            float_digits=4,
        )
    )
    print()

    # --- the refmax lever ------------------------------------------------------
    print("Reliability vs. refmax at 30% availability, k = 10:")
    for refmax in (1, 2, 5, 10, 20, 40):
        probability = search_success_probability(0.3, refmax, 10)
        bar = "#" * int(probability * 40)
        print(f"  refmax {refmax:>2}: {probability:8.4f} {bar}")


if __name__ == "__main__":
    main()
