#!/usr/bin/env python
"""Distributed prefix text search (§6's trie extension).

Peers publish the words of their shared documents into a P-Grid via an
order/prefix-preserving binary encoding; autocomplete-style prefix queries
then route over the same access structure.

Run:  python examples/text_prefix_search.py
"""

from __future__ import annotations

import random

from repro import GridBuilder, PGrid, PGridConfig
from repro.text import PrefixTextIndex

CORPUS = {
    0: ["peer", "peers", "peerless"],
    1: ["grid", "gridlock", "graph"],
    2: ["search", "searching", "seated"],
    3: ["random", "randomized", "ranking"],
    4: ["scale", "scalable", "scaling"],
    5: ["route", "routing", "router"],
    6: ["replica", "replication", "reply"],
    7: ["index", "indexing", "indexes"],
}


def main() -> None:
    config = PGridConfig(maxl=6, refmax=4, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(42))
    grid.add_peers(256)
    GridBuilder(grid).build()
    print(f"grid ready: avg depth {grid.average_path_length():.2f}")

    index = PrefixTextIndex(grid)
    total_words = sum(len(words) for words in CORPUS.values())
    messages = index.publish_corpus(CORPUS, recbreadth=3)
    print(
        f"indexed {total_words} words from {len(CORPUS)} holders "
        f"({messages} messages)"
    )
    print()

    for word in ("grid", "randomized", "nonexistent"):
        result = index.lookup(word, start=100)
        print(
            f"lookup {word!r:<14} -> found={result.found} "
            f"({result.messages} msgs) {result.words}"
        )
    print()

    for prefix in ("pe", "s", "rep", "ro", "zzz"):
        result = index.prefix_search(prefix, start=50, recbreadth=4)
        print(
            f"prefix {prefix!r:<6} -> {len(result.words):2d} words "
            f"({result.messages:3d} msgs): {', '.join(result.words) or '-'}"
        )


if __name__ == "__main__":
    main()
