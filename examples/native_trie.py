#!/usr/bin/env python
"""Native k-ary trie vs. binary reduction (§6's two roads to text search).

The same small dictionary is indexed twice:

* on a **binary** P-Grid through the order-preserving 5-bit-per-character
  encoding (``repro.text``), and
* on a **native 27-ary** P-Grid where each trie level consumes one whole
  character (``repro.kary``).

The same lookups then run against both, showing the trade §6 leaves
implicit: the native trie needs fewer hops, the binary trie needs far
less routing state.

Run:  python examples/native_trie.py
"""

from __future__ import annotations

import random

from repro import DataItem, GridBuilder, PGrid, PGridConfig, SearchEngine
from repro.kary import (
    KaryExchangeEngine,
    KaryGrid,
    KaryItem,
    KarySearchEngine,
    KeySpace,
    build_kary_grid,
)
from repro.text.encoding import TextEncoder

WORDS = [
    "apple", "apricot", "banana", "berry", "cherry", "citrus", "damson",
    "date", "elder", "fig", "grape", "guava", "kiwi", "lemon", "lime",
    "mango", "melon", "nectar", "olive", "orange", "papaya", "peach",
    "pear", "plum", "quince", "raisin", "sloe", "tomato",
]
N_PEERS = 1800
CHARS_DEEP = 2


def main() -> None:
    encoder = TextEncoder()

    # ---- binary reduction ---------------------------------------------------
    binary_maxl = encoder.bits_per_char * CHARS_DEEP  # 10 binary levels
    grid = PGrid(
        PGridConfig(maxl=binary_maxl, refmax=5, recmax=2, recursion_fanout=2),
        rng=random.Random(1),
    )
    grid.add_peers(N_PEERS)
    GridBuilder(grid).build(threshold_fraction=0.9, max_exchanges=2_000_000)
    grid.seed_index(
        [
            (DataItem(key=encoder.encode_truncated(w, binary_maxl), value=w),
             i % N_PEERS)
            for i, w in enumerate(WORDS)
        ]
    )
    binary_search = SearchEngine(grid)

    # ---- native 27-ary -------------------------------------------------------------
    kary = KaryGrid(
        KeySpace(), maxl=CHARS_DEEP, refmax=3, recmax=1, rng=random.Random(2)
    )
    kary.add_peers(N_PEERS)
    build_kary_grid(kary, threshold_fraction=0.9)
    populate = KaryExchangeEngine(kary)
    addresses = kary.addresses()
    for _ in range(10 * N_PEERS):  # fill the k-1 sibling sets per level
        a, b = kary.rng.sample(addresses, 2)
        populate.meet(a, b)
    kary.seed_index(
        [(KaryItem(key=w[:CHARS_DEEP], value=w), i % N_PEERS)
         for i, w in enumerate(WORDS)]
    )
    kary_search = KarySearchEngine(kary)

    # ---- the same lookups against both ------------------------------------------------
    rng = random.Random(3)
    print(f"{'word':<10} {'binary msgs':>12} {'k-ary msgs':>11}")
    binary_total = kary_total = 0
    binary_hits = kary_hits = 0
    sample = rng.sample(WORDS, 10)
    for word in sample:
        b = binary_search.query_from(
            rng.randrange(N_PEERS), encoder.encode_truncated(word, binary_maxl)
        )
        k = kary_search.query_from(rng.randrange(N_PEERS), word[:CHARS_DEEP])
        binary_total += b.messages
        kary_total += k.messages
        binary_hits += int(b.found)
        kary_hits += int(k.found)
        print(f"{word:<10} {b.messages:>12} {k.messages:>11}")
    print("-" * 35)
    print(
        f"{'average':<10} {binary_total / len(sample):>12.1f} "
        f"{kary_total / len(sample):>11.1f}"
    )
    print(
        f"hits: binary {binary_hits}/{len(sample)}, "
        f"k-ary {kary_hits}/{len(sample)}"
    )
    print()
    print(
        f"routing state per peer: binary "
        f"{grid.total_routing_refs() / N_PEERS:.1f} refs, "
        f"k-ary {kary.total_routing_refs() / N_PEERS:.1f} refs"
    )
    print(
        "the native trie hops once per character; the binary trie pays "
        "~5 levels per character but keeps tables an order of magnitude "
        "smaller."
    )


if __name__ == "__main__":
    main()
