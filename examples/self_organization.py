#!/usr/bin/env python
"""Self-organization under membership churn (§6's "continuously adapt").

A constructed grid loses a third of its population to crashes, the same
number of newcomers join through the ordinary exchange protocol, and a
lazy repair sweep heals the dangling references — search reliability is
measured at every stage.

Run:  python examples/self_organization.py
"""

from __future__ import annotations

import random

from repro import GridBuilder, MembershipEngine, PGrid, PGridConfig, SearchEngine
from repro.sim.workload import UniformKeyWorkload

N_PEERS = 512
REPLACE = 170  # about a third


def success_rate(grid, engine, seed, searches=800) -> float:
    keys = UniformKeyWorkload(grid.config.maxl - 1, random.Random(seed))
    starts = random.Random(seed + 1)
    addresses = grid.addresses()
    hits = sum(
        engine.query_from(starts.choice(addresses), keys.next_key()).found
        for _ in range(searches)
    )
    return hits / searches


def main() -> None:
    config = PGridConfig(maxl=6, refmax=2, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(8))
    grid.add_peers(N_PEERS)
    report = GridBuilder(grid).build()
    engine = SearchEngine(grid)
    membership = MembershipEngine(grid, search=engine)
    print(
        f"built: {report.exchanges} exchanges, avg depth "
        f"{report.average_depth:.2f}"
    )
    print(f"search success (intact)      : {success_rate(grid, engine, 1):.1%}")

    # --- a third of the population crashes -----------------------------------
    rng = random.Random(9)
    for victim in rng.sample(grid.addresses(), REPLACE):
        membership.fail(victim)
    print(f"search success (after crash) : {success_rate(grid, engine, 2):.1%}")

    # --- newcomers join through the ordinary exchange protocol ----------------
    depths = []
    for _ in range(REPLACE):
        bootstrap = rng.choice(grid.addresses())
        depths.append(membership.join(bootstrap).final_depth)
    print(
        f"{REPLACE} newcomers joined (avg depth {sum(depths) / len(depths):.2f})"
    )
    print(f"search success (after joins) : {success_rate(grid, engine, 3):.1%}")

    # --- lazy repair: probe references, refill via search ----------------------
    reports = membership.repair_all()
    dropped = sum(r.dead_refs_dropped for r in reports)
    added = sum(r.refs_added for r in reports)
    messages = sum(r.messages for r in reports)
    print(
        f"repair sweep: dropped {dropped} dead refs, added {added} fresh "
        f"({messages} messages)"
    )
    print(f"search success (after repair): {success_rate(grid, engine, 4):.1%}")
    print(f"routing invariant violations : {len(grid.audit_routing())}")


if __name__ == "__main__":
    main()
