#!/usr/bin/env python
"""Update propagation and the repeated-query trick (§5.2, table 6 story).

A data item's index entry is updated.  The update reaches only a fraction
of the replicas (propagation is expensive under churn), and the script
compares three ways of reading afterwards:

* single search        — cheap, but may answer from a stale replica;
* repeated search      — re-query until a fresh replica answers;
* majority vote        — query k times, trust the majority version.

Run:  python examples/update_consistency.py
"""

from __future__ import annotations

import random

from repro import (
    DataItem,
    DataRef,
    GridBuilder,
    PGrid,
    PGridConfig,
    ReadEngine,
    UpdateEngine,
    UpdateStrategy,
)
from repro.sim.churn import BernoulliChurn

N_PEERS = 512
P_ONLINE = 0.3
KEY = "010110"


def main() -> None:
    config = PGridConfig(maxl=7, refmax=10, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(3))
    grid.add_peers(N_PEERS)
    GridBuilder(grid).build()
    print(f"grid ready: avg depth {grid.average_path_length():.2f}")

    # Seed version 0 everywhere (a consistent old state).
    holder = 17
    grid.seed_index([(DataItem(key=KEY, value="v0"), holder)])
    replicas = grid.replicas_for_key(KEY)
    print(f"{len(replicas)} replicas hold version 0 of key {KEY}")

    # Go partially unavailable, then push version 1.
    grid.online_oracle = BernoulliChurn(P_ONLINE, random.Random(5))
    updates = UpdateEngine(grid)
    result = updates.propagate(
        3,
        DataRef(key=KEY, holder=holder, version=1),
        strategy=UpdateStrategy.BFS,
        recbreadth=2,
    )
    print(
        f"update reached {len(result.reached)}/{result.replica_count} "
        f"replicas ({result.coverage:.0%}) for {result.messages} messages"
    )

    # Read back with the three strategies.
    reads = ReadEngine(grid)
    trials = 200
    rng = random.Random(9)

    single_ok = single_cost = 0
    repeated_ok = repeated_cost = 0
    majority_ok = majority_cost = 0
    for _ in range(trials):
        start = rng.randrange(N_PEERS)
        single = reads.read_single(start, KEY, holder, version=1)
        single_ok += int(single.success)
        single_cost += single.messages
        repeated = reads.read_repeated(start, KEY, holder, version=1)
        repeated_ok += int(repeated.success)
        repeated_cost += repeated.messages
        majority = reads.read_majority(start, KEY, holder, version=1, votes=3)
        majority_ok += int(majority.success)
        majority_cost += majority.messages

    print()
    print(f"{trials} reads after the partial update:")
    print(
        f"  single search   : success {single_ok / trials:6.1%}   "
        f"avg messages {single_cost / trials:6.1f}"
    )
    print(
        f"  repeated search : success {repeated_ok / trials:6.1%}   "
        f"avg messages {repeated_cost / trials:6.1f}"
    )
    print(
        f"  majority (k=3)  : success {majority_ok / trials:6.1%}   "
        f"avg messages {majority_cost / trials:6.1f}"
    )
    print()
    print(
        "The paper's punchline: instead of paying for near-complete update "
        "propagation, update a fraction of the replicas and let repeated "
        "queries absorb the inconsistency."
    )


if __name__ == "__main__":
    main()
