#!/usr/bin/env python
"""Quickstart: build a P-Grid, publish a file, search for it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    DataItem,
    GridBuilder,
    PGrid,
    PGridConfig,
    SearchEngine,
    UpdateEngine,
    UpdateStrategy,
)


def main() -> None:
    # 1. A community of 256 peers agrees on the grid parameters: paths up
    #    to 5 bits, 3 routing references per level, recursion bound 2.
    config = PGridConfig(maxl=5, refmax=3, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=random.Random(2002))
    grid.add_peers(256)

    # 2. Peers meet randomly and run the exchange algorithm until the
    #    access structure converges (avg path length ~ maxl).
    report = GridBuilder(grid).build()
    print(
        f"constructed: {report.exchanges} exchanges "
        f"({report.exchanges_per_peer:.1f} per peer), "
        f"average path length {report.average_depth:.2f}"
    )
    print(f"routing invariant violations: {len(grid.audit_routing())}")

    # 3. Peer 42 shares a file. Its index entry is propagated to the peers
    #    responsible for the file's key via breadth-first search.
    updates = UpdateEngine(grid)
    song = DataItem(key="10110", value="yellow-submarine.mp3")
    publish = updates.publish(
        0, song, holder=42, strategy=UpdateStrategy.BFS, recbreadth=3
    )
    print(
        f"published {song.value!r} under key {song.key}: "
        f"{len(publish.reached)} replicas updated "
        f"({publish.messages} messages)"
    )

    # 4. Any peer can now find it — searches route along the trie.
    search = SearchEngine(grid)
    for start in (7, 99, 200):
        result = search.query_from(start, "10110")
        holders = sorted({ref.holder for ref in result.data_refs})
        print(
            f"search from peer {start:>3}: found={result.found} "
            f"responder={result.responder} messages={result.messages} "
            f"holders={holders}"
        )


if __name__ == "__main__":
    main()
