"""Root conftest: make ``src/`` importable even without installation.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel; ``python setup.py develop`` works and
is the documented path, but this shim keeps ``pytest`` self-sufficient
either way.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
