"""Declarative end-to-end scenarios.

A :class:`ScenarioSpec` describes a whole deployment in one object —
population, grid parameters, data volume, availability, and an operation
mix — and :func:`run_scenario` executes it: build, seed, then run the
mixed workload, returning a :class:`ScenarioMetrics` with the throughput
and reliability numbers a capacity planner cares about.  This is the
"one call" harness a downstream user starts from before dropping to the
individual engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.core.updates import ReadEngine, UpdateEngine, UpdateStrategy
from repro.core.exchange import ExchangeEngine
from repro.errors import InvalidConfigError
from repro.obs.probe import CompositeProbe, Probe
from repro.replication import (
    STRATEGIES,
    LoadProbe,
    LoadTracker,
    PathResolver,
    ReplicaBalancer,
    ReplicationConfig,
)
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn
from repro.sim.meetings import UniformMeetings
from repro.sim.metrics import RateAccumulator, summarize
from repro.sim.workload import UniformKeyWorkload, ZipfKeyWorkload


class KeyDistribution(enum.Enum):
    """Workload key distributions."""

    UNIFORM = "uniform"
    ZIPF = "zipf"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scenario description."""

    n_peers: int = 512
    config: PGridConfig = field(
        default_factory=lambda: PGridConfig(
            maxl=6, refmax=5, recmax=2, recursion_fanout=2
        )
    )
    items_per_peer: int = 4
    key_length: int = 8
    key_distribution: KeyDistribution = KeyDistribution.UNIFORM
    zipf_exponent: float = 1.0
    p_online: float = 1.0
    operations: int = 2_000
    update_fraction: float = 0.1
    update_recbreadth: int = 2
    read_repetitions: int = 50
    seed: int = 0
    replication: str | None = None
    replicate_threshold: float = 4.0
    retract_floor: float = 0.25
    replication_half_life: float = 64.0
    balance_every: int = 50
    balance_meetings: int = 4

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise InvalidConfigError(f"n_peers must be >= 2, got {self.n_peers}")
        if self.items_per_peer < 0:
            raise InvalidConfigError(
                f"items_per_peer must be >= 0, got {self.items_per_peer}"
            )
        if self.key_length < 1:
            raise InvalidConfigError(
                f"key_length must be >= 1, got {self.key_length}"
            )
        if not 0.0 < self.p_online <= 1.0:
            raise InvalidConfigError(
                f"p_online must be in (0, 1], got {self.p_online}"
            )
        if self.operations < 0:
            raise InvalidConfigError(
                f"operations must be >= 0, got {self.operations}"
            )
        if not 0.0 <= self.update_fraction <= 1.0:
            raise InvalidConfigError(
                f"update_fraction must be in [0, 1], got {self.update_fraction}"
            )
        if self.replication is not None and self.replication not in STRATEGIES:
            raise InvalidConfigError(
                f"unknown replication strategy {self.replication!r}: "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        if self.balance_every < 1:
            raise InvalidConfigError(
                f"balance_every must be >= 1, got {self.balance_every}"
            )
        if self.balance_meetings < 0:
            raise InvalidConfigError(
                f"balance_meetings must be >= 0, got {self.balance_meetings}"
            )


@dataclass
class ScenarioMetrics:
    """What a scenario run measured."""

    spec: ScenarioSpec
    construction_exchanges: int
    average_depth: float
    seeded_entries: int
    searches: int
    search_success_rate: float
    search_messages_mean: float
    updates: int
    update_coverage_mean: float
    update_messages_mean: float
    reads_after_update: int
    read_success_rate: float
    invariant_violations: int
    replica_conversions: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Flat dict for reports."""
        return {
            "n_peers": self.spec.n_peers,
            "construction_exchanges": self.construction_exchanges,
            "average_depth": self.average_depth,
            "seeded_entries": self.seeded_entries,
            "searches": self.searches,
            "search_success_rate": self.search_success_rate,
            "search_messages_mean": self.search_messages_mean,
            "updates": self.updates,
            "update_coverage_mean": self.update_coverage_mean,
            "update_messages_mean": self.update_messages_mean,
            "reads_after_update": self.reads_after_update,
            "read_success_rate": self.read_success_rate,
            "invariant_violations": self.invariant_violations,
            "replica_conversions": self.replica_conversions,
        }


def _workload(spec: ScenarioSpec, stream: str):
    rng = rngmod.derive(spec.seed, stream)
    if spec.key_distribution is KeyDistribution.ZIPF:
        return ZipfKeyWorkload(spec.key_length, rng, exponent=spec.zipf_exponent)
    return UniformKeyWorkload(spec.key_length, rng)


def run_scenario(
    spec: ScenarioSpec, *, probe: Probe | None = None
) -> ScenarioMetrics:
    """Execute *spec* end to end.

    Phases: (1) construct the grid failure-free; (2) seed
    ``items_per_peer`` items per peer into the index; (3) run
    ``operations`` mixed operations under ``p_online`` availability —
    each operation is an update (publish a new version of a seeded item
    followed by one repeated read-back) with probability
    ``update_fraction``, otherwise a search for a workload key.

    ``probe`` (e.g. a :class:`~repro.obs.MetricsProbe`) observes every
    engine the scenario drives; observation never perturbs the seeded
    RNG streams, so metrics are free of Heisenberg effects.
    """
    grid = PGrid(spec.config, rng=rngmod.derive(spec.seed, "scenario-grid"))
    grid.add_peers(spec.n_peers)
    report = GridBuilder(grid).build(max_exchanges=10_000_000)

    items = []
    item_keys = _workload(spec, "scenario-items")
    for peer in grid.peers():
        for index in range(spec.items_per_peer):
            items.append(
                (
                    DataItem(
                        key=item_keys.next_key(),
                        value=f"item-{peer.address}-{index}",
                    ),
                    peer.address,
                )
            )
    seeded = grid.seed_index(items)

    if spec.p_online < 1.0:
        grid.online_oracle = BernoulliChurn(
            spec.p_online, rngmod.derive(spec.seed, "scenario-churn")
        )
    balancer = None
    exchange = None
    balance_rng = None
    if spec.replication is not None:
        replication_config = ReplicationConfig(
            strategy=spec.replication,
            replicate_threshold=spec.replicate_threshold,
            retract_floor=spec.retract_floor,
            half_life=spec.replication_half_life,
        )
        tracker = LoadTracker(half_life=replication_config.half_life)
        resolver = PathResolver(grid)
        load_probe = LoadProbe(tracker, resolver)
        probe = (
            CompositeProbe([probe, load_probe]) if probe is not None else load_probe
        )
        balancer = ReplicaBalancer(
            grid, tracker, config=replication_config, probe=probe
        )
        balancer.subscribe(resolver.invalidate)
        exchange = ExchangeEngine(grid, probe=probe, balancer=balancer)
        # Balancing meetings draw from their own derived stream so the
        # operation mix below stays seed-for-seed comparable across
        # strategies (static included — it runs the same meetings and
        # simply never converts anyone).
        balance_rng = rngmod.derive(spec.seed, "scenario-balance")
    search = SearchEngine(grid, probe=probe)
    updates = UpdateEngine(grid, search=search, probe=probe, balancer=balancer)
    reads = ReadEngine(grid, search=search, probe=probe)
    ops_rng = rngmod.derive(spec.seed, "scenario-ops")
    query_keys = _workload(spec, "scenario-queries")
    addresses = grid.addresses()

    search_success = RateAccumulator()
    search_messages: list[int] = []
    read_success = RateAccumulator()
    coverages: list[float] = []
    update_messages: list[int] = []
    versions: dict[tuple[str, int], int] = {}

    meetings = (
        UniformMeetings(grid, rng=balance_rng) if exchange is not None else None
    )
    for op_index in range(spec.operations):
        if (
            meetings is not None
            and op_index
            and op_index % spec.balance_every == 0
        ):
            for _ in range(spec.balance_meetings):
                pair = meetings.next_pair()
                exchange.meet(*pair)
        start = ops_rng.choice(addresses)
        if items and ops_rng.random() < spec.update_fraction:
            item, holder = ops_rng.choice(items)
            version = versions.get((item.key, holder), 0) + 1
            versions[(item.key, holder)] = version
            result = updates.publish(
                start,
                item,
                holder,
                strategy=UpdateStrategy.BFS,
                recbreadth=spec.update_recbreadth,
                version=version,
            )
            coverages.append(result.coverage)
            update_messages.append(result.messages)
            read = reads.read_repeated(
                ops_rng.choice(addresses),
                item.key,
                holder,
                version,
                max_repetitions=spec.read_repetitions,
            )
            read_success.record(read.success)
        else:
            result = search.query_from(start, query_keys.next_key())
            search_success.record(result.found)
            if result.found:
                search_messages.append(result.messages)

    return ScenarioMetrics(
        spec=spec,
        construction_exchanges=report.exchanges,
        average_depth=report.average_depth,
        seeded_entries=seeded,
        searches=search_success.trials,
        search_success_rate=search_success.rate,
        search_messages_mean=(
            summarize(search_messages).mean if search_messages else 0.0
        ),
        updates=len(update_messages),
        update_coverage_mean=(
            summarize(coverages).mean if coverages else 0.0
        ),
        update_messages_mean=(
            summarize(update_messages).mean if update_messages else 0.0
        ),
        reads_after_update=read_success.trials,
        read_success_rate=read_success.rate,
        invariant_violations=len(grid.audit_routing()),
        replica_conversions=(
            balancer.stats.conversions if balancer is not None else 0
        ),
    )
