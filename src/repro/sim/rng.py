"""Seeded randomness utilities.

Every stochastic component of the reproduction draws from an explicit
:class:`random.Random` instance so that experiments are replayable from a
single integer seed.  :func:`derive` splits one master seed into independent
named streams (construction, churn, workload, searches, ...) so that e.g.
adding more searches to an experiment does not perturb the construction
phase.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive", "derive_seed", "spawn"]


def derive_seed(master_seed: int, stream: str) -> int:
    """Derive the integer seed of the named *stream*.

    Hashing ``(master_seed, stream)`` with SHA-256 makes streams
    statistically independent and stable across Python versions (unlike
    ``hash()``, which is salted).  Use this to hand whole sub-experiments
    or parallel trials their own master seed: the derivation depends only
    on the pair of arguments, never on execution order, so serial and
    parallel runs see identical seeds.
    """
    digest = hashlib.sha256(f"{master_seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive(master_seed: int, stream: str) -> random.Random:
    """Return an independent RNG for the named *stream*."""
    return random.Random(derive_seed(master_seed, stream))


def spawn(rng: random.Random) -> random.Random:
    """Fork a child RNG from *rng* (used for per-trial isolation)."""
    return random.Random(rng.getrandbits(64))
