"""Meeting schedulers — who meets whom during construction (paper §3).

The paper is deliberately agnostic about *why* peers meet ("they may meet
randomly, because they are involved in other operations, or because they
systematically want to build the access structure"); its simulations use
uniform random pairs.  We provide that scheduler plus two alternatives used
by ablations:

:class:`UniformMeetings`
    Uniformly random unordered pairs — the paper's §5 setting.
:class:`BiasedMeetings`
    Pairs biased towards peers with matching prefixes, modelling meetings
    triggered by search traffic (searches route towards one's own region).
:class:`RoundRobinMeetings`
    A deterministic sweep pairing each peer with a random partner once per
    round — bounds per-peer meeting skew.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core import keys as keyspace
from repro.core.grid import PGrid
from repro.core.peer import Address

__all__ = ["UniformMeetings", "BiasedMeetings", "RoundRobinMeetings"]


class _AddressCache:
    """Sorted address list memoized against the grid's membership version.

    Rebuilding (and re-sorting) the population on every meeting is an
    O(N log N) cost per pair; the version check amortizes it to one rebuild
    per actual join/leave.

    The rebuild is *lazy*: construction and invalidation are O(1), and
    the sorted list is only (re)materialized on the next :meth:`get`.
    Churn storms that touch membership many times between draws — e.g.
    a burst of join/leave callbacks — therefore cost one rebuild total,
    not one per event.
    """

    def __init__(self, grid: PGrid) -> None:
        self._grid = grid
        self._version: int | None = None
        self._addresses: list[Address] = []

    def get(self) -> list[Address]:
        version = self._grid.membership_version
        if version != self._version:
            self._version = version
            self._addresses = self._grid.addresses()
        return self._addresses


class UniformMeetings:
    """Uniformly random pairwise meetings (the paper's scheduler)."""

    def __init__(self, grid: PGrid, rng: random.Random | None = None) -> None:
        if len(grid) < 2:
            raise ValueError("meetings need at least two peers")
        self.grid = grid
        self._rng = rng or grid.rng
        self._cache = _AddressCache(grid)

    def refresh(self) -> None:
        """No-op, kept for backwards compatibility.

        The address cache keys on ``PGrid.membership_version``, so
        joins/leaves are visible at the next draw without an explicit
        (and formerly O(N log N)-per-call) rebuild here.
        """

    def next_pair(self) -> tuple[Address, Address]:
        """Draw one unordered uniform pair of distinct peers."""
        first, second = self._rng.sample(self._cache.get(), 2)
        return first, second

    def pairs(self) -> Iterator[tuple[Address, Address]]:
        """Infinite stream of meeting pairs."""
        while True:
            yield self.next_pair()


class BiasedMeetings:
    """Meetings biased towards prefix-related peers.

    With probability *bias* the second peer is drawn from those sharing the
    first peer's first bit (when any exist); otherwise uniformly.  Models
    construction piggy-backed on search traffic, which is concentrated along
    routing paths.
    """

    def __init__(
        self,
        grid: PGrid,
        bias: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"bias must be in [0, 1], got {bias}")
        if len(grid) < 2:
            raise ValueError("meetings need at least two peers")
        self.grid = grid
        self.bias = bias
        self._rng = rng or grid.rng
        self._cache = _AddressCache(grid)

    def next_pair(self) -> tuple[Address, Address]:
        """Draw one pair, prefix-biased."""
        addresses = self._cache.get()
        first = self._rng.choice(addresses)
        first_path = self.grid.peer(first).path
        if first_path and self._rng.random() < self.bias:
            related = [
                address
                for address in addresses
                if address != first
                and keyspace.common_prefix_length(
                    self.grid.peer(address).path, first_path
                )
                >= 1
            ]
            if related:
                return first, self._rng.choice(related)
        second = self._rng.choice(addresses)
        while second == first:
            second = self._rng.choice(addresses)
        return first, second

    def pairs(self) -> Iterator[tuple[Address, Address]]:
        """Infinite stream of meeting pairs."""
        while True:
            yield self.next_pair()


class RoundRobinMeetings:
    """Each round, every peer meets one random partner (shuffled sweep)."""

    def __init__(self, grid: PGrid, rng: random.Random | None = None) -> None:
        if len(grid) < 2:
            raise ValueError("meetings need at least two peers")
        self.grid = grid
        self._rng = rng or grid.rng
        self._cache = _AddressCache(grid)
        self._queue: list[Address] = []

    def next_pair(self) -> tuple[Address, Address]:
        """Next pair of the sweep, reshuffling when a round completes.

        Queue entries are validated against current membership: a peer
        removed mid-round is skipped rather than handed to the exchange
        engine as a dangling initiator.
        """
        first = None
        while self._queue:
            candidate = self._queue.pop()
            if self.grid.has_peer(candidate):
                first = candidate
                break
        if first is None:
            self._queue = list(self._cache.get())
            self._rng.shuffle(self._queue)
            first = self._queue.pop()
        addresses = self._cache.get()
        second = self._rng.choice(addresses)
        while second == first:
            second = self._rng.choice(addresses)
        return first, second

    def pairs(self) -> Iterator[tuple[Address, Address]]:
        """Infinite stream of meeting pairs."""
        while True:
            yield self.next_pair()
