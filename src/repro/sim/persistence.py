"""Grid snapshots: save/load a constructed P-Grid as JSON.

Construction is the expensive phase (the paper's §5.2 grid took ~10 h to
build in Mathematica); persisting the constructed structure lets the search
and update experiments — and the benchmark suite — reuse one grid across
runs.  The snapshot captures the complete peer state: paths, per-level
references, buddy lists, stored items and leaf-level index entries.
"""

from __future__ import annotations

import gzip
import json
import random
from pathlib import Path
from typing import Any

from repro.core.config import PGridConfig
from repro.core.grid import OnlineOracle, PGrid
from repro.core.storage import DataItem, DataRef
from repro.errors import SnapshotFormatError

FORMAT_TAG = "pgrid-snapshot/1"

__all__ = ["grid_to_dict", "grid_from_dict", "save_grid", "load_grid", "FORMAT_TAG"]


def grid_to_dict(grid: PGrid) -> dict[str, Any]:
    """Serialize *grid* (peer state only; RNG/oracle are run-time choices)."""
    peers = []
    for peer in grid.peers():
        peers.append(
            {
                "address": peer.address,
                "path": peer.path,
                "refs": peer.routing.to_lists(),
                "buddies": sorted(peer.buddies),
                "items": [
                    {"key": item.key, "value": item.value}
                    for item in sorted(peer.store.iter_items(), key=lambda i: i.key)
                ],
                "index": [
                    {
                        "key": ref.key,
                        "holder": ref.holder,
                        "version": ref.version,
                        "deleted": ref.deleted,
                    }
                    for ref in sorted(
                        peer.store.iter_refs(), key=lambda r: (r.key, r.holder)
                    )
                ],
            }
        )
    return {
        "format": FORMAT_TAG,
        "config": grid.config.to_dict(),
        "peers": peers,
    }


def grid_from_dict(
    data: dict[str, Any],
    *,
    rng: random.Random | None = None,
    online_oracle: OnlineOracle | None = None,
) -> PGrid:
    """Rebuild a grid from :func:`grid_to_dict` output."""
    if not isinstance(data, dict) or data.get("format") != FORMAT_TAG:
        raise SnapshotFormatError(
            f"not a {FORMAT_TAG} snapshot: format={data.get('format')!r}"
            if isinstance(data, dict)
            else "snapshot root must be an object"
        )
    try:
        config = PGridConfig.from_dict(data["config"])
        grid = PGrid(config, rng=rng, online_oracle=online_oracle)
        for record in data["peers"]:
            peer = grid.add_peer(int(record["address"]))
            peer.set_path(str(record["path"]))
            for level, refs in enumerate(record["refs"], start=1):
                peer.routing.set_refs(level, [int(r) for r in refs])
            peer.merge_buddies(int(b) for b in record["buddies"])
            for item in record["items"]:
                peer.store.store_item(
                    DataItem(key=str(item["key"]), value=item["value"])
                )
            for ref in record["index"]:
                peer.store.add_ref(
                    DataRef(
                        key=str(ref["key"]),
                        holder=int(ref["holder"]),
                        version=int(ref["version"]),
                        deleted=bool(ref.get("deleted", False)),
                    )
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"malformed snapshot: {exc}") from exc
    return grid


def save_grid(grid: PGrid, path: str | Path) -> Path:
    """Write *grid* to *path* as JSON; returns the path.

    A ``.gz`` suffix selects gzip compression — paper-scale snapshots
    (20 000 peers with 20 refs over 10 levels) are tens of megabytes as
    plain JSON and compress roughly 10x.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(grid_to_dict(grid), separators=(",", ":"))
    if target.suffix == ".gz":
        with gzip.open(target, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        target.write_text(payload, encoding="utf-8")
    return target


def load_grid(
    path: str | Path,
    *,
    rng: random.Random | None = None,
    online_oracle: OnlineOracle | None = None,
) -> PGrid:
    """Load a grid snapshot from *path* (gzip auto-detected by suffix)."""
    source = Path(path)
    try:
        if source.suffix == ".gz":
            with gzip.open(source, "rt", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.loads(source.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, gzip.BadGzipFile, OSError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise SnapshotFormatError(f"snapshot unreadable: {exc}") from exc
    return grid_from_dict(data, rng=rng, online_oracle=online_oracle)
