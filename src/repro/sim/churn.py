"""Peer availability (churn) models.

The paper models availability as a probability ``online: P -> [0, 1]``
evaluated whenever a peer is contacted (§2); the §5.2 experiments use a
uniform 30%.  Three models are provided:

:class:`BernoulliChurn`
    Memoryless per-contact coin flip — the paper's model: each contact to a
    peer independently succeeds with its online probability.
:class:`SessionChurn`
    Epoch-based on/off sessions: each peer is online for whole epochs with
    the given probability; :meth:`SessionChurn.advance_epoch` re-samples.
    Captures correlated availability within a burst of operations (the
    realistic refinement §6 hints at with "known reliability of peers").
:class:`FixedOnlineSet`
    Deterministic membership — used by failure-injection tests.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.core.peer import Address

__all__ = ["BernoulliChurn", "SessionChurn", "FixedOnlineSet"]


class BernoulliChurn:
    """Per-contact independent availability (the paper's model)."""

    def __init__(
        self,
        p_online: float,
        rng: random.Random,
        *,
        per_peer: Mapping[Address, float] | None = None,
    ) -> None:
        if not 0.0 <= p_online <= 1.0:
            raise ValueError(f"p_online must be in [0, 1], got {p_online}")
        self.p_online = p_online
        self._rng = rng
        self._per_peer = dict(per_peer) if per_peer else {}
        for address, probability in self._per_peer.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"per-peer online probability for {address} out of [0, 1]: "
                    f"{probability}"
                )

    def probability_for(self, address: Address) -> float:
        """The online probability in force for *address*."""
        return self._per_peer.get(address, self.p_online)

    def is_online(self, address: Address) -> bool:
        """Flip the availability coin for one contact attempt."""
        return self._rng.random() < self.probability_for(address)


class SessionChurn:
    """Epoch-correlated availability: peers stay up/down within an epoch."""

    def __init__(
        self,
        p_online: float,
        rng: random.Random,
        addresses: Iterable[Address],
    ) -> None:
        if not 0.0 <= p_online <= 1.0:
            raise ValueError(f"p_online must be in [0, 1], got {p_online}")
        self.p_online = p_online
        self._rng = rng
        self._addresses = list(addresses)
        self._online: set[Address] = set()
        self.epoch = 0
        self._resample()

    def _resample(self) -> None:
        self._online = {
            address
            for address in self._addresses
            if self._rng.random() < self.p_online
        }

    def advance_epoch(self) -> None:
        """Start a new epoch: re-sample the online set."""
        self.epoch += 1
        self._resample()

    def track(self, address: Address) -> None:
        """Add a peer created after construction to the churn population."""
        if address not in self._addresses:
            self._addresses.append(address)
            if self._rng.random() < self.p_online:
                self._online.add(address)

    @property
    def online_now(self) -> frozenset[Address]:
        """The set of currently online peers."""
        return frozenset(self._online)

    def is_online(self, address: Address) -> bool:
        """Whether *address* is up in the current epoch."""
        return address in self._online


class FixedOnlineSet:
    """Deterministic availability — explicit up/down control for tests."""

    def __init__(self, online: Iterable[Address] = ()) -> None:
        self._online = set(online)

    def set_online(self, address: Address, online: bool = True) -> None:
        """Mark one peer up or down."""
        if online:
            self._online.add(address)
        else:
            self._online.discard(address)

    def is_online(self, address: Address) -> bool:
        return address in self._online
