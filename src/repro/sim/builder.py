"""Driving construction to convergence (paper §5.1).

The paper's convergence criterion: the grid is *constructed* when the
average path length reaches a threshold ``t`` (they use 99% of ``maxl``);
the reported cost ``e`` is the number of ``exchange`` calls consumed up to
that point.  :class:`GridBuilder` runs a meeting scheduler against the
:class:`~repro.core.exchange.ExchangeEngine` until the threshold or a
budget is hit.

The average depth is tracked incrementally: every case-1 split deepens two
peers by one bit and every case-2/3 specialization deepens one, so the total
depth is a linear function of the engine's case counters — no O(N) rescan
per meeting.  Membership changes (churn joining/removing peers mid-build)
invalidate the tracked total; the builder detects them through
:attr:`~repro.core.grid.PGrid.membership_version` and rebases its offset
with one O(N) rescan per membership event instead of per meeting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.errors import NotConvergedError
from repro.sim.meetings import UniformMeetings


class MeetingScheduler(Protocol):
    """Anything that yields pairs of peers to run ``exchange`` on."""

    def next_pair(self) -> tuple[Address, Address]:
        """Return the next meeting pair."""
        ...  # pragma: no cover - protocol


@dataclass
class ConstructionSample:
    """One point of the convergence trajectory."""

    meetings: int
    exchanges: int
    average_depth: float


@dataclass
class ConstructionReport:
    """Result of one construction run."""

    converged: bool
    exchanges: int
    meetings: int
    average_depth: float
    threshold: float
    exchanges_per_peer: float
    peer_count: int
    stats: dict[str, int]
    trajectory: list[ConstructionSample] = field(default_factory=list)


class GridBuilder:
    """Runs random meetings until the grid converges or a budget runs out."""

    def __init__(
        self,
        grid: PGrid,
        *,
        scheduler: MeetingScheduler | None = None,
        engine: ExchangeEngine | None = None,
    ) -> None:
        if len(grid) < 2:
            raise ValueError("construction needs at least two peers")
        self.grid = grid
        self.scheduler = scheduler or UniformMeetings(grid)
        self.engine = engine or ExchangeEngine(grid)
        self._rebase_depth_offset()

    def _rebase_depth_offset(self) -> None:
        """One O(N) rescan anchoring the counters to the current population.

        Accounts for depth the engine's counters do not know about:
        snapshot-loaded grids, reused engines, and peers added or removed by
        churn since the last rebase.
        """
        self._membership_version = self.grid.membership_version
        self._depth_offset = sum(peer.depth for peer in self.grid.peers()) - (
            self._counter_depth()
        )

    def _counter_depth(self) -> int:
        stats = self.engine.stats
        return (
            2 * stats.case1_splits
            + stats.case2_specializations
            + stats.case3_specializations
        )

    def _average_depth(self) -> float:
        """Incremental average depth from the engine's case counters.

        Valid because construction only ever *extends* paths: case 1 adds
        one bit to each of two peers, cases 2/3 add one bit to one peer.
        Membership changes are caught via the grid's version counter and
        trigger a rebase.  Verified against a full rescan by the test suite.
        """
        if self.grid.membership_version != self._membership_version:
            self._rebase_depth_offset()
        return (self._depth_offset + self._counter_depth()) / len(self.grid)

    def build(
        self,
        *,
        threshold_fraction: float = 0.99,
        max_meetings: int | None = None,
        max_exchanges: int | None = None,
        sample_every: int | None = None,
        raise_on_budget: bool = False,
    ) -> ConstructionReport:
        """Run meetings until ``avg depth >= threshold_fraction * maxl``.

        ``max_meetings`` / ``max_exchanges`` bound the run (the paper's
        Fig. 4 grid hit a wall-clock budget before full convergence — pass a
        budget to reproduce that regime).  With *raise_on_budget* a budget
        stop raises :class:`NotConvergedError` instead of returning a report
        with ``converged=False``.  ``sample_every`` records the convergence
        trajectory every that-many meetings.
        """
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError(
                f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
            )
        if max_meetings is not None and max_meetings < 0:
            raise ValueError(f"max_meetings must be >= 0, got {max_meetings}")
        if max_exchanges is not None and max_exchanges < 0:
            raise ValueError(f"max_exchanges must be >= 0, got {max_exchanges}")
        if sample_every is not None and sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")

        threshold = threshold_fraction * self.grid.config.maxl
        trajectory: list[ConstructionSample] = []
        meetings_run = 0
        converged = self._average_depth() >= threshold

        while not converged:
            if max_meetings is not None and meetings_run >= max_meetings:
                break
            if max_exchanges is not None and self.engine.stats.calls >= max_exchanges:
                break
            first, second = self.scheduler.next_pair()
            self.engine.meet(first, second)
            meetings_run += 1
            current_depth = self._average_depth()
            if sample_every is not None and meetings_run % sample_every == 0:
                trajectory.append(
                    ConstructionSample(
                        meetings=meetings_run,
                        exchanges=self.engine.stats.calls,
                        average_depth=current_depth,
                    )
                )
            converged = current_depth >= threshold

        average_depth = self.grid.average_path_length()
        if not converged and raise_on_budget:
            raise NotConvergedError(
                f"construction stopped at average depth {average_depth:.3f} "
                f"< threshold {threshold:.3f} after "
                f"{self.engine.stats.calls} exchanges",
                exchanges=self.engine.stats.calls,
                average_depth=average_depth,
            )
        return ConstructionReport(
            converged=converged,
            exchanges=self.engine.stats.calls,
            meetings=self.engine.stats.meetings,
            average_depth=average_depth,
            threshold=threshold,
            exchanges_per_peer=self.engine.stats.calls / len(self.grid),
            peer_count=len(self.grid),
            stats=self.engine.stats.snapshot(),
            trajectory=trajectory,
        )


def construct_grid(grid: PGrid, *, engine: str = "object", **build_kwargs) -> ConstructionReport:
    """Build *grid* to convergence with the selected construction engine.

    ``engine`` selects the core (single wiring point for the facade, the
    CLI and the benchmarks):

    * ``"object"`` — :class:`GridBuilder` on the object core.
    * ``"array"`` — the strict flat-array kernel
      (:class:`repro.fast.builder.ArrayGridBuilder`): bit-identical RNG
      stream and stopping point, results written back into *grid*.
    * ``"batch"`` — the vectorized batched-round engine
      (:class:`repro.fast.batch.BatchGridBuilder`, requires numpy):
      deterministic and statistically equivalent but not bit-identical;
      an order of magnitude faster.  Also written back into *grid*.

    The fast cores are imported lazily so the object core keeps working
    without the ``repro.fast`` optional machinery (e.g. numpy-less
    installs still get ``engine="array"`` via the portable reader).
    """
    if engine == "object":
        return GridBuilder(grid).build(**build_kwargs)
    if engine == "array":
        from repro.fast.arraygrid import ArrayGrid
        from repro.fast.builder import ArrayGridBuilder

        agrid = ArrayGrid.from_pgrid(grid)
        report = ArrayGridBuilder(agrid).build(**build_kwargs)
        agrid.write_back(grid)
        return report
    if engine == "batch":
        from repro.fast.arraygrid import ArrayGrid
        from repro.fast.batch import BatchGridBuilder

        agrid = ArrayGrid.from_pgrid(grid)
        report = BatchGridBuilder(agrid).build(**build_kwargs)
        agrid.write_back(grid)
        return report
    raise ValueError(
        f"unknown construction engine {engine!r}; expected 'object', 'array' or 'batch'"
    )


def construct_snapshot(
    config,
    n_peers: int,
    *,
    seed: int = 0,
    p_online: float = 1.0,
    grid: PGrid | None = None,
    **build_kwargs,
):
    """Build a grid and export it as a shared-memory ``GridSnapshot``.

    The build-once/fan-out entry point for parallel sweeps: construct the
    routing state a single time, publish it into a named shared-memory
    segment, and let every worker process attach the segment instead of
    unpickling its own copy (see :mod:`repro.fast.snapshot`).

    Two modes:

    * gridless (default): a :class:`~repro.fast.BatchGridBuilder` run —
      no per-peer Python objects, so 100k+ peer grids are tractable;
    * *grid* given: the already-built object-core :class:`PGrid` is
      bridged through :class:`~repro.fast.ArrayGrid` instead (stores and
      all), and *n_peers*/*seed*/*build_kwargs* are ignored.

    Returns ``(snapshot, report)`` — *report* is the construction report
    (``None`` in bridge mode).  The caller owns the snapshot and must
    ``close()``/``unlink()`` it (or use it as a context manager).
    Requires numpy.
    """
    from repro.fast import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise RuntimeError("construct_snapshot requires numpy")
    from repro.fast.snapshot import GridSnapshot

    if grid is not None:
        from repro.fast.arraygrid import ArrayGrid

        agrid = ArrayGrid.from_pgrid(grid)
        return GridSnapshot.from_arraygrid(agrid, p_online=p_online), None
    from repro.fast.batch import BatchGridBuilder

    builder = BatchGridBuilder(n=n_peers, config=config, seed=seed)
    report = builder.build(**build_kwargs)
    snapshot = GridSnapshot.from_batch_builder(builder, p_online=p_online)
    return snapshot, report
