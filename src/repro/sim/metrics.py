"""Light-weight measurement helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "Summary",
    "summarize",
    "RateAccumulator",
    "flatten_metrics",
    "histogram_bins",
    "gini",
    "bootstrap_ci",
]


def flatten_metrics(snapshot: dict) -> dict[str, float]:
    """Flatten a :meth:`repro.obs.MetricsRegistry.snapshot` into one level.

    Counters and gauges keep their names; each histogram contributes
    ``name.count`` / ``name.total`` / ``name.mean``.  The flat form is what
    experiment records and :func:`summarize`-style post-processing expect
    (duck-typed on the snapshot dict, so this module needs no obs import).
    """
    flat: dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, value in snapshot.get("gauges", {}).items():
        flat[name] = float(value)
    for name, hist in snapshot.get("histograms", {}).items():
        count = float(hist["count"])
        total = float(hist["total"])
        flat[f"{name}.count"] = count
        flat[f"{name}.total"] = total
        flat[f"{name}.mean"] = total / count if count else 0.0
    return flat


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the sample mean.

    Used by experiment reports to attach uncertainty to measured rates and
    message counts without distributional assumptions (search costs are
    decidedly non-normal: bounded below, long right tail under churn).
    """
    import random as _random

    if not values:
        raise ValueError("bootstrap_ci of an empty sample is undefined")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    data = [float(v) for v in values]
    n = len(data)
    rng = _random.Random(seed)
    means = sorted(
        sum(rng.choice(data) for _ in range(n)) / n for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lower = means[max(0, int(alpha * resamples))]
    upper = means[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return lower, upper


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skewed).

    Used by the load-balance ablation: per-peer query/storage load under
    uniform vs. Zipf workloads.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("gini of an empty sample is undefined")
    if any(v < 0 for v in data):
        raise ValueError("gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    weighted = sum((index + 1) * value for index, value in enumerate(data))
    return max(0.0, (2 * weighted) / (n * total) - (n + 1) / n)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for experiment records."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Summary statistics of a non-empty sample (population stdev)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    middle = count // 2
    if count % 2:
        median = data[middle]
    else:
        median = (data[middle - 1] + data[middle]) / 2
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        median=median,
    )


class RateAccumulator:
    """Counts successes over trials; reports the empirical rate."""

    def __init__(self) -> None:
        self.successes = 0
        self.trials = 0

    def record(self, success: bool) -> None:
        """Record one trial outcome."""
        self.trials += 1
        if success:
            self.successes += 1

    @property
    def rate(self) -> float:
        """Empirical success rate (0.0 when no trials recorded)."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation half-width of the rate's CI."""
        if self.trials == 0:
            return 0.0
        p = self.rate
        return z * math.sqrt(p * (1 - p) / self.trials)


def histogram_bins(
    values: Sequence[int], *, max_bins: int | None = None
) -> list[tuple[int, int]]:
    """Integer histogram as sorted ``(value, count)`` pairs.

    With *max_bins*, the tail is merged into the final bin (used to keep
    Fig. 4 renderings compact).
    """
    counter = Counter(values)
    pairs = sorted(counter.items())
    if max_bins is None or len(pairs) <= max_bins:
        return pairs
    head = pairs[: max_bins - 1]
    tail_count = sum(count for _, count in pairs[max_bins - 1 :])
    tail_value = pairs[max_bins - 1][0]
    return [*head, (tail_value, tail_count)]
