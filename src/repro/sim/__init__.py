"""Simulation substrate: randomness, meetings, churn, construction driver,
workloads, metrics and grid snapshots."""

from repro.sim.builder import (
    ConstructionReport,
    ConstructionSample,
    GridBuilder,
)
from repro.sim.churn import BernoulliChurn, FixedOnlineSet, SessionChurn
from repro.sim.events import (
    EventSimulator,
    MeetingProcess,
    PoissonProcess,
    SessionProcess,
    TimedConstructionReport,
    TimedSample,
    run_timed_construction,
)
from repro.sim.meetings import BiasedMeetings, RoundRobinMeetings, UniformMeetings
from repro.sim.metrics import (
    RateAccumulator,
    Summary,
    bootstrap_ci,
    flatten_metrics,
    gini,
    histogram_bins,
    summarize,
)
from repro.sim.scenario import (
    KeyDistribution,
    ScenarioMetrics,
    ScenarioSpec,
    run_scenario,
)
from repro.sim.persistence import grid_from_dict, grid_to_dict, load_grid, save_grid
from repro.sim.rng import derive, spawn
from repro.sim.topology import (
    ProximityExchangeEngine,
    ProximitySearchEngine,
    Topology,
)
from repro.sim.workload import (
    QueryStream,
    UniformKeyWorkload,
    ZipfKeyWorkload,
    generate_items,
    zipf_weights,
)

__all__ = [
    "BernoulliChurn",
    "BiasedMeetings",
    "ConstructionReport",
    "ConstructionSample",
    "EventSimulator",
    "FixedOnlineSet",
    "GridBuilder",
    "KeyDistribution",
    "MeetingProcess",
    "PoissonProcess",
    "ProximityExchangeEngine",
    "ProximitySearchEngine",
    "QueryStream",
    "RateAccumulator",
    "RoundRobinMeetings",
    "ScenarioMetrics",
    "ScenarioSpec",
    "SessionChurn",
    "SessionProcess",
    "Summary",
    "TimedConstructionReport",
    "TimedSample",
    "Topology",
    "UniformKeyWorkload",
    "UniformMeetings",
    "ZipfKeyWorkload",
    "derive",
    "flatten_metrics",
    "generate_items",
    "grid_from_dict",
    "bootstrap_ci",
    "gini",
    "grid_to_dict",
    "histogram_bins",
    "load_grid",
    "run_scenario",
    "run_timed_construction",
    "save_grid",
    "spawn",
    "summarize",
    "zipf_weights",
]
