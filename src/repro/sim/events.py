"""Discrete-event simulation kernel.

The paper's simulations are round-based ("peers meet randomly pairwise");
this kernel adds a *time* dimension so experiments can ask time-shaped
questions: how long until convergence at a given meeting rate, what happens
when sessions churn while the grid is still forming, how stale does the
index get under a given update rate.

Design: a classic event-heap simulator.

* :class:`EventSimulator` owns the virtual clock and a priority queue of
  ``(time, sequence, callback)`` entries; ``run_until`` / ``run_next``
  advance the clock.
* :class:`PoissonProcess` schedules recurring events with exponential
  inter-arrival times — used for meeting arrivals and update arrivals.
* :class:`SessionProcess` drives a :class:`~repro.sim.churn.SessionChurn`
  model by re-sampling the online population at epoch boundaries.
* :class:`MeetingProcess` wires a meeting scheduler and an exchange engine
  into the event loop and records the convergence trajectory over *time*
  (the round-based :class:`~repro.sim.builder.GridBuilder` records it over
  meetings).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.sim.churn import SessionChurn
from repro.sim.meetings import UniformMeetings

Callback = Callable[[float], None]


class EventSimulator:
    """A minimal event-heap simulator with a virtual clock."""

    def __init__(self) -> None:
        self._clock = 0.0
        self._sequence = itertools.count()
        self._heap: list[tuple[float, int, Callback]] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._clock

    @property
    def pending(self) -> int:
        """Number of scheduled events."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run *callback(time)* after *delay* time units."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(
            self._heap, (self._clock + delay, next(self._sequence), callback)
        )

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run *callback(time)* at the absolute virtual *time*."""
        if time < self._clock:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self._clock}"
            )
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def run_next(self) -> bool:
        """Execute the earliest event; ``False`` when none is pending."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._clock = time
        callback(time)
        return True

    def run_until(self, deadline: float, *, max_events: int | None = None) -> int:
        """Run events up to *deadline* (inclusive); returns events executed.

        Events scheduled beyond the deadline stay queued.  The clock ends
        exactly at *deadline*, unless *max_events* truncated the run, in
        which case it stays at the last executed event's time.
        """
        if deadline < self._clock:
            raise ValueError(
                f"deadline {deadline} is before current time {self._clock}"
            )
        executed = 0
        truncated = False
        while self._heap and self._heap[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                truncated = True
                break
            self.run_next()
            executed += 1
        if not truncated:
            self._clock = deadline
        return executed


class PoissonProcess:
    """Recurring events with exponential inter-arrival times.

    Calls *action(time)* at each arrival and reschedules itself until
    :meth:`stop` is called.
    """

    def __init__(
        self,
        simulator: EventSimulator,
        rate: float,
        action: Callback,
        rng: random.Random,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.simulator = simulator
        self.rate = rate
        self.action = action
        self._rng = rng
        self._running = False
        self.arrivals = 0

    def start(self) -> None:
        """Begin generating arrivals."""
        if not self._running:
            self._running = True
            self._schedule_next()

    def stop(self) -> None:
        """Stop after the currently queued arrival (if any) fires."""
        self._running = False

    def _schedule_next(self) -> None:
        self.simulator.schedule(
            self._rng.expovariate(self.rate), self._fire
        )

    def _fire(self, time: float) -> None:
        if not self._running:
            return
        self.arrivals += 1
        self.action(time)
        if self._running:
            self._schedule_next()


class SessionProcess:
    """Drives epoch-based churn: re-samples the online set periodically."""

    def __init__(
        self,
        simulator: EventSimulator,
        churn: SessionChurn,
        epoch_length: float,
    ) -> None:
        if epoch_length <= 0:
            raise ValueError(f"epoch_length must be > 0, got {epoch_length}")
        self.simulator = simulator
        self.churn = churn
        self.epoch_length = epoch_length
        self._running = False

    def start(self) -> None:
        """Begin advancing epochs."""
        if not self._running:
            self._running = True
            self.simulator.schedule(self.epoch_length, self._tick)

    def stop(self) -> None:
        """Stop advancing epochs."""
        self._running = False

    def _tick(self, _time: float) -> None:
        if not self._running:
            return
        self.churn.advance_epoch()
        self.simulator.schedule(self.epoch_length, self._tick)


@dataclass
class TimedSample:
    """One (time, exchanges, average depth) point."""

    time: float
    exchanges: int
    average_depth: float


@dataclass
class TimedConstructionReport:
    """Result of a time-driven construction run."""

    duration: float
    meetings: int
    exchanges: int
    average_depth: float
    converged: bool
    trajectory: list[TimedSample] = field(default_factory=list)


class MeetingProcess:
    """Random pairwise meetings as a Poisson arrival process.

    Each arrival draws a pair from the scheduler and runs ``exchange``;
    meetings where either endpoint is offline (per the grid's oracle) are
    skipped — modelling that two peers must both be up to talk.
    """

    def __init__(
        self,
        simulator: EventSimulator,
        grid: PGrid,
        *,
        rate: float,
        rng: random.Random | None = None,
        engine: ExchangeEngine | None = None,
    ) -> None:
        self.simulator = simulator
        self.grid = grid
        self.engine = engine or ExchangeEngine(grid)
        self.scheduler = UniformMeetings(grid, rng or grid.rng)
        self.skipped_offline = 0
        self._process = PoissonProcess(
            simulator, rate, self._meet, rng or grid.rng
        )

    @property
    def meetings(self) -> int:
        """Meetings executed (offline-skipped arrivals not counted)."""
        return self.engine.stats.meetings

    def start(self) -> None:
        """Begin the arrival process."""
        self._process.start()

    def stop(self) -> None:
        """Stop the arrival process."""
        self._process.stop()

    def _meet(self, _time: float) -> None:
        first, second = self.scheduler.next_pair()
        if not (self.grid.is_online(first) and self.grid.is_online(second)):
            self.skipped_offline += 1
            return
        self.engine.meet(first, second)


def run_timed_construction(
    grid: PGrid,
    *,
    meeting_rate: float,
    duration: float,
    sample_every: float | None = None,
    churn: SessionChurn | None = None,
    epoch_length: float = 1.0,
    rng: random.Random | None = None,
) -> TimedConstructionReport:
    """Build a grid under a Poisson meeting process for *duration* time.

    With *churn*, the online population re-samples every *epoch_length*
    and meetings involving offline endpoints are skipped — construction
    under realistic availability, which the paper's round-based runs
    cannot express.
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    simulator = EventSimulator()
    process = MeetingProcess(
        simulator, grid, rate=meeting_rate, rng=rng
    )
    process.start()
    if churn is not None:
        grid.online_oracle = churn
        SessionProcess(simulator, churn, epoch_length).start()

    trajectory: list[TimedSample] = []
    if sample_every is not None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be > 0, got {sample_every}")

        def sample(time: float) -> None:
            trajectory.append(
                TimedSample(
                    time=time,
                    exchanges=process.engine.stats.calls,
                    average_depth=grid.average_path_length(),
                )
            )
            if time + sample_every <= duration:
                simulator.schedule(sample_every, sample)

        simulator.schedule(sample_every, sample)

    simulator.run_until(duration)
    process.stop()
    average_depth = grid.average_path_length()
    return TimedConstructionReport(
        duration=duration,
        meetings=process.meetings,
        exchanges=process.engine.stats.calls,
        average_depth=average_depth,
        converged=average_depth >= 0.99 * grid.config.maxl,
        trajectory=trajectory,
    )
