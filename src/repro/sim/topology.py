"""Network topology model: peer coordinates and link latencies.

§6 lists "knowledge on the network topology" among the parameters P-Grid
construction could exploit.  The classic instantiation (proximity neighbor
selection, later canonized for DHTs by Gummadi et al.) needs only a
latency metric between peers; we model peers as points in a unit square
with Euclidean latency, which preserves the triangle-inequality structure
real RTTs approximately have.

Two integration points use this model (see :mod:`repro.core.proximity`):

* **proximity reference selection** — when a reference set overflows
  ``refmax``, keep the nearest candidates instead of a random sample;
* **proximity routing** — try references nearest-first instead of in
  random order.

Both are *optimizations*: correctness and the §2 invariant are untouched,
since any reference at a level is as correct as any other.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.core.config import PGridConfig, SearchConfig
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.search import SearchEngine
from repro.obs.probe import Probe

__all__ = [
    "Topology",
    "ProximitySearchEngine",
    "ProximityExchangeEngine",
]


class Topology:
    """Random 2D peer coordinates with Euclidean latency."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._coordinates: dict[Address, tuple[float, float]] = {}

    def place(self, address: Address) -> tuple[float, float]:
        """Assign (or return) the coordinates for *address*."""
        point = self._coordinates.get(address)
        if point is None:
            point = (self._rng.random(), self._rng.random())
            self._coordinates[address] = point
        return point

    def place_all(self, addresses: list[Address]) -> None:
        """Assign coordinates to every listed address."""
        for address in addresses:
            self.place(address)

    def coordinates(self, address: Address) -> tuple[float, float]:
        """Coordinates of *address* (placing it on first use)."""
        return self.place(address)

    def latency(self, a: Address, b: Address) -> float:
        """Euclidean latency between two peers."""
        xa, ya = self.coordinates(a)
        xb, yb = self.coordinates(b)
        return math.hypot(xa - xb, ya - yb)

    def nearest(self, origin: Address, candidates: list[Address], count: int) -> list[Address]:
        """The *count* candidates nearest to *origin* (ties by address)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        ranked = sorted(
            candidates, key=lambda other: (self.latency(origin, other), other)
        )
        return ranked[:count]

    def path_latency(self, hops: list[Address]) -> float:
        """Total latency along a hop sequence."""
        return sum(
            self.latency(a, b) for a, b in zip(hops, hops[1:])
        )


class ProximitySearchEngine(SearchEngine):
    """Fig. 2 search with proximity routing: nearest reference first.

    Correctness is identical to the base engine (any reference at the
    divergence level is valid); only the *order* of attempts changes, so
    successful chains prefer short links.  Under full availability the
    first attempt succeeds and the whole chain is nearest-possible; under
    churn the fallback attempts walk outward by distance.
    """

    def __init__(
        self,
        grid: PGrid,
        topology: Topology,
        *,
        config: SearchConfig | None = None,
        probe: Probe | None = None,
    ) -> None:
        super().__init__(grid, config=config, probe=probe, topology=topology)

    def _attempt_order(
        self, peer: Peer, refs: list[Address]
    ) -> Iterator[Address]:
        """Nearest-first attempt order (no RNG draw, unlike the base)."""
        return iter(self.topology.nearest(peer.address, refs, len(refs)))


class ProximityExchangeEngine(ExchangeEngine):
    """Fig. 3 exchange with proximity reference *retention*.

    When the union of two peers' reference sets overflows ``refmax``, the
    paper keeps a uniform random subset; this variant keeps the candidates
    nearest to the retaining peer (proximity neighbor selection).  The
    retained sets satisfy the same invariant — proximity only biases which
    of the equally-valid references survive.
    """

    def __init__(
        self,
        grid: PGrid,
        topology: Topology,
        *,
        config: PGridConfig | None = None,
        probe: Probe | None = None,
    ) -> None:
        super().__init__(grid, config=config, probe=probe)
        self.topology = topology

    def _exchange_refs(self, a1: Peer, a2: Peer, lc: int) -> None:
        levels = (
            range(1, lc + 1)
            if self.config.exchange_refs_all_levels
            else (lc,)
        )
        for level in levels:
            combined = [
                address
                for address in (*a1.routing.refs(level), *a2.routing.refs(level))
                if address not in (a1.address, a2.address)
            ]
            if not combined:
                continue
            for peer in (a1, a2):
                union = list(dict.fromkeys([*peer.routing.refs(level), *combined]))
                keep = self.topology.nearest(
                    peer.address, union, peer.routing.refmax
                )
                peer.routing.set_refs(level, keep)
