"""Workload generators: keys, data items and query streams.

The paper's simulations draw uniformly random binary keys (§5); the skewed
(Zipf) generator supports the §6 future-work ablation that shows where the
uniformity assumption breaks.
"""

from __future__ import annotations

import itertools
import math
import random
from bisect import bisect
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core import keys as keyspace
from repro.core.storage import DataItem

__all__ = [
    "UniformKeyWorkload",
    "ZipfKeyWorkload",
    "QueryStream",
    "generate_items",
    "zipf_weights",
]


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights ``1/rank^exponent`` for *count* ranks."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass
class UniformKeyWorkload:
    """Uniformly random keys of a fixed length — the paper's workload."""

    key_length: int
    rng: random.Random

    def __post_init__(self) -> None:
        if self.key_length < 1:
            raise ValueError(f"key_length must be >= 1, got {self.key_length}")

    def next_key(self) -> str:
        """One uniformly random key."""
        return keyspace.random_key(self.key_length, self.rng)

    def keys(self, count: int) -> list[str]:
        """A batch of *count* keys (duplicates possible, as in the paper)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_key() for _ in range(count)]


#: Ranks kept exact (cumulative table) by the sampled Zipf mode.
_SAMPLED_HEAD = 65536


@dataclass
class ZipfKeyWorkload:
    """Zipf-skewed keys: low-value leaves are exponentially more popular.

    Leaf intervals are ranked by numeric value; leaf popularity follows a
    Zipf law with the given exponent.  ``exponent = 0`` degenerates to the
    uniform workload.

    ``sampled`` selects the draw algorithm.  ``False`` materializes the
    full ``2^key_length`` cumulative weight table (exact, limited to
    ``key_length <= 24``); ``True`` keeps only the head of the
    distribution exact and inverts the continuous Zipf integral for the
    tail — O(head) memory for arbitrarily long keys, at the price of a
    relative weight error below ``1/(12 * head^2)`` per tail rank (the
    Euler–Maclaurin midpoint-rule bound).  The default ``None`` picks
    exact for ``key_length <= 24`` (bit-identical to the historical
    behaviour) and sampled beyond, where exact was previously an error.
    """

    key_length: int
    rng: random.Random
    exponent: float = 1.0
    sampled: bool | None = None

    def __post_init__(self) -> None:
        if self.key_length < 1:
            raise ValueError(f"key_length must be >= 1, got {self.key_length}")
        if self.sampled is None:
            self.sampled = self.key_length > 24
        if not self.sampled and self.key_length > 24:
            raise ValueError(
                "exact ZipfKeyWorkload materializes 2^key_length weights; "
                f"key_length {self.key_length} is too large (max 24) — "
                "pass sampled=True for the inverse-CDF mode"
            )
        if self.sampled:
            self._init_sampled()
        else:
            self._weights = zipf_weights(2**self.key_length, self.exponent)
            # random.choices re-accumulates ``weights`` on every call;
            # handing it the cumulative table instead is bit-identical
            # (same accumulate, same random() draws) and O(log n)/draw.
            self._cum_weights = list(itertools.accumulate(self._weights))
            self._population = range(2**self.key_length)

    # -- sampled mode (inverse CDF over ranks) -------------------------------

    def _init_sampled(self) -> None:
        count = 2**self.key_length
        head = min(count, _SAMPLED_HEAD)
        exponent = self.exponent
        cumulative: list[float] = []
        total = 0.0
        for rank in range(1, head + 1):
            total += 1.0 / rank**exponent
            cumulative.append(total)
        self._head_cum = cumulative
        self._head = head
        self._tail_mass = (
            self._tail_integral(head + 0.5, count + 0.5) if count > head else 0.0
        )
        self._total_mass = total + self._tail_mass

    def _tail_integral(self, low: float, high: float) -> float:
        """``integral of x^-s`` over ``[low, high]`` (midpoint-rule mass of
        the ranks whose intervals the bounds enclose)."""
        exponent = self.exponent
        if exponent == 1.0:
            return math.log(high / low)
        power = 1.0 - exponent
        return (high**power - low**power) / power

    def _draw_sampled(self) -> int:
        """One 0-based Zipf value via exact head + inverted integral tail."""
        target = self.rng.random() * self._total_mass
        head_mass = self._head_cum[-1]
        if target < head_mass or not self._tail_mass:
            return bisect(self._head_cum, target)
        # Invert integral(head+0.5 .. t) = target - head_mass for t.
        remaining = target - head_mass
        low = self._head + 0.5
        exponent = self.exponent
        if exponent == 1.0:
            t = low * math.exp(remaining)
        else:
            power = 1.0 - exponent
            t = (low**power + power * remaining) ** (1.0 / power)
        rank = int(t + 0.5)
        return max(self._head, min(2**self.key_length - 1, rank - 1))

    def next_key(self) -> str:
        """One Zipf-distributed key."""
        if self.sampled:
            value = self._draw_sampled()
        else:
            value = self.rng.choices(
                self._population, cum_weights=self._cum_weights, k=1
            )[0]
        return format(value, f"0{self.key_length}b")

    def keys(self, count: int) -> list[str]:
        """A batch of *count* keys."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self.sampled:
            return [self.next_key() for _ in range(count)]
        values = self.rng.choices(
            self._population, cum_weights=self._cum_weights, k=count
        )
        return [format(value, f"0{self.key_length}b") for value in values]


def generate_items(
    keys: Sequence[str], *, payload_prefix: str = "item"
) -> list[DataItem]:
    """Wrap raw keys into :class:`DataItem` objects with synthetic payloads."""
    return [
        DataItem(key=key, value=f"{payload_prefix}-{index}")
        for index, key in enumerate(keys)
    ]


class QueryStream:
    """An infinite stream of (start peer, query key) search requests.

    Start peers are uniform over the population, matching §5.2 ("a search
    can start at each peer").
    """

    def __init__(
        self,
        addresses: Sequence[int],
        workload: UniformKeyWorkload | ZipfKeyWorkload,
        rng: random.Random,
    ) -> None:
        if not addresses:
            raise ValueError("QueryStream needs at least one start address")
        self._addresses = list(addresses)
        self._workload = workload
        self._rng = rng

    def next_query(self) -> tuple[int, str]:
        """Draw one (start address, key) pair."""
        return self._rng.choice(self._addresses), self._workload.next_key()

    def queries(self, count: int) -> Iterator[tuple[int, str]]:
        """Yield *count* query requests."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_query()
