"""Workload generators: keys, data items and query streams.

The paper's simulations draw uniformly random binary keys (§5); the skewed
(Zipf) generator supports the §6 future-work ablation that shows where the
uniformity assumption breaks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core import keys as keyspace
from repro.core.storage import DataItem

__all__ = [
    "UniformKeyWorkload",
    "ZipfKeyWorkload",
    "QueryStream",
    "generate_items",
    "zipf_weights",
]


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights ``1/rank^exponent`` for *count* ranks."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass
class UniformKeyWorkload:
    """Uniformly random keys of a fixed length — the paper's workload."""

    key_length: int
    rng: random.Random

    def __post_init__(self) -> None:
        if self.key_length < 1:
            raise ValueError(f"key_length must be >= 1, got {self.key_length}")

    def next_key(self) -> str:
        """One uniformly random key."""
        return keyspace.random_key(self.key_length, self.rng)

    def keys(self, count: int) -> list[str]:
        """A batch of *count* keys (duplicates possible, as in the paper)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_key() for _ in range(count)]


@dataclass
class ZipfKeyWorkload:
    """Zipf-skewed keys: low-value leaves are exponentially more popular.

    Leaf intervals are ranked by numeric value; leaf popularity follows a
    Zipf law with the given exponent.  ``exponent = 0`` degenerates to the
    uniform workload.
    """

    key_length: int
    rng: random.Random
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.key_length < 1:
            raise ValueError(f"key_length must be >= 1, got {self.key_length}")
        if self.key_length > 24:
            raise ValueError(
                "ZipfKeyWorkload materializes 2^key_length weights; "
                f"key_length {self.key_length} is too large (max 24)"
            )
        self._weights = zipf_weights(2**self.key_length, self.exponent)
        self._population = range(2**self.key_length)

    def next_key(self) -> str:
        """One Zipf-distributed key."""
        value = self.rng.choices(self._population, weights=self._weights, k=1)[0]
        return format(value, f"0{self.key_length}b")

    def keys(self, count: int) -> list[str]:
        """A batch of *count* keys."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        values = self.rng.choices(self._population, weights=self._weights, k=count)
        return [format(value, f"0{self.key_length}b") for value in values]


def generate_items(
    keys: Sequence[str], *, payload_prefix: str = "item"
) -> list[DataItem]:
    """Wrap raw keys into :class:`DataItem` objects with synthetic payloads."""
    return [
        DataItem(key=key, value=f"{payload_prefix}-{index}")
        for index, key in enumerate(keys)
    ]


class QueryStream:
    """An infinite stream of (start peer, query key) search requests.

    Start peers are uniform over the population, matching §5.2 ("a search
    can start at each peer").
    """

    def __init__(
        self,
        addresses: Sequence[int],
        workload: UniformKeyWorkload | ZipfKeyWorkload,
        rng: random.Random,
    ) -> None:
        if not addresses:
            raise ValueError("QueryStream needs at least one start address")
        self._addresses = list(addresses)
        self._workload = workload
        self._rng = rng

    def next_query(self) -> tuple[int, str]:
        """Draw one (start address, key) pair."""
        return self._rng.choice(self._addresses), self._workload.next_key()

    def queries(self, count: int) -> Iterator[tuple[int, str]]:
        """Yield *count* query requests."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_query()
