"""Performance layer: parallel trial execution and benchmark plumbing.

:mod:`repro.perf.parallel` runs independent experiment trials across a
process pool with deterministic per-trial RNG derivation, so parallel
results are bit-identical to serial ones for the same master seed.
"""

from repro.perf.parallel import (
    TrialSpec,
    merge_registries,
    parallel_starmap,
    resolve_jobs,
    run_trials,
)

__all__ = [
    "TrialSpec",
    "merge_registries",
    "parallel_starmap",
    "resolve_jobs",
    "run_trials",
]
