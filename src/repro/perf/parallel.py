"""Parallel execution of independent experiment trials.

The paper's evaluation is a large family of *embarrassingly parallel* runs:
every table/figure sweeps a parameter space where each point builds its own
grid from its own derived RNG stream (:func:`repro.sim.rng.derive`).  This
module fans those points out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------
A trial function must derive **all** of its randomness from the arguments it
is called with (typically a master seed plus a trial-unique stream name fed
to :func:`repro.sim.rng.derive`), and must not read or advance any
process-global RNG.  Under that contract the executor is pure plumbing:
``run_trials(fn, specs, jobs=N)`` returns exactly the same list, element for
element, as ``[fn(**s.kwargs) for s in specs]`` — results are bit-identical
for every ``jobs`` value, which the property tests assert end-to-end.

Results are always returned in submission order (never completion order),
so downstream table assembly and metrics merging are order-stable too.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TrialSpec",
    "merge_registries",
    "parallel_starmap",
    "resolve_jobs",
    "run_trials",
]


@dataclass(frozen=True)
class TrialSpec:
    """One trial: keyword arguments for a picklable trial function.

    ``label`` is carried through for reporting; it takes no part in
    execution.
    """

    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _invoke(payload: tuple[Callable[..., Any], dict[str, Any]]) -> Any:
    """Module-level trampoline so (fn, kwargs) pairs cross the pickle boundary."""
    fn, kwargs = payload
    return fn(**kwargs)


def run_trials(
    fn: Callable[..., Any],
    specs: Sequence[TrialSpec],
    *,
    jobs: int | None = 1,
) -> list[Any]:
    """Run ``fn(**spec.kwargs)`` for every spec; results in spec order.

    ``jobs <= 1`` runs serially in-process (no executor, no pickling).
    ``fn`` must be a module-level callable and every ``kwargs`` value must
    be picklable when ``jobs > 1``.
    """
    jobs = resolve_jobs(jobs)
    payloads = [(fn, spec.kwargs) for spec in specs]
    if jobs <= 1 or len(payloads) <= 1:
        return [_invoke(payload) for payload in payloads]
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(_invoke, payloads))


def parallel_starmap(
    fn: Callable[..., Any],
    kwargs_list: Iterable[dict[str, Any]],
    *,
    jobs: int | None = 1,
) -> list[Any]:
    """Convenience wrapper: :func:`run_trials` over plain kwargs dicts."""
    return run_trials(
        fn, [TrialSpec(kwargs=kwargs) for kwargs in kwargs_list], jobs=jobs
    )


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold per-trial metric shards into one registry, in trial order.

    Uses :meth:`MetricsRegistry.merge`, so counters and histograms add
    exactly and the merged snapshot of a parallel run equals the serial
    run's merged snapshot.
    """
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
