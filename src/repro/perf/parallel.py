"""Parallel execution of independent experiment trials.

The paper's evaluation is a large family of *embarrassingly parallel* runs:
every table/figure sweeps a parameter space where each point builds its own
grid from its own derived RNG stream (:func:`repro.sim.rng.derive`).  This
module fans those points out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract
--------------------
A trial function must derive **all** of its randomness from the arguments it
is called with (typically a master seed plus a trial-unique stream name fed
to :func:`repro.sim.rng.derive`), and must not read or advance any
process-global RNG.  Under that contract the executor is pure plumbing:
``run_trials(fn, specs, jobs=N)`` returns exactly the same list, element for
element, as ``[fn(**s.kwargs) for s in specs]`` — results are bit-identical
for every ``jobs`` value, which the property tests assert end-to-end.

Results are always returned in submission order (never completion order),
so downstream table assembly and metrics merging are order-stable too.

Pool amortization
-----------------
Worker processes are *expensive to start* (a fresh interpreter plus the
repro import graph per worker) and the experiment harness calls
:func:`run_trials` once per sweep point — dozens of small batches.
Paying the spawn cost inside every call made small parallel sweeps
*slower* than serial (the BENCH_search.json 0.74x regression).  The
executor is therefore process-global and reused across calls: the first
parallel call creates it, later calls with the same-or-smaller worker
count reuse it for free, and a larger request swaps in a bigger pool.
:func:`warm_pool` lets harnesses pre-spawn workers outside their timed
region; :func:`shutdown_pool` (registered via :mod:`atexit`) reclaims
the processes.

The third per-call cost used to be *argument* pickling: sweeps that
share one grid across trials shipped a full pickled grid per trial.
Trial kwargs may now carry late-bound references — any value exposing
``__trial_resolve__()`` (e.g. :class:`repro.fast.snapshot.SnapshotRef`)
crosses the pool as its tiny picklable self and is resolved to the real
object inside the worker, where shared-memory snapshots attach once per
process and are cached.  Resolution also runs on the serial path, so
results stay bit-identical for every ``jobs`` value.

The second per-call cost is submission overhead: one future per trial
means one pickle round-trip and one queue wake-up each, which dominates
when trials are small and plentiful.  :func:`run_trials` therefore packs
trials into contiguous chunks (a few per worker, preserving order) and
submits each chunk as a single task; chunking is pure batching, so
results stay bit-identical to the serial run for every ``jobs`` value.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TrialSpec",
    "merge_registries",
    "parallel_starmap",
    "resolve_jobs",
    "run_trials",
    "shutdown_pool",
    "warm_pool",
]


@dataclass(frozen=True)
class TrialSpec:
    """One trial: keyword arguments for a picklable trial function.

    ``label`` is carried through for reporting; it takes no part in
    execution.
    """

    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def _resolve_value(value: Any) -> Any:
    """Late-bind snapshot-style trial arguments on the worker side.

    Any kwarg exposing ``__trial_resolve__`` is replaced by its resolved
    form right before the trial runs.  This is how grid state crosses
    the pool boundary without being pickled: a
    :class:`repro.fast.snapshot.SnapshotRef` pickles as a tiny handle
    and resolves here to a per-process cached shared-memory attachment.
    The protocol is duck-typed so this module stays dependency-free.
    """
    resolver = getattr(value, "__trial_resolve__", None)
    return value if resolver is None else resolver()


def _invoke(payload: tuple[Callable[..., Any], dict[str, Any]]) -> Any:
    """Module-level trampoline so (fn, kwargs) pairs cross the pickle boundary.

    Applies :func:`_resolve_value` to every kwarg — on the serial path
    too, so a trial function sees identical arguments for every ``jobs``
    value (the determinism contract extends to resolvable specs).
    """
    fn, kwargs = payload
    return fn(**{name: _resolve_value(value) for name, value in kwargs.items()})


#: Target chunks per worker.  >1 keeps the pool load-balanced when trial
#: durations vary; higher values converge on one-submission-per-trial and
#: reintroduce the per-future overhead chunking exists to amortize.
_CHUNKS_PER_WORKER = 4


def _chunk_payloads(
    payloads: Sequence[tuple[Callable[..., Any], dict[str, Any]]],
    workers: int,
) -> list[list[tuple[Callable[..., Any], dict[str, Any]]]]:
    """Split payloads into order-preserving contiguous chunks.

    Sized so each worker sees ~:data:`_CHUNKS_PER_WORKER` submissions;
    concatenating the chunks always reproduces ``payloads`` exactly.
    """
    size = max(1, math.ceil(len(payloads) / (workers * _CHUNKS_PER_WORKER)))
    return [
        list(payloads[low : low + size])
        for low in range(0, len(payloads), size)
    ]


def _invoke_chunk(
    payloads: list[tuple[Callable[..., Any], dict[str, Any]]],
) -> list[Any]:
    """Run one chunk of trials inside a single pool task, in order."""
    return [_invoke(payload) for payload in payloads]


_pool: ProcessPoolExecutor | None = None
_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process-global executor, grown (never shrunk) on demand.

    A request needing more workers than the current pool has replaces
    it; a smaller request reuses the existing pool — its extra workers
    idle at zero cost, while respawning them per call is what caused the
    parallel-slower-than-serial regression.
    """
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
        atexit.unregister(shutdown_pool)
        atexit.register(shutdown_pool)
    return _pool


def warm_pool(jobs: int | None) -> int:
    """Pre-spawn the shared pool's workers; returns the worker count.

    Harnesses call this before their timed region so measured speedups
    reflect steady-state throughput, not interpreter start-up.  The
    round-trip of one tiny task per worker forces every process to
    actually spawn and finish importing.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1:
        return workers
    pool = _shared_pool(workers)
    list(pool.map(_noop, range(workers)))
    return workers


def _noop(_: int) -> None:
    return None


def shutdown_pool() -> None:
    """Dispose of the shared executor (idempotent; re-created on demand)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


def run_trials(
    fn: Callable[..., Any],
    specs: Sequence[TrialSpec],
    *,
    jobs: int | None = 1,
) -> list[Any]:
    """Run ``fn(**spec.kwargs)`` for every spec; results in spec order.

    ``jobs <= 1`` runs serially in-process (no executor, no pickling).
    ``fn`` must be a module-level callable and every ``kwargs`` value must
    be picklable when ``jobs > 1``.  Parallel calls share one
    process-global executor across invocations and batch trials into
    chunked submissions (see module docstring); both are transparent to
    results.
    """
    jobs = resolve_jobs(jobs)
    payloads = [(fn, spec.kwargs) for spec in specs]
    if jobs <= 1 or len(payloads) <= 1:
        return [_invoke(payload) for payload in payloads]
    workers = min(jobs, len(payloads))
    chunks = _chunk_payloads(payloads, workers)
    try:
        results = _shared_pool(workers).map(_invoke_chunk, chunks)
        return [result for chunk in results for result in chunk]
    except BrokenProcessPool:
        # A dead worker poisons the whole executor; drop it so the next
        # call starts from a fresh pool instead of failing forever.
        shutdown_pool()
        raise


def parallel_starmap(
    fn: Callable[..., Any],
    kwargs_list: Iterable[dict[str, Any]],
    *,
    jobs: int | None = 1,
) -> list[Any]:
    """Convenience wrapper: :func:`run_trials` over plain kwargs dicts."""
    return run_trials(
        fn, [TrialSpec(kwargs=kwargs) for kwargs in kwargs_list], jobs=jobs
    )


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold per-trial metric shards into one registry, in trial order.

    Uses :meth:`MetricsRegistry.merge`, so counters and histograms add
    exactly and the merged snapshot of a parallel run equals the serial
    run's merged snapshot.
    """
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
