"""Command-line interface: ``pgrid`` (or ``python -m repro``).

Subcommands
-----------
``build``
    Construct a P-Grid and print the construction report; optionally save a
    JSON snapshot.
``search``
    Load a snapshot and run one search (optionally under churn), via any
    of the three drivers (``--driver engine|node|async``).
``swarm``
    Build a grid, run every peer as an asyncio task and drive a mixed
    query/update workload against it (the 1k-node smoke gate).
``analyze``
    Run the §4 sizing planner for a workload.
``info``
    Print structural statistics of a snapshot grid (depth/replication
    distributions, storage footprints, invariant audit).
``scenario``
    Run a declarative end-to-end scenario (build + seed + mixed workload)
    and print its metrics.
``stats``
    Run a scenario with a :class:`~repro.obs.MetricsProbe` attached and
    print the full metrics registry (optionally exported to JSON/CSV).
``experiment``
    Run one of the paper-reproduction experiments and print its table.
``report``
    Run several experiments and write one combined markdown report.
"""

from __future__ import annotations

import argparse
import inspect
import random
import sys
import time
from typing import Any, Callable, Sequence

from repro.core.analysis import plan_grid
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.experiments import (
    ablations,
    analysis_example,
    convergence,
    fig4_replicas,
    fig5_update_strategies,
    replication,
    resilience,
    scaling_comparison,
    search_reliability,
    table1_construction_scaling,
    table2_maxl,
    table3_recmax,
    table4_refmax,
    table6_tradeoff,
)
from repro.experiments.common import ExperimentResult, run_scenario_trials
from repro.perf.parallel import parallel_starmap
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder, construct_grid
from repro.sim.churn import BernoulliChurn
from repro.sim.persistence import load_grid, save_grid

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_construction_scaling.run,
    "table2": table2_maxl.run,
    "table3": table3_recmax.run,
    "table4": lambda: table4_refmax.run(bounded_fanout=False),
    "table5": lambda: table4_refmax.run(bounded_fanout=True),
    "fig4": fig4_replicas.run,
    "fig5": fig5_update_strategies.run,
    "search_reliability": search_reliability.run,
    "resilience": resilience.run,
    "replication": replication.run,
    "table6": table6_tradeoff.run,
    "discussion_scaling": scaling_comparison.run,
    "construction_scale": scaling_comparison.run_construction_scale,
    "analysis_example": analysis_example.run,
    "ablation_case4_refs": ablations.run_case4_refs,
    "ablation_online_prob": ablations.run_online_prob,
    "ablation_skew": ablations.run_skew,
    "ablation_ref_exchange": ablations.run_ref_exchange,
    "ablation_adaptive_split": ablations.run_adaptive_split,
    "ablation_membership_churn": ablations.run_membership_churn,
    "ablation_construction_churn": ablations.run_construction_under_churn,
    "ablation_shortcut_cache": ablations.run_shortcut_cache,
    "ablation_kary_vs_binary": ablations.run_kary_vs_binary,
    "ablation_proximity": ablations.run_proximity,
    "ablation_meeting_schedulers": ablations.run_meeting_schedulers,
    "convergence": convergence.run,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pgrid",
        description="P-Grid (Aberer 2002) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="construct a P-Grid")
    build.add_argument("--peers", type=int, default=500)
    build.add_argument("--maxl", type=int, default=6)
    build.add_argument("--refmax", type=int, default=2)
    build.add_argument("--recmax", type=int, default=2)
    build.add_argument("--fanout", type=int, default=2,
                       help="case-4 recursion fan-out bound (0 = unbounded)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--threshold", type=float, default=0.99,
                       help="convergence threshold as a fraction of maxl")
    build.add_argument("--max-exchanges", type=int, default=5_000_000)
    build.add_argument("--core", choices=("object", "array", "batch"),
                       default="object",
                       help="construction engine: object (reference), array "
                            "(flat-array kernel, bit-identical) or batch "
                            "(vectorized rounds, needs numpy)")
    build.add_argument("--snapshot", type=str, default=None,
                       help="write the constructed grid to this JSON file")
    build.add_argument("--trace", action="store_true",
                       help="record exchange events (bounded) and print a summary")
    build.add_argument("--trials", type=int, default=1,
                       help="number of independent builds with derived per-trial "
                            "seeds (aggregate statistics are printed)")
    build.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --trials > 1 (0 = one per CPU); "
                            "results are bit-identical to --jobs 1")

    search = sub.add_parser("search", help="search a snapshot grid")
    search.add_argument("snapshot", type=str)
    search.add_argument("key", type=str)
    search.add_argument("--start", type=int, default=0)
    search.add_argument("--high", type=str, default=None,
                        help="upper bound: range query over [KEY, HIGH] "
                             "via the canonical trie cover (equal key "
                             "widths; engine driver, both cores)")
    search.add_argument("--recbreadth", type=int, default=2,
                        help="fan-out per divergence level for --high "
                             "range queries")
    search.add_argument("--p-online", type=float, default=1.0)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--core", choices=("object", "array"),
                        default="object",
                        help="query plane: 'object' walks the reference "
                             "engine, 'array' resolves through the "
                             "vectorized batch plane (numpy; engine "
                             "driver only, no trace/retry/faults)")
    search.add_argument("--driver", choices=("engine", "node", "async"),
                        default="engine",
                        help="execution path: in-process engine, the "
                             "message-driven node over the simulated "
                             "transport, or the asyncio mailbox runtime "
                             "(same protocol machines either way)")
    search.add_argument("--trace", action="store_true",
                        help="dump the hop-level trace of the search "
                             "(engine driver only)")
    faults = search.add_argument_group(
        "fault injection & resilience (see docs/RESILIENCE.md)"
    )
    faults.add_argument("--retry-attempts", type=int, default=1,
                        help="contact attempts per reference (1 = no retry)")
    faults.add_argument("--retry-base-delay", type=float, default=1.0,
                        help="simulated backoff before the 2nd attempt")
    faults.add_argument("--retry-backoff", type=float, default=2.0,
                        help="exponential backoff factor between attempts")
    faults.add_argument("--retry-deadline", type=float, default=None,
                        help="cap on accumulated backoff per search")
    faults.add_argument("--self-repair", action="store_true",
                        help="evict+refill references that keep failing")
    faults.add_argument("--evict-after", type=int, default=3,
                        help="consecutive failures before eviction")
    faults.add_argument("--crash-fraction", type=float, default=0.0,
                        help="crash this fraction of peers before searching")
    faults.add_argument("--stale-fraction", type=float, default=0.0,
                        help="corrupt one routing ref on this fraction of peers")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="seed for fault decisions (default: --seed)")

    swarm = sub.add_parser(
        "swarm",
        help="build a grid and drive a mixed workload on the asyncio runtime",
    )
    swarm.add_argument("--peers", type=int, default=1000)
    swarm.add_argument("--maxl", type=int, default=6)
    swarm.add_argument("--refmax", type=int, default=2)
    swarm.add_argument("--recmax", type=int, default=2)
    swarm.add_argument("--fanout", type=int, default=2,
                       help="case-4 recursion fan-out bound (0 = unbounded)")
    swarm.add_argument("--items-per-peer", type=int, default=1)
    swarm.add_argument("--operations", type=int, default=2000)
    swarm.add_argument("--update-fraction", type=float, default=0.1)
    swarm.add_argument("--concurrency", type=int, default=64,
                       help="operations in flight at once")
    swarm.add_argument("--mailbox-size", type=int, default=64,
                       help="bound of each node's mailbox (backpressure)")
    swarm.add_argument("--seed", type=int, default=0)
    swarm.add_argument("--time-budget", type=float, default=0.0,
                       help="fail (exit 1) if the workload takes longer "
                            "than this many wall seconds (0 = no budget)")
    swarm.add_argument("--min-found-rate", type=float, default=1.0,
                       help="fail (exit 1) if fewer searches find their "
                            "key (fraction, default 1.0)")
    swarm.add_argument("--json", type=str, default=None,
                       help="write the swarm report to this JSON file")

    analyze = sub.add_parser("analyze", help="run the §4 sizing planner")
    analyze.add_argument("--d-global", type=int, default=10**7)
    analyze.add_argument("--reference-bytes", type=int, default=10)
    analyze.add_argument("--storage", type=int, default=10**5)
    analyze.add_argument("--p-online", type=float, default=0.3)
    analyze.add_argument("--refmax", type=int, default=20)

    info = sub.add_parser("info", help="inspect a snapshot grid")
    info.add_argument("snapshot", type=str)

    scenario = sub.add_parser(
        "scenario", help="run a declarative end-to-end scenario"
    )
    scenario.add_argument("--peers", type=int, default=512)
    scenario.add_argument("--maxl", type=int, default=6)
    scenario.add_argument("--refmax", type=int, default=5)
    scenario.add_argument("--items-per-peer", type=int, default=4)
    scenario.add_argument("--key-length", type=int, default=8)
    scenario.add_argument("--zipf", type=float, default=0.0,
                          help="Zipf exponent for keys (0 = uniform)")
    scenario.add_argument("--p-online", type=float, default=1.0)
    scenario.add_argument("--operations", type=int, default=2000)
    scenario.add_argument("--update-fraction", type=float, default=0.1)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--replication",
                          choices=("static", "sqrt", "adaptive"), default=None,
                          help="attach the query-load replica balancer "
                               "(default: off; 'static' attaches it as an "
                               "inert baseline)")
    scenario.add_argument("--replicate-threshold", type=float, default=4.0,
                          help="per-replica EWMA load above which a group "
                               "is considered hot")
    scenario.add_argument("--retract-floor", type=float, default=0.25,
                          help="per-replica EWMA load below which a replica "
                               "may retract and convert")
    scenario.add_argument("--balance-every", type=int, default=50,
                          help="run balancing meetings every N operations")
    scenario.add_argument("--balance-meetings", type=int, default=4,
                          help="exchange meetings per balancing interval")

    stats = sub.add_parser(
        "stats", help="run an instrumented scenario and print the metrics registry"
    )
    stats.add_argument("--peers", type=int, default=512)
    stats.add_argument("--maxl", type=int, default=6)
    stats.add_argument("--refmax", type=int, default=5)
    stats.add_argument("--items-per-peer", type=int, default=4)
    stats.add_argument("--key-length", type=int, default=8)
    stats.add_argument("--zipf", type=float, default=0.0,
                       help="Zipf exponent for keys (0 = uniform)")
    stats.add_argument("--p-online", type=float, default=1.0)
    stats.add_argument("--operations", type=int, default=2000)
    stats.add_argument("--update-fraction", type=float, default=0.1)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--json", type=str, default=None,
                       help="write the metrics snapshot to this JSON file")
    stats.add_argument("--csv", type=str, default=None,
                       help="write the flat metric rows to this CSV file")
    stats.add_argument("--trials", type=int, default=1,
                       help="independent scenario replays with derived per-trial "
                            "seeds; registries are merged via MetricsRegistry.merge")
    stats.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --trials > 1 (0 = one per CPU); "
                            "results are bit-identical to --jobs 1")

    experiment = sub.add_parser(
        "experiment", help="run a paper-reproduction experiment"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--core", choices=("object", "array"), default="object",
        help="query plane for experiments that support it (fig5, table6, "
             "search_reliability): 'array' runs the vectorized batch "
             "engine over gridless state — required for the 100k-peer "
             "REPRO_SCALE=large profile",
    )
    experiment.add_argument(
        "--save", type=str, default=None, help="directory for CSV/JSON output"
    )
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiments that sweep independent trial "
             "points (0 = one per CPU); ignored by single-run experiments",
    )

    report = sub.add_parser(
        "report", help="run several experiments into one markdown report"
    )
    report.add_argument(
        "--experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        default=["analysis_example", "table1", "table3", "table5"],
        help="experiment ids to include (default: the cheap core set)",
    )
    report.add_argument("--out", type=str, default="REPORT.md")
    report.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiments that support parallel trials",
    )
    return parser


def _build_trial(
    *,
    peers: int,
    maxl: int,
    refmax: int,
    recmax: int,
    fanout: int,
    threshold: float,
    max_exchanges: int,
    seed: int,
    core: str = "object",
) -> dict[str, Any]:
    """One full construction (module-level so --jobs can pickle it)."""
    config = PGridConfig(
        maxl=maxl,
        refmax=refmax,
        recmax=recmax,
        recursion_fanout=fanout if fanout > 0 else None,
    )
    grid = PGrid(config, rng=random.Random(seed))
    grid.add_peers(peers)
    report = construct_grid(
        grid, engine=core, threshold_fraction=threshold, max_exchanges=max_exchanges
    )
    return {
        "seed": seed,
        "converged": report.converged,
        "exchanges": report.exchanges,
        "meetings": report.meetings,
        "average_depth": report.average_depth,
        "exchanges_per_peer": report.exchanges_per_peer,
        "routing_violations": len(grid.audit_routing()),
    }


def _cmd_build(args: argparse.Namespace) -> int:
    if args.trials < 1:
        print("--trials must be >= 1", file=sys.stderr)
        return 2
    if args.trials > 1:
        if args.snapshot or args.trace:
            print(
                "--snapshot/--trace need a single build (--trials 1)",
                file=sys.stderr,
            )
            return 2
        trial_kwargs = [
            {
                "peers": args.peers,
                "maxl": args.maxl,
                "refmax": args.refmax,
                "recmax": args.recmax,
                "fanout": args.fanout,
                "threshold": args.threshold,
                "max_exchanges": args.max_exchanges,
                "seed": rngmod.derive_seed(args.seed, f"build-trial-{index}"),
                "core": args.core,
            }
            for index in range(args.trials)
        ]
        reports = parallel_starmap(_build_trial, trial_kwargs, jobs=args.jobs)
        for index, report in enumerate(reports):
            print(
                f"trial {index}: converged={report['converged']} "
                f"exchanges={report['exchanges']} "
                f"avg_depth={report['average_depth']:.3f} "
                f"e/N={report['exchanges_per_peer']:.2f} "
                f"violations={report['routing_violations']}"
            )
        exchange_counts = [report["exchanges"] for report in reports]
        print(
            f"aggregate over {args.trials} trials: "
            f"mean_e={sum(exchange_counts) / len(exchange_counts):.1f} "
            f"min_e={min(exchange_counts)} max_e={max(exchange_counts)} "
            f"converged={sum(r['converged'] for r in reports)}/{args.trials}"
        )
        return 0
    config = PGridConfig(
        maxl=args.maxl,
        refmax=args.refmax,
        recmax=args.recmax,
        recursion_fanout=args.fanout if args.fanout > 0 else None,
    )
    grid = PGrid(config, rng=random.Random(args.seed))
    grid.add_peers(args.peers)
    trace = None
    if args.trace:
        if args.core != "object":
            print("--trace needs the object core (per-exchange probes)",
                  file=sys.stderr)
            return 2
        from repro.core.exchange import ExchangeEngine
        from repro.obs import TraceRecorder

        trace = TraceRecorder(limit=100_000)
        engine = ExchangeEngine(grid, probe=trace)
        report = GridBuilder(grid, engine=engine).build(
            threshold_fraction=args.threshold, max_exchanges=args.max_exchanges
        )
    else:
        report = construct_grid(
            grid,
            engine=args.core,
            threshold_fraction=args.threshold,
            max_exchanges=args.max_exchanges,
        )
    print(
        f"converged={report.converged} exchanges={report.exchanges} "
        f"meetings={report.meetings} avg_depth={report.average_depth:.3f} "
        f"e/N={report.exchanges_per_peer:.2f}"
    )
    violations = grid.audit_routing()
    print(f"routing invariant violations: {len(violations)}")
    if trace is not None:
        _print_trace_summary(trace)
    if args.snapshot:
        path = save_grid(grid, args.snapshot)
        print(f"snapshot written to {path}")
    return 0


def _run_range_search(args: argparse.Namespace, grid: PGrid) -> int:
    """``pgrid search KEY --high HIGH``: one range query, either core."""
    unsupported = (
        args.driver != "engine"
        or args.trace
        or args.retry_attempts > 1
        or args.self_repair
        or args.crash_fraction > 0.0
        or args.stale_fraction > 0.0
    )
    if unsupported:
        print(
            "--high range queries support only the plain engine driver "
            "(no --trace, retries, self-repair or fault injection)",
            file=sys.stderr,
        )
        return 2
    if args.core == "array":
        from repro.fast import ArrayGrid, BatchQueryEngine

        engine = BatchQueryEngine.from_arraygrid(ArrayGrid.from_pgrid(grid))
        dense = {address: i for i, address in enumerate(engine.addresses)}
        batch = engine.search_range_many(
            [args.key], [args.high], [dense[args.start]],
            recbreadth=args.recbreadth,
        )
        cover = list(batch.covers[0])
        responders = [engine.addresses[int(i)] for i in batch.responders(0)]
        refs = list(batch.data_refs[0])
        messages = int(batch.messages[0])
        failed = int(batch.failed_attempts[0])
    else:
        result = SearchEngine(grid).query_range(
            args.start, args.key, args.high, recbreadth=args.recbreadth
        )
        cover = list(result.cover)
        responders = list(result.responders)
        refs = list(result.data_refs)
        messages = result.messages
        failed = result.failed_attempts
    cover_text = ",".join(prefix or "''" for prefix in cover)
    print(
        f"range=[{args.key}, {args.high}] cover={cover_text} "
        f"responders={len(responders)} messages={messages} "
        f"failed_attempts={failed}"
    )
    for ref in refs:
        print(f"  data: key={ref.key} holder={ref.holder} version={ref.version}")
    return 0 if responders else 1


def _cmd_search(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    grid = load_grid(args.snapshot, rng=rng)
    if args.p_online < 1.0:
        grid.online_oracle = BernoulliChurn(args.p_online, random.Random(args.seed + 1))
    if args.high is not None:
        return _run_range_search(args, grid)
    if args.core == "array":
        unsupported = (
            args.driver != "engine"
            or args.trace
            or args.retry_attempts > 1
            or args.self_repair
            or args.crash_fraction > 0.0
            or args.stale_fraction > 0.0
        )
        if unsupported:
            print(
                "--core array supports only the plain engine driver "
                "(no --trace, retries, self-repair or fault injection); "
                "use --core object for those",
                file=sys.stderr,
            )
            return 2
        from repro.fast import ArrayGrid, BatchQueryEngine

        engine = BatchQueryEngine.from_arraygrid(ArrayGrid.from_pgrid(grid))
        dense = {address: i for i, address in enumerate(engine.addresses)}
        batch = engine.search_many([args.key], [dense[args.start]])
        found = bool(batch.found[0])
        responder = engine.addresses[int(batch.responder[0])] if found else None
        print(
            f"found={found} responder={responder} "
            f"messages={int(batch.messages[0])} "
            f"failed_attempts={int(batch.failed_attempts[0])}"
        )
        return 0 if found else 1
    injector = None
    if args.crash_fraction > 0.0 or args.stale_fraction > 0.0:
        from repro.faults import FaultInjector, FaultPlan
        from repro.net.transport import LocalTransport

        fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
        injector = FaultInjector(LocalTransport(grid), FaultPlan(seed=fault_seed))
        if args.crash_fraction > 0.0:
            victims = injector.crash_random(args.crash_fraction)
            print(f"crashed {len(victims)} peers: {victims[:10]}"
                  f"{' ...' if len(victims) > 10 else ''}")
        if args.stale_fraction > 0.0:
            corrupted = injector.inject_stale_refs(args.stale_fraction)
            print(f"corrupted {corrupted} routing references")
        injector.install_oracle()
    retry = None
    if args.retry_attempts > 1:
        from repro.faults import RetryPolicy

        retry = RetryPolicy(
            attempts=args.retry_attempts,
            base_delay=args.retry_base_delay,
            backoff_factor=args.retry_backoff,
            max_delay=max(args.retry_base_delay, 60.0),
            deadline=args.retry_deadline,
        )
    healer = None
    if args.self_repair:
        from repro.faults import RefHealer

        healer = RefHealer(grid, evict_after=args.evict_after)
    if args.driver in ("node", "async"):
        if args.driver == "async":
            import asyncio

            from repro.aio import AsyncTransport, attach_async_nodes

            transport = AsyncTransport(grid)
            nodes = attach_async_nodes(grid, transport, retry=retry, healer=healer)

            async def _run_search():
                await transport.start()
                try:
                    return await nodes[args.start].search(args.key)
                finally:
                    await transport.stop()

            outcome = asyncio.run(_run_search())
        else:
            from repro.net.node import attach_nodes
            from repro.net.transport import LocalTransport

            transport = LocalTransport(grid)
            nodes = attach_nodes(grid, transport, retry=retry, healer=healer)
            outcome = nodes[args.start].search(args.key)
        print(
            f"found={outcome.found} responder={outcome.responder} "
            f"messages={outcome.messages_sent} "
            f"failed_attempts={outcome.failed_attempts}"
        )
        if retry is not None:
            print(f"retry backoff accrued: {outcome.retry_delay:.2f} time units")
        for ref in outcome.data_refs:
            print(f"  data: key={ref.key} holder={ref.holder} version={ref.version}")
        stats = transport.stats
        print(
            f"transport: delivered={stats.total_delivered()} "
            f"offline_failures={stats.offline_failures} "
            f"simulated_time={stats.simulated_time:.2f}"
        )
        return 0 if outcome.found else 1
    trace = None
    if args.trace:
        from repro.obs import TraceRecorder

        trace = TraceRecorder()
    engine = SearchEngine(grid, probe=trace, retry=retry, healer=healer)
    result = engine.query_from(args.start, args.key)
    print(
        f"found={result.found} responder={result.responder} "
        f"messages={result.messages} failed_attempts={result.failed_attempts}"
    )
    if retry is not None:
        print(f"retry backoff accrued: {result.retry_delay:.2f} time units")
    if healer is not None:
        stats = healer.stats
        print(
            f"repair: evictions={stats.evictions} refills={stats.refills} "
            f"probes={stats.probes_sent}"
        )
    for ref in result.data_refs:
        print(f"  data: key={ref.key} holder={ref.holder} version={ref.version}")
    if trace is not None:
        print("trace:")
        for line in trace.replay():
            print(f"  {line}")
    return 0 if result.found else 1


def _print_trace_summary(trace) -> int:
    """Per-kind event counts for a (possibly bounded) trace."""
    from collections import Counter as _Counter

    by_kind = _Counter(event.kind for event in trace.events)
    print(f"trace: {len(trace)} events recorded, {trace.dropped} dropped")
    for kind, count in sorted(by_kind.items()):
        print(f"  {kind:<14} {count}")
    return 0


def _print_memory_footprint(config: PGridConfig, n_peers: int, seed: int) -> None:
    """Print peak RSS, per-peer bytes and query throughput per core.

    Resident memory, not CPU, is what bounds large-population simulation
    (ROADMAP item 2), so ``pgrid stats`` measures a representative
    converged grid at the scenario's population in both representations:
    the object core (peers, routing lists, path strings) and the flat
    array core the same state bridges into.  The same grid then answers a
    fixed query batch through both query planes so the memory trade-off
    can be read next to the throughput it buys.
    """
    from repro.fast import HAVE_NUMPY, ArrayGrid
    from repro.fast.mem import grid_memory_report

    grid = PGrid(config, rng=rngmod.derive(seed, "stats-memory"))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(max_exchanges=500 * n_peers, raise_on_budget=False)
    agrid = ArrayGrid.from_pgrid(grid)
    snapshot = None
    if HAVE_NUMPY:
        from repro.fast import GridSnapshot

        snapshot = GridSnapshot.from_arraygrid(agrid)
    try:
        report = grid_memory_report(pgrid=grid, agrid=agrid, snapshot=snapshot)
        print()
        peak = report.get("peak_rss_bytes")
        peak_text = f"{peak / 1e6:,.0f} MB" if peak is not None else "unknown"
        print(f"memory: peak RSS {peak_text} (process, high-water mark)")
        for label, key in (
            ("object core", "object_core"),
            ("array core", "array_core"),
        ):
            core = report.get(key)
            if core:
                print(
                    f"  {label}: {core['bytes_per_peer']:,.0f} B/peer "
                    f"({core['bytes_total'] / 1e6:.1f} MB for "
                    f"{core['peers']:,} peers, heap)"
                )
        shared = report.get("shared_memory")
        if shared:
            print(
                f"  shared memory: {shared['bytes_total'] / 1e6:.1f} MB in "
                f"{shared['segments']} segment(s) — off-heap pages, mapped "
                f"once per attached process (GridSnapshot)"
            )
    finally:
        if snapshot is not None:
            snapshot.close()
            snapshot.unlink()
    _print_query_throughput(grid, agrid, seed)


def _print_query_throughput(grid: PGrid, agrid, seed: int) -> None:
    """Time one query batch through both planes on the same grid state."""
    from repro.sim.workload import UniformKeyWorkload

    n_queries = min(500, 5 * len(grid))
    workload = UniformKeyWorkload(
        grid.config.maxl - 1, rngmod.derive(seed, "stats-query-keys")
    )
    keys = [workload.next_key() for _ in range(n_queries)]
    addresses = grid.addresses()
    start_rng = rngmod.derive(seed, "stats-query-starts")
    starts = [start_rng.choice(addresses) for _ in range(n_queries)]
    print(
        f"query plane: {n_queries} searches, "
        f"key length {grid.config.maxl - 1}"
    )

    engine = SearchEngine(grid)
    began = time.perf_counter()
    object_messages = sum(
        engine.query_from(start, key).messages
        for start, key in zip(starts, keys)
    )
    object_seconds = max(time.perf_counter() - began, 1e-9)
    print(
        f"  object core: {n_queries / object_seconds:,.0f} searches/s, "
        f"{object_messages / n_queries:.2f} messages/search"
    )

    try:
        from repro.fast.query import BatchQueryEngine

        batch = BatchQueryEngine.from_arraygrid(
            agrid, seed=rngmod.derive_seed(seed, "stats-query-batch")
        )
    except RuntimeError as exc:  # numpy missing
        print(f"  array core: unavailable ({exc})")
        return
    index = {address: i for i, address in enumerate(batch.addresses)}
    began = time.perf_counter()
    result = batch.search_many(keys, [index[start] for start in starts])
    batch_seconds = max(time.perf_counter() - began, 1e-9)
    print(
        f"  array core: {n_queries / batch_seconds:,.0f} searches/s, "
        f"{result.mean_messages:.2f} messages/search"
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import MetricsProbe
    from repro.report.tables import render_table
    from repro.sim.scenario import KeyDistribution, ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        n_peers=args.peers,
        config=PGridConfig(
            maxl=args.maxl, refmax=args.refmax, recmax=2, recursion_fanout=2
        ),
        items_per_peer=args.items_per_peer,
        key_length=args.key_length,
        key_distribution=(
            KeyDistribution.ZIPF if args.zipf > 0 else KeyDistribution.UNIFORM
        ),
        zipf_exponent=args.zipf if args.zipf > 0 else 1.0,
        p_online=args.p_online,
        operations=args.operations,
        update_fraction=args.update_fraction,
        seed=args.seed,
    )
    if args.trials < 1:
        print("--trials must be >= 1", file=sys.stderr)
        return 2
    if args.trials > 1:
        all_metrics, registry = run_scenario_trials(
            spec, args.trials, jobs=args.jobs
        )
        title = (
            f"merged metrics for {args.trials} trials x {args.operations} "
            f"operations over {args.peers} peers (p_online={args.p_online})"
        )
    else:
        probe = MetricsProbe()
        all_metrics = [run_scenario(spec, probe=probe)]
        registry = probe.registry
        title = (
            f"metrics for {args.operations} operations over "
            f"{args.peers} peers (p_online={args.p_online})"
        )
    print(
        render_table(
            ["metric", "type", "field", "value"],
            list(registry.to_rows()),
            title=title,
            float_digits=3,
        )
    )
    print()
    for index, metrics in enumerate(all_metrics):
        prefix = f"trial {index}: " if args.trials > 1 else "scenario: "
        print(
            f"{prefix}search_success={metrics.search_success_rate:.4f} "
            f"read_success={metrics.read_success_rate:.4f} "
            f"update_coverage={metrics.update_coverage_mean:.4f}"
        )
    _print_memory_footprint(spec.config, args.peers, args.seed)
    if args.json:
        path = registry.write_json(args.json)
        print(f"metrics snapshot written to {path}")
    if args.csv:
        path = registry.write_csv(args.csv)
        print(f"metric rows written to {path}")
    return 0


def _cmd_swarm(args: argparse.Namespace) -> int:
    import asyncio
    import json as jsonmod

    from repro.aio import AsyncSwarm, seed_items
    from repro.api import Grid

    grid = Grid.build(
        args.peers,
        maxl=args.maxl,
        refmax=args.refmax,
        recmax=args.recmax,
        fanout=args.fanout if args.fanout > 0 else None,
        seed=args.seed,
    )
    report = grid.report
    print(
        f"grid: {args.peers} peers, converged={report.converged} "
        f"avg_depth={report.average_depth:.3f} exchanges={report.exchanges}"
    )
    keys = seed_items(grid.pgrid, items_per_peer=args.items_per_peer, seed=args.seed)
    print(f"seeded {len(keys)} distinct keys")

    async def _run():
        async with AsyncSwarm(grid.pgrid, mailbox_size=args.mailbox_size) as swarm:
            return await swarm.run_workload(
                operations=args.operations,
                keys=keys,
                update_fraction=args.update_fraction,
                concurrency=args.concurrency,
                seed=args.seed,
            )

    swarm_report = asyncio.run(_run())
    snapshot = swarm_report.snapshot()
    print(
        f"workload: {swarm_report.operations} ops "
        f"({swarm_report.searches} searches / {swarm_report.updates} updates) "
        f"in {swarm_report.wall_seconds:.2f}s "
        f"({swarm_report.ops_per_second:.0f} ops/s)"
    )
    print(
        f"results: found_rate={swarm_report.found_rate:.4f} "
        f"update_failures={swarm_report.update_failures} "
        f"messages={swarm_report.messages_delivered} "
        f"offline_failures={swarm_report.offline_failures}"
    )
    print(
        f"mailboxes: max_depth={swarm_report.max_mailbox_depth} "
        f"mean_wait={swarm_report.mean_queue_wait * 1000:.2f}ms "
        f"max_wait={swarm_report.max_queue_wait * 1000:.2f}ms"
    )
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(
            jsonmod.dumps(snapshot, indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.json}")
    failed = False
    for error in swarm_report.errors[:5]:
        print(f"operation error: {error}", file=sys.stderr)
        failed = True
    if swarm_report.found_rate < args.min_found_rate:
        print(
            f"FAIL: found_rate {swarm_report.found_rate:.4f} < "
            f"required {args.min_found_rate:.4f}",
            file=sys.stderr,
        )
        failed = True
    if args.time_budget > 0 and swarm_report.wall_seconds > args.time_budget:
        print(
            f"FAIL: workload took {swarm_report.wall_seconds:.2f}s > "
            f"budget {args.time_budget:.2f}s",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    plan = plan_grid(
        args.d_global,
        reference_bytes=args.reference_bytes,
        storage_bytes_per_peer=args.storage,
        p_online=args.p_online,
        refmax=args.refmax,
    )
    print(f"key length k        : {plan.key_length}")
    print(f"i_leaf              : {plan.i_leaf}")
    print(f"refmax              : {plan.refmax}")
    print(f"min peers (eq. 2)   : {plan.min_peers}")
    print(f"success prob (eq. 3): {plan.success_probability:.6f}")
    print(f"storage used        : {plan.storage_used} / {plan.storage_bytes_per_peer} bytes")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.report.hist import render_histogram

    grid = load_grid(args.snapshot)
    print(f"peers               : {len(grid)}")
    print(f"config              : {grid.config}")
    print(f"average path length : {grid.average_path_length():.3f}")
    print(f"average replication : {grid.average_replication():.2f}")
    print(f"distinct paths      : {len(grid.replica_groups())}")
    print(f"total routing refs  : {grid.total_routing_refs()}")
    print(f"max index footprint : {grid.max_index_footprint()}")
    violations = grid.audit_routing()
    print(f"invariant violations: {len(violations)}")
    for violation in violations[:10]:
        print(f"  {violation}")
    print()
    print(
        render_histogram(
            sorted(grid.path_length_histogram().items()),
            title="peers per path length",
            value_label="depth",
            count_label="peers",
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.sim.scenario import KeyDistribution, ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        n_peers=args.peers,
        config=PGridConfig(
            maxl=args.maxl, refmax=args.refmax, recmax=2, recursion_fanout=2
        ),
        items_per_peer=args.items_per_peer,
        key_length=args.key_length,
        key_distribution=(
            KeyDistribution.ZIPF if args.zipf > 0 else KeyDistribution.UNIFORM
        ),
        zipf_exponent=args.zipf if args.zipf > 0 else 1.0,
        p_online=args.p_online,
        operations=args.operations,
        update_fraction=args.update_fraction,
        seed=args.seed,
        replication=args.replication,
        replicate_threshold=args.replicate_threshold,
        retract_floor=args.retract_floor,
        balance_every=args.balance_every,
        balance_meetings=args.balance_meetings,
    )
    metrics = run_scenario(spec)
    for key, value in metrics.as_dict().items():
        if isinstance(value, float):
            print(f"{key:<26}: {value:.4f}")
        else:
            print(f"{key:<26}: {value}")
    return 0


def _run_experiment(
    name: str, *, jobs: int = 1, core: str = "object"
) -> ExperimentResult:
    """Invoke a registered experiment, passing ``jobs``/``core`` where
    supported."""
    runner = EXPERIMENTS[name]
    parameters = inspect.signature(runner).parameters
    kwargs: dict[str, Any] = {}
    if jobs != 1 and "jobs" in parameters:
        kwargs["jobs"] = jobs
    if core != "object":
        if "core" not in parameters:
            raise SystemExit(
                f"experiment {name!r} does not support --core {core}; "
                f"the array query plane backs fig5, table6 and "
                f"search_reliability"
            )
        kwargs["core"] = core
    return runner(**kwargs)


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = _run_experiment(
        args.name, jobs=args.jobs, core=getattr(args, "core", "object")
    )
    print(result.to_text(float_digits=3))
    if args.save:
        result.save(args.save)
        print(f"\nresults written under {args.save}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    sections = ["# P-Grid reproduction report", ""]
    for name in args.experiments:
        print(f"running {name} ...")
        result = _run_experiment(name, jobs=args.jobs)
        sections.append(f"## {name}")
        sections.append("")
        sections.append("```")
        sections.append(result.to_text(float_digits=3))
        sections.append("```")
        sections.append("")
    target = Path(args.out)
    target.write_text("\n".join(sections), encoding="utf-8")
    print(f"report written to {target}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "search": _cmd_search,
        "swarm": _cmd_swarm,
        "analyze": _cmd_analyze,
        "info": _cmd_info,
        "scenario": _cmd_scenario,
        "stats": _cmd_stats,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
