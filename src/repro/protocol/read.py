"""Sans-I/O read strategies over possibly partially-updated replicas (§5.2).

The paper's repeated-query insight: instead of paying for near-complete
update coverage, update a modest fraction of replicas and repeat queries
until a fresh one answers (or take a majority vote).  These functions
implement the three read disciplines over two injected callables —
``query()`` (one Fig. 2 search, returning anything with ``found`` /
``responder`` / ``messages`` / ``failed_attempts``) and
``is_fresh(responder)`` (whether that replica already holds the target
version) — so the in-process :class:`repro.core.updates.ReadEngine` and
any networked caller share one decision procedure.

Each returns ``(success, messages, failed, repetitions)``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.protocol.effects import Address

__all__ = ["read_single", "read_repeated", "read_majority"]


def _fresh_hit(result: Any, is_fresh: Callable[[Address], bool]) -> bool:
    return (
        result.found
        and result.responder is not None
        and is_fresh(result.responder)
    )


def read_single(
    query: Callable[[], Any], is_fresh: Callable[[Address], bool]
) -> tuple[bool, int, int, int]:
    """Non-repetitive search: one query; success iff the replica that
    answers already holds the target version (table 6, lower half)."""
    result = query()
    return (
        _fresh_hit(result, is_fresh),
        result.messages,
        result.failed_attempts,
        1,
    )


def read_repeated(
    query: Callable[[], Any],
    is_fresh: Callable[[Address], bool],
    *,
    max_repetitions: int = 200,
) -> tuple[bool, int, int, int]:
    """Repetitive search (table 6, upper half): re-query until a fresh
    replica answers, accumulating message cost.

    The paper repeats until success; the loop is bounded defensively and
    reports failure if the bound is hit (which the experiments never do
    once at least one replica was updated).
    """
    if max_repetitions < 1:
        raise ValueError(
            f"max_repetitions must be >= 1, got {max_repetitions}"
        )
    messages = 0
    failed = 0
    for attempt in range(1, max_repetitions + 1):
        result = query()
        messages += result.messages
        failed += result.failed_attempts
        if _fresh_hit(result, is_fresh):
            return True, messages, failed, attempt
    return False, messages, failed, max_repetitions


def read_majority(
    query: Callable[[], Any],
    is_fresh: Callable[[Address], bool],
    *,
    votes: int = 3,
) -> tuple[bool, int, int, int]:
    """Majority read (§5.2 discussion): query *votes* times and succeed
    if strictly more than half of the answering replicas are fresh."""
    if votes < 1 or votes % 2 == 0:
        raise ValueError(f"votes must be odd and >= 1, got {votes}")
    messages = 0
    failed = 0
    fresh = 0
    answered = 0
    for _ in range(votes):
        result = query()
        messages += result.messages
        failed += result.failed_attempts
        if result.found and result.responder is not None:
            answered += 1
            if is_fresh(result.responder):
                fresh += 1
    success = answered > 0 and fresh * 2 > answered
    return success, messages, failed, votes
