"""The driver contract: how an I/O layer executes a protocol machine.

A *driver* runs one sans-I/O machine — a generator yielding
:mod:`repro.protocol.effects` — to completion, answering every effect
from its substrate and sending the outcome back in.  Three drivers ship
with this repository, all running the very same machines:

* the **direct driver** (:mod:`repro.protocol.direct`): answers effects
  synchronously from an in-process :class:`repro.core.grid.PGrid`;
* the **message driver** (:class:`repro.net.node.PGridNode`): maps
  effects onto :mod:`repro.net.message` kinds over a synchronous
  transport;
* the **async driver** (:class:`repro.aio.node.AsyncPGridNode`):
  executes each effect as an *awaitable* — one
  :meth:`repro.aio.transport.AsyncTransport.request` per
  :class:`~repro.protocol.effects.Contact`, retry backoff awaited on
  the event-loop clock.

The contract is identical in all three: ``execute(effect)`` must return
(or resolve to) exactly the value the machine expects for that effect
kind — a :class:`~repro.protocol.effects.ContactStatus` for ``Contact``,
the remote step's outcome for ``Resolve``, the sorted buddy list for
``FetchBuddies``, ``None`` for ``Record`` / ``Deliver``.  Machines never
observe *how* an effect was executed, which is what makes the
engine ≡ node ≡ async equivalence suite possible: on twin grids the
three drivers consume the grid RNG bit-identically.
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Generator

__all__ = ["drive", "drive_async"]

#: A protocol machine: yields effects, receives their outcomes, returns
#: the operation result via ``StopIteration.value``.
Machine = Generator[Any, Any, Any]


def drive(gen: Machine, execute: Callable[[Any], Any]) -> Any:
    """Run *gen* to completion, answering effects via *execute*."""
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value
        response = execute(effect)


async def drive_async(
    gen: Machine, execute: Callable[[Any], Awaitable[Any]]
) -> Any:
    """Awaitable twin of :func:`drive`: each effect's execution is awaited.

    The machine itself stays a synchronous generator (all protocol
    randomness happens inside it, in deterministic order); only the
    *execution* of its effects suspends.  While one machine awaits a
    contact, the event loop is free to run other machines — concurrency
    lives entirely in the driver, never in the protocol.
    """
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value
        response = await execute(effect)
