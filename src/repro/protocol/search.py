"""Sans-I/O state machines for the Fig. 2 search family.

One implementation of the paper's routing decisions, executed by two
drivers: :mod:`repro.protocol.direct` (in-process, powering
:class:`repro.core.search.SearchEngine`) and the message driver
(:class:`repro.net.node.PGridNode`, which maps the same effects onto
``QUERY``/``BREADTH_QUERY`` messages).

The machines cover:

* :func:`dfs_step` — the depth-first ``query(a, p, l)`` recursion with
  backtracking (Fig. 2, including the level off-by-typo fix documented
  in DESIGN.md §4);
* :func:`breadth_step` / :func:`fanout_step` — the §3 breadth-first
  variant (``recbreadth``-wide fan-out with a shared visited set, plus
  the subtree enumeration mode range queries need);
* :func:`run_range` / :func:`key_in_range` — the order-preserving range
  scan over the canonical cover prefixes (pure orchestration: the
  per-prefix breadth searches and the responder store lookups are
  injected by the driver);
* :func:`repeated_queries` — §5.2 update strategy 1's repetition loop.

Every RNG draw happens inside the machines, in exactly the order the
in-process engines historically made them — the probe-transparency and
protocol-equivalence test suites pin this bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable

from repro.core import keys as keyspace
from repro.protocol.contact import Budget, Context, StepStats, contact_step
from repro.protocol.effects import (
    Address,
    BreadthStep,
    Deliver,
    QueryStep,
    Record,
    Resolve,
)

__all__ = [
    "dfs_step",
    "search_machine",
    "Traversal",
    "breadth_step",
    "breadth_machine",
    "fanout_step",
    "key_in_range",
    "run_range",
    "repeated_queries",
]


def _uniform_order(rng: random.Random, refs: list[Address]):
    """The paper's attempt order: uniform draws without replacement.

    Lazy — the RNG is consulted only for attempts actually made, which
    keeps the stream identical whether or not later candidates are
    needed.
    """
    while refs:
        yield refs.pop(rng.randrange(len(refs)))


def dfs_step(
    view: Any,
    p: str,
    level: int,
    ctx: Context,
    budget: Budget,
    stats: StepStats,
):
    """Fig. 2 body at one peer; *level* = bits of ``path(view)`` consumed.

    Returns ``(found, responder)``.  Forwards are two effects: a
    :class:`Contact` (liveness + delivery attempt, budget is consumed on
    success) followed by a :class:`Resolve` whose answer is the remote
    step's ``(found, responder)``.
    """
    rempath = view.path[level:]
    compath = keyspace.common_prefix(p, rempath)
    lc = len(compath)
    if lc == len(p) or lc == len(rempath):
        if ctx.observed:
            yield Record("responsible", (view.address, level + lc))
        return True, view.address
    # Divergence: forward the unmatched suffix sideways.
    ref_level = level + lc + 1
    refs = list(view.routing.refs(ref_level))
    payload = QueryStep(p[lc:], level + lc)
    if ctx.order is not None:
        candidates = ctx.order(view, refs)
    else:
        candidates = _uniform_order(ctx.rng, refs)
    for address in candidates:
        ok = yield from contact_step(
            ctx, stats, view.address, address, ref_level, payload
        )
        if not ok:
            continue
        if not budget.consume():
            return False, None
        stats.messages += 1
        if ctx.observed:
            yield Record("forward", (view.address, address, ref_level))
        if ctx.topology is not None:
            stats.latency += ctx.topology.latency(view.address, address)
        found, responder = yield Resolve(address, payload)
        if found:
            return True, responder
        if ctx.observed:
            yield Record("backtrack", (view.address, ref_level))
    return False, None


def search_machine(
    view: Any,
    query: str,
    ctx: Context,
    budget: Budget,
    stats: StepStats,
):
    """Top-level depth-first search: one :func:`dfs_step` at the start
    peer (contacted locally — no message, no online check), terminated by
    a :class:`Deliver` carrying ``(found, responder)``."""
    found, responder = yield from dfs_step(view, query, 0, ctx, budget, stats)
    yield Deliver((found, responder))
    return found, responder


# -- breadth-first search (§3 update strategy 3 / range enumeration) -----------


class Traversal:
    """Mutable state one breadth-first walk shares across its recursion.

    The direct driver shares one instance across every visited peer; the
    message driver serializes ``seen``/``responders`` into each
    ``BREADTH_QUERY`` payload and merges the reply back, which is
    equivalent because delivery is synchronous.
    """

    __slots__ = (
        "budget",
        "stats",
        "recbreadth",
        "enumerate_subtree",
        "responders",
        "seen",
    )

    def __init__(
        self,
        budget: Budget,
        stats: StepStats,
        recbreadth: int,
        *,
        enumerate_subtree: bool = False,
        responders: list[Address] | None = None,
        seen: set[Address] | None = None,
    ) -> None:
        self.budget = budget
        self.stats = stats
        self.recbreadth = recbreadth
        self.enumerate_subtree = enumerate_subtree
        self.responders = responders if responders is not None else []
        self.seen = seen if seen is not None else set()


def breadth_step(view: Any, p: str, level: int, ctx: Context, trav: Traversal):
    """One breadth-first visit: collect if responsible, else fan out."""
    if view.address in trav.seen:
        return
    trav.seen.add(view.address)
    rempath = view.path[level:]
    compath = keyspace.common_prefix(p, rempath)
    lc = len(compath)
    if lc == len(p) or lc == len(rempath):
        trav.responders.append(view.address)
        if ctx.observed:
            yield Record("responsible", (view.address, level + lc))
        if trav.enumerate_subtree and lc == len(p):
            # The peer's path extends past the query: its references at
            # every level below the match point into the *other* halves
            # of the query's subtree.  Forwarding the empty remaining
            # query there enumerates all leaf regions of the interval.
            for sublevel in range(level + lc + 1, view.depth + 1):
                yield from fanout_step(view, "", sublevel, sublevel, ctx, trav)
        return
    yield from fanout_step(view, p[lc:], level + lc, level + lc + 1, ctx, trav)


def fanout_step(
    view: Any,
    querypath: str,
    next_level: int,
    ref_level: int,
    ctx: Context,
    trav: Traversal,
):
    """Forward to up to ``recbreadth`` online references at *ref_level*.

    Offline contacts are skipped and replaced by further candidates
    (the depth-first search retries the same way, one at a time), after
    any configured retry attempts.
    """
    refs = list(view.routing.refs(ref_level))
    ctx.rng.shuffle(refs)
    payload = BreadthStep(
        querypath, next_level, trav.recbreadth, trav.enumerate_subtree
    )
    forwarded = 0
    for address in refs:
        if forwarded >= trav.recbreadth:
            break
        if address in trav.seen:
            continue
        ok = yield from contact_step(
            ctx, trav.stats, view.address, address, ref_level, payload
        )
        if not ok:
            continue
        if not trav.budget.consume():
            return
        trav.stats.messages += 1
        if ctx.observed:
            yield Record("forward", (view.address, address, ref_level))
        forwarded += 1
        yield Resolve(address, payload)


def breadth_machine(view: Any, query: str, ctx: Context, trav: Traversal):
    """Top-level breadth-first search, terminated by a :class:`Deliver`
    carrying the responder list."""
    yield from breadth_step(view, query, 0, ctx, trav)
    yield Deliver(trav.responders)
    return trav.responders


# -- range queries over the order-preserving key space -------------------------


def key_in_range(key: str, low: str, high: str) -> bool:
    """Whether *key*'s interval intersects the ``[low, high]`` range.

    Entries may be indexed under keys longer or shorter than the range
    bounds; compare by padding to the bound length (a shorter key covers
    the whole subtree, so it matches if any leaf under it does).
    """
    width = len(low)
    if len(key) >= width:
        truncated = key[:width]
        return low <= truncated <= high
    first = key + "0" * (width - len(key))
    last = key + "1" * (width - len(key))
    return not (last < low or first > high)


def run_range(
    low: str,
    high: str,
    *,
    cover: list[str],
    search: Callable[[str], Any],
    fetch: Callable[[Address, str], Iterable[Any]],
) -> tuple[list[Address], list[Any], int, int, float]:
    """Range-scan orchestration shared by both drivers.

    *search* runs one subtree-enumerating breadth search for a cover
    prefix (returning anything with ``responders`` / ``messages`` /
    ``failed_attempts`` / ``retry_delay``); *fetch* returns a responder's
    index entries for a prefix.  Responders are deduplicated across
    cover prefixes in first-seen order; entries are deduplicated by
    ``(key, holder)`` keeping the highest version, filtered to the range
    and returned sorted.

    Returns ``(responders, data_refs, messages, failed, retry_delay)``.
    """
    responders: list[Address] = []
    seen_responders: set[Address] = set()
    refs: dict[tuple[str, Address], Any] = {}
    messages = 0
    failed = 0
    retry_delay = 0.0
    for prefix in cover:
        result = search(prefix)
        messages += result.messages
        failed += result.failed_attempts
        retry_delay += result.retry_delay
        for responder in result.responders:
            if responder not in seen_responders:
                seen_responders.add(responder)
                responders.append(responder)
            for ref in fetch(responder, prefix):
                if key_in_range(ref.key, low, high):
                    key = (ref.key, ref.holder)
                    existing = refs.get(key)
                    if existing is None or ref.version > existing.version:
                        refs[key] = ref
    data_refs = sorted(refs.values(), key=lambda r: (r.key, r.holder))
    return responders, data_refs, messages, failed, retry_delay


# -- repeated depth-first search (§5.2 update strategy 1) ----------------------


def repeated_queries(
    run_one: Callable[[], Any], times: int
) -> tuple[set[Address], int, int]:
    """Run *times* independent searches; return (responders, messages,
    failed attempts).

    Random reference choice makes repetitions land on different replicas,
    which is what update strategy (1) of §3 exploits.  *run_one* returns
    anything with ``found`` / ``responder`` / ``messages`` /
    ``failed_attempts`` (a core or networked search outcome).
    """
    if times < 1:
        raise ValueError(f"times must be >= 1, got {times}")
    responders: set[Address] = set()
    messages = 0
    failed = 0
    for _ in range(times):
        result = run_one()
        messages += result.messages
        failed += result.failed_attempts
        if result.found and result.responder is not None:
            responders.add(result.responder)
    return responders, messages, failed
