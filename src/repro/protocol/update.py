"""Sans-I/O update propagation strategies (paper §3 / §5.2).

:func:`discover_replicas` is the strategy dispatch the paper's Fig. 5
compares — repeated depth-first search, depth-first + buddy forwarding,
breadth-first fan-out — expressed over injected search primitives so the
in-process :class:`repro.core.updates.UpdateEngine` and the networked
node share one decision procedure.

:func:`buddy_forward_step` is strategy 2's second hop as an effect
machine: every reached replica forwards the update to its buddy list,
re-contacting offline buddies up to the retry policy's attempt count.
Fidelity note: this hop deliberately accounts *no* backoff delay and
emits *no* probe events — it reproduces the engine's historical §3
semantics exactly (the buddy hop predates PR 4's delay accounting), and
the protocol-equivalence suite pins that behaviour.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.protocol.effects import BUDDY_PING, GONE, OK, Address, Contact, FetchBuddies
from repro.protocol.search import repeated_queries

__all__ = ["UpdateStrategy", "discover_replicas", "buddy_forward_step"]


class UpdateStrategy(enum.Enum):
    """The three propagation strategies of §3/§5.2."""

    REPEATED_DFS = "repeated_dfs"
    DFS_BUDDIES = "dfs_buddies"
    BFS = "bfs"


def discover_replicas(
    key: str,
    *,
    strategy: UpdateStrategy,
    repetition: int,
    recbreadth: int,
    run_query: Callable[[], Any],
    run_breadth: Callable[[int], Any],
    forward_to_buddies: Callable[
        [set[Address], int, int], tuple[set[Address], int, int]
    ],
) -> tuple[set[Address], int, int]:
    """Find the replicas responsible for *key* per *strategy*.

    ``run_query()`` performs one depth-first search for *key*;
    ``run_breadth(recbreadth)`` one breadth-first search;
    ``forward_to_buddies(reached, messages, failed)`` executes strategy
    2's buddy hop.  Returns ``(reached, messages, failed)``.
    """
    if strategy is UpdateStrategy.REPEATED_DFS:
        return repeated_queries(run_query, repetition)
    if strategy is UpdateStrategy.DFS_BUDDIES:
        reached, messages, failed = repeated_queries(run_query, repetition)
        return forward_to_buddies(reached, messages, failed)
    if strategy is UpdateStrategy.BFS:
        reached: set[Address] = set()
        messages = 0
        failed = 0
        for _ in range(repetition):
            result = run_breadth(recbreadth)
            reached.update(result.responders)
            messages += result.messages
            failed += result.failed_attempts
        return reached, messages, failed
    raise ValueError(f"unknown strategy: {strategy!r}")


def buddy_forward_step(reached: set[Address], messages: int, failed: int, attempts: int):
    """Strategy 2's second hop: replicas forward to their buddy lists.

    Yields one :class:`FetchBuddies` per reached replica and one
    :class:`Contact` per liveness attempt; returns the extended
    ``(reached, messages, failed)`` tallies.  A dangling buddy counts one
    failure without retry; an offline buddy is re-tried up to *attempts*
    times (each failure tallied, per the §2 availability model).
    """
    extended = set(reached)
    for address in reached:
        buddies = yield FetchBuddies(address)
        for buddy in buddies:
            if buddy in extended:
                continue
            status = yield Contact(buddy, 0, BUDDY_PING)
            if status is GONE:
                failed += 1
                continue
            remaining = attempts
            while True:
                if status is OK:
                    messages += 1
                    extended.add(buddy)
                    break
                failed += 1
                remaining -= 1
                if remaining == 0:
                    break
                status = yield Contact(buddy, 0, BUDDY_PING)
    return extended, messages, failed
