"""Typed effects: the vocabulary the sans-I/O state machines speak.

The protocol machines in :mod:`repro.protocol` never touch a grid, a
socket, or a transport.  They are generators that *yield* effects —
requests for the outside world — and receive the outcome of each effect
via ``send()``.  A driver (the in-process
:mod:`repro.protocol.direct` executor or the message-level
:class:`repro.net.node.PGridNode`) interprets each effect against its
I/O substrate:

``Contact(target, level, payload, delay)``
    Attempt to reach *target* (the paper's ``IF online(peer(r))`` guard
    fused with the delivery of *payload*).  The driver answers with a
    :class:`ContactStatus`: ``OK`` (the target answered; a message
    driver holds the reply for the matching :class:`Resolve`),
    ``OFFLINE`` (temporarily unavailable — retryable under the §2
    per-contact availability model), or ``GONE`` (dangling reference /
    unreachable destination — retrying cannot help).  ``delay`` carries
    the simulated backoff a retry attempt accrued, so message drivers
    can feed it into the transport's simulated clock.

``Resolve(target, payload)``
    Execute the protocol step *payload* at the previously-contacted
    *target* and return its outcome.  The direct driver recurses into
    the machine for the target peer; a message driver returns the reply
    it received for the corresponding :class:`Contact`.  Budget
    bookkeeping happens between ``Contact`` and ``Resolve`` — exactly
    where Fig. 2 consumes a message.

``FetchBuddies(target)``
    Ask for *target*'s buddy list in deterministic (sorted) order
    (update strategy 2 of §3).

``Record(event, args)``
    A probe observation (:class:`repro.obs.probe.Probe` hook name plus
    positional arguments).  Machines only emit ``Record`` when the
    driver declared an observer (``context.observed``), so the
    uninstrumented hot path allocates nothing.

``Deliver(result)``
    Terminal effect of the top-level machines: the typed operation
    result.  Drivers may consume it for delivery to the caller; the
    result is also the generator's return value.

Effect *payloads* (:class:`QueryStep`, :class:`BreadthStep`,
:class:`ExchangeStep`, :data:`BUDDY_PING`) mirror the arguments of the
paper's pseudo-code calls, which is what lets the message driver map
them 1:1 onto :mod:`repro.net.message` kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Address",
    "ContactStatus",
    "OK",
    "OFFLINE",
    "GONE",
    "Contact",
    "Resolve",
    "FetchBuddies",
    "Record",
    "Deliver",
    "QueryStep",
    "BreadthStep",
    "ExchangeStep",
    "BUDDY_PING",
    "dispatch_record",
]

# The protocol layer depends only on pure key-string helpers
# (repro.core.keys) — never on grid, storage, or transport state;
# addresses are plain ints and peer-local state is duck-typed (anything
# with .address / .path / .depth / .routing.refs(level)).
Address = int


class ContactStatus(enum.Enum):
    """Driver's answer to a :class:`Contact` effect."""

    OK = "ok"
    OFFLINE = "offline"
    GONE = "gone"


OK = ContactStatus.OK
OFFLINE = ContactStatus.OFFLINE
GONE = ContactStatus.GONE


@dataclass(frozen=True, slots=True)
class Contact:
    """Attempt to reach *target* with *payload* at reference level *level*."""

    target: Address
    level: int
    payload: Any
    delay: float = 0.0


@dataclass(frozen=True, slots=True)
class Resolve:
    """Execute *payload* at the contacted *target*; returns its outcome."""

    target: Address
    payload: Any


@dataclass(frozen=True, slots=True)
class FetchBuddies:
    """Request *target*'s buddy list (sorted, deterministic)."""

    target: Address


@dataclass(frozen=True, slots=True)
class Record:
    """One probe observation: hook *event* with positional *args*."""

    event: str
    args: tuple


@dataclass(frozen=True, slots=True)
class Deliver:
    """Terminal effect: the operation's typed result."""

    result: Any


# -- effect payloads (pseudo-code call arguments) -----------------------------


@dataclass(frozen=True, slots=True)
class QueryStep:
    """Fig. 2 recursive call: ``query(peer(r), query, level)``."""

    query: str
    level: int


@dataclass(frozen=True, slots=True)
class BreadthStep:
    """§3 breadth-first step (search, range enumeration, update spread)."""

    query: str
    level: int
    recbreadth: int
    enumerate_subtree: bool = False


@dataclass(frozen=True, slots=True)
class ExchangeStep:
    """Fig. 3 case-4 recursion: ``exchange(partner, peer(r), depth)``."""

    partner: Address
    depth: int


#: Payload of the buddy-forwarding liveness contact (no data rides along:
#: the update itself is installed by the driver once the replica answers).
BUDDY_PING = "buddy-ping"


#: Record event name -> Probe hook name (identical today; kept explicit so
#: the wire vocabulary can evolve independently of the probe API).
_RECORD_HOOKS = {
    "forward": "on_forward",
    "offline_miss": "on_offline_miss",
    "backtrack": "on_backtrack",
    "responsible": "on_responsible",
    "exchange_case": "on_exchange_case",
}


def dispatch_record(probe: Any, record: Record) -> None:
    """Invoke the probe hook a :class:`Record` effect names.

    Shared by every driver so probe event streams are identical no matter
    which substrate executed the machine.
    """
    getattr(probe, _RECORD_HOOKS[record.event])(*record.args)
