"""The per-reference contact machine and the shared protocol runtime state.

:func:`contact_step` is the one place in the codebase that encodes the
"can I reach this reference?" decision: the paper's ``IF online(peer(r))``
guard extended with PR 4's retry policy (bounded attempts, exponential
backoff, accumulated-delay deadline) and routing self-repair reporting.
Both the depth-first and breadth-first search machines and the update
strategies delegate every contact to it, so the direct engines and the
networked node cannot drift on retry semantics again.

:class:`Budget`, :class:`StepStats` and :class:`Context` are the mutable
runtime threaded through one protocol operation (one search, one update
propagation); drivers create them per call and read the tallies off
afterwards.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

from repro.protocol.effects import GONE, OK, Address, Contact, Record

__all__ = ["Budget", "StepStats", "Context", "contact_step"]


class Budget:
    """Mutable message budget shared across one recursive operation."""

    __slots__ = ("remaining",)

    def __init__(self, limit: int) -> None:
        self.remaining = limit

    def consume(self) -> bool:
        """Take one message from the budget; False when exhausted."""
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class StepStats:
    """Contact-accounting tallies of one protocol operation (§5.2).

    ``messages`` counts successful contacts, ``failed`` the offline /
    dangling attempts, ``latency`` the simulated end-to-end chain latency
    (topology-aware engines only) and ``retry_delay`` the accumulated
    simulated backoff.  Over the message driver ``retry_delay`` is
    *cumulative across hops* — remote steps are seeded with the value
    spent so far, so one deadline governs the whole operation exactly as
    it does in-process.
    """

    __slots__ = ("messages", "failed", "latency", "retry_delay")

    def __init__(self) -> None:
        self.messages = 0
        self.failed = 0
        self.latency = 0.0
        self.retry_delay = 0.0


class Context:
    """Per-engine collaborators the machines consult (never I/O).

    ``rng``
        The grid's RNG — the *only* randomness source of the protocol,
        consumed in exactly the order the paper's pseudo-code implies.
    ``retry`` / ``healer``
        Duck-typed :class:`repro.faults.RetryPolicy` /
        :class:`repro.faults.RefHealer`; ``None`` disables each.
    ``topology``
        Optional latency model (``latency(a, b) -> float``) accumulated
        into :attr:`StepStats.latency`.
    ``order``
        Optional attempt-order hook ``(view, refs) -> Iterator[Address]``
        (:class:`repro.sim.topology.ProximitySearchEngine`); ``None``
        selects the paper's lazy uniform draws.
    ``observed``
        Whether a probe is attached; machines emit :class:`Record`
        effects only when True, keeping the unobserved path free of
        per-event allocations.
    """

    __slots__ = ("rng", "retry", "healer", "topology", "order", "observed")

    def __init__(
        self,
        rng: random.Random,
        *,
        retry: Any = None,
        healer: Any = None,
        topology: Any = None,
        order: Callable[[Any, list[Address]], Iterator[Address]] | None = None,
        observed: bool = False,
    ) -> None:
        self.rng = rng
        self.retry = retry
        self.healer = healer
        self.topology = topology
        self.order = order
        self.observed = observed


def contact_step(
    ctx: Context,
    stats: StepStats,
    owner: Address,
    target: Address,
    ref_level: int,
    payload: Any,
):
    """Try to reach *target* once per the retry policy; returns success.

    A ``GONE`` answer (dangling reference — the peer departed for good)
    fails immediately without retry: re-contacting a peer that no longer
    exists cannot help.  ``OFFLINE`` answers are re-tried up to
    ``retry.attempts`` times — each an independent availability coin
    under the §2 model — accruing the backoff schedule in
    ``stats.retry_delay`` and respecting the policy's deadline.  Every
    outcome is reported to the healer, which may evict the reference
    mid-retry (the loop then stops — the slot no longer exists).
    """
    status = yield Contact(target, ref_level, payload)
    if status is GONE:
        stats.failed += 1
        if ctx.observed:
            yield Record("offline_miss", (owner, target, ref_level))
        if ctx.healer is not None:
            ctx.healer.record_failure(owner, ref_level, target)
        return False
    retry = ctx.retry
    attempts = retry.attempts if retry is not None else 1
    attempt = 1
    while True:
        if status is OK:
            if ctx.healer is not None:
                ctx.healer.record_success(owner, ref_level, target)
            return True
        stats.failed += 1
        if ctx.observed:
            yield Record("offline_miss", (owner, target, ref_level))
        if ctx.healer is not None and ctx.healer.record_failure(
            owner, ref_level, target
        ):
            return False
        attempt += 1
        if attempt > attempts:
            return False
        delay = retry.delay_before(attempt)
        if (
            retry.deadline is not None
            and stats.retry_delay + delay > retry.deadline
        ):
            return False
        stats.retry_delay += delay
        status = yield Contact(target, ref_level, payload, delay)
