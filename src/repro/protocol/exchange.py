"""Sans-I/O Fig. 3 ``exchange``: the randomized construction protocol.

The pairwise CASE analysis (split / specialize / recurse) operates on the
two *local* peer states the meeting brings together — mutating paths,
routing tables and stores is peer-local work, not I/O — while the case-4
recursion, the only step that reaches *other* peers, is expressed as
:class:`Contact` (liveness check of the referenced peer) +
:class:`Resolve` (run the sub-exchange there) effects, so a driver
decides how referenced peers are reached.

Pseudo-code fidelity notes (see DESIGN.md §4):

* ``IF lc > 0`` guards only the reference-exchange block — the CASE
  analysis must run for ``lc = 0`` too, otherwise the initial
  all-empty-path population could never bootstrap.
* §5.1's counter ``e`` counts *calls to the exchange function*,
  including recursive ones; ``stats.calls`` matches.
* The table-5 fix bounds case-4 recursion to ``recursion_fanout`` random
  references per side (``None`` = the original table-4 behaviour).
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.core import keys as keyspace
from repro.protocol.effects import OK, Contact, ExchangeStep, Record, Resolve

__all__ = [
    "ExchangeContext",
    "exchange_step",
    "exchange_refs_default",
    "may_specialize",
    "case1_split",
    "case23_specialize",
    "case4_candidates",
    "record_replicas",
    "handover_refs",
]


class ExchangeContext:
    """Collaborators one exchange run consults.

    ``stats`` is a duck-typed :class:`repro.core.exchange.ExchangeStats`;
    ``exchange_refs(a1, a2, lc)`` is the shared-level reference-exchange
    hook (overridable — proximity construction retains nearest references
    instead of a uniform re-sample); ``split_gate(peer)`` the data-driven
    split threshold.
    """

    __slots__ = ("config", "rng", "stats", "exchange_refs", "split_gate", "observed")

    def __init__(
        self,
        config: Any,
        rng: random.Random,
        stats: Any,
        *,
        exchange_refs: Callable[[Any, Any, int], None],
        split_gate: Callable[[Any], bool],
        observed: bool = False,
    ) -> None:
        self.config = config
        self.rng = rng
        self.stats = stats
        self.exchange_refs = exchange_refs
        self.split_gate = split_gate
        self.observed = observed


def exchange_step(a1: Any, a2: Any, depth: int, ctx: ExchangeContext):
    """One ``exchange(a1, a2, depth)`` call (Fig. 3)."""
    stats = ctx.stats
    stats.calls += 1
    config = ctx.config
    commonpath = keyspace.common_prefix(a1.path, a2.path)
    lc = len(commonpath)

    if lc > 0:
        ctx.exchange_refs(a1, a2, lc)

    l1 = a1.depth - lc
    l2 = a2.depth - lc

    if l1 == 0 and l2 == 0:
        if lc < config.maxl and ctx.split_gate(a1) and ctx.split_gate(a2):
            case1_split(a1, a2, lc, stats)
            if ctx.observed:
                yield Record(
                    "exchange_case", ("case1", a1.address, a2.address, lc, depth)
                )
        else:
            # Identical paths that will not split further (depth or
            # data threshold reached): the peers are replicas.
            record_replicas(a1, a2, stats)
            if ctx.observed:
                yield Record(
                    "exchange_case", ("replicas", a1.address, a2.address, lc, depth)
                )
    elif l1 == 0 and l2 > 0:
        if lc < config.maxl and ctx.split_gate(a1):
            case23_specialize(shorter=a1, longer=a2, lc=lc, rng=ctx.rng, stats=stats)
            stats.case2_specializations += 1
            if ctx.observed:
                yield Record(
                    "exchange_case", ("case2", a1.address, a2.address, lc, depth)
                )
    elif l1 > 0 and l2 == 0:
        if lc < config.maxl and ctx.split_gate(a2):
            case23_specialize(shorter=a2, longer=a1, lc=lc, rng=ctx.rng, stats=stats)
            stats.case3_specializations += 1
            if ctx.observed:
                yield Record(
                    "exchange_case", ("case3", a1.address, a2.address, lc, depth)
                )
    else:  # l1 > 0 and l2 > 0: paths diverge at bit lc + 1
        if depth < config.recmax:
            if ctx.observed:
                yield Record(
                    "exchange_case", ("case4", a1.address, a2.address, lc, depth)
                )
            refs1, refs2 = case4_candidates(a1, a2, lc, ctx)
            stats.case4_recursions += 1
            for address in refs1:
                if address != a2.address:
                    step = ExchangeStep(a2.address, depth + 1)
                    status = yield Contact(address, lc + 1, step)
                    if status is OK:
                        yield Resolve(address, step)
            for address in refs2:
                if address != a1.address:
                    step = ExchangeStep(a1.address, depth + 1)
                    status = yield Contact(address, lc + 1, step)
                    if status is OK:
                        yield Resolve(address, step)


# -- reference exchange at shared levels ---------------------------------------


def exchange_refs_default(a1: Any, a2: Any, lc: int, config: Any, rng: random.Random) -> None:
    """Union + re-sample the reference sets at the shared level(s).

    The paper exchanges only at the deepest shared level ``lc``;
    ``exchange_refs_all_levels`` extends this to every level ``1..lc``
    (ablation AB4).
    """
    levels = range(1, lc + 1) if config.exchange_refs_all_levels else (lc,)
    for level in levels:
        combined = [
            address
            for address in (*a1.routing.refs(level), *a2.routing.refs(level))
            if address not in (a1.address, a2.address)
        ]
        if not combined:
            continue
        a1.routing.merge_refs(level, combined, rng)
        a2.routing.merge_refs(level, combined, rng)


def may_specialize(peer: Any, config: Any) -> bool:
    """Data-driven split gate (§3's threshold hint).

    With ``split_min_items`` unset every split is allowed (the paper's
    default).  Otherwise a peer only deepens its path while it is
    responsible for at least that many index entries — splitting a
    near-empty region buys nothing and costs references.
    """
    threshold = config.split_min_items
    if threshold is None:
        return True
    return peer.store.ref_count >= threshold


# -- case 1: both remaining paths empty — introduce a new level ----------------


def case1_split(a1: Any, a2: Any, lc: int, stats: Any) -> None:
    a1.extend_path("0")
    a2.extend_path("1")
    a1.routing.set_refs(lc + 1, [a2.address])
    a2.routing.set_refs(lc + 1, [a1.address])
    handover_refs(a1, a2, stats)
    handover_refs(a2, a1, stats)
    stats.case1_splits += 1


# -- cases 2/3: one path is a prefix of the other — specialize the shorter -----


def case23_specialize(
    *, shorter: Any, longer: Any, lc: int, rng: random.Random, stats: Any
) -> None:
    """The shorter peer takes the branch *opposite* the longer peer's.

    This opposite choice is the paper's balancing mechanism: imbalances
    in bit popularity are compensated because newcomers fill the less
    covered side.
    """
    opposite = keyspace.complement_bit(longer.path[lc])
    shorter.extend_path(opposite)
    shorter.routing.set_refs(lc + 1, [longer.address])
    longer.routing.merge_refs(lc + 1, [shorter.address], rng)
    handover_refs(shorter, longer, stats)


# -- case 4: already diverged — forward to referenced peers --------------------


def case4_candidates(a1: Any, a2: Any, lc: int, ctx: ExchangeContext):
    """Mutual-ref bookkeeping + the (possibly fanout-bounded) recursion sets."""
    config = ctx.config
    if config.mutual_refs_in_case4:
        a1.routing.add_ref(lc + 1, a2.address)
        a2.routing.add_ref(lc + 1, a1.address)
    refs1 = [r for r in a1.routing.refs(lc + 1) if r != a2.address]
    refs2 = [r for r in a2.routing.refs(lc + 1) if r != a1.address]
    fanout = config.recursion_fanout
    if fanout is not None:
        rng = ctx.rng
        if len(refs1) > fanout:
            refs1 = rng.sample(refs1, fanout)
        if len(refs2) > fanout:
            refs2 = rng.sample(refs2, fanout)
    return refs1, refs2


# -- replicas: identical complete paths ----------------------------------------


def record_replicas(a1: Any, a2: Any, stats: Any) -> None:
    """Identical paths at ``maxl``: buddy links + index anti-entropy."""
    a1.add_buddy(a2.address)
    a2.add_buddy(a1.address)
    a1.merge_buddies(a2.buddies)
    a2.merge_buddies(a1.buddies)
    a1.buddies.discard(a1.address)
    a2.buddies.discard(a2.address)
    stats.buddy_links += 1
    for ref in list(a1.store.iter_refs()):
        a2.store.add_ref(ref)
    for ref in list(a2.store.iter_refs()):
        a1.store.add_ref(ref)


# -- index hand-over on specialization -----------------------------------------


def handover_refs(specialized: Any, partner: Any, stats: Any) -> None:
    """Move index entries that left *specialized*'s responsibility.

    Entries covered by the partner's (possibly deeper) path move there;
    entries the partner does not cover are counted as lost — in a
    deployed system they would be re-inserted via a search, which the
    update engine models explicitly.
    """
    dropped = specialized.store.drop_refs_outside(specialized.path)
    for ref in dropped:
        if keyspace.in_prefix_relation(ref.key, partner.path):
            partner.store.add_ref(ref)
            stats.ref_handover_entries += 1
        else:
            stats.ref_handover_lost += 1
