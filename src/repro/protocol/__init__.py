"""``repro.protocol`` — sans-I/O state machines for the P-Grid protocols.

The paper's algorithms (Fig. 2 search family, §3/§5.2 update strategies,
Fig. 3 ``exchange``) are implemented exactly once, as pure, RNG-explicit
generator machines that *yield* typed effects (:class:`Contact`,
:class:`Resolve`, :class:`FetchBuddies`, :class:`Record`,
:class:`Deliver`) instead of performing calls.  Two drivers execute the
effect streams:

* the **direct driver** (:mod:`repro.protocol.direct`) answers effects
  from an in-process :class:`repro.core.grid.PGrid` — this is what the
  classic ``SearchEngine`` / ``UpdateEngine`` / ``ReadEngine`` /
  ``ExchangeEngine`` now run on;
* the **message driver** (:class:`repro.net.node.PGridNode`) maps the
  same effects onto :mod:`repro.net.message` kinds over a transport,
  giving the networked path the identical routing decisions, retry
  semantics and RNG stream.

See ``docs/paper_mapping.md`` for the effect-vocabulary → pseudo-code
line mapping and ``docs/API.md`` for driver contracts.
"""

from repro.protocol.contact import Budget, Context, StepStats, contact_step
from repro.protocol.driver import drive, drive_async
from repro.protocol.effects import (
    BUDDY_PING,
    GONE,
    OFFLINE,
    OK,
    Address,
    BreadthStep,
    Contact,
    ContactStatus,
    Deliver,
    ExchangeStep,
    FetchBuddies,
    QueryStep,
    Record,
    Resolve,
    dispatch_record,
)
from repro.protocol.exchange import ExchangeContext, exchange_step
from repro.protocol.read import read_majority, read_repeated, read_single
from repro.protocol.search import (
    Traversal,
    breadth_machine,
    breadth_step,
    dfs_step,
    fanout_step,
    key_in_range,
    repeated_queries,
    run_range,
    search_machine,
)
from repro.protocol.update import UpdateStrategy, buddy_forward_step, discover_replicas

__all__ = [
    # effects
    "Address",
    "ContactStatus",
    "OK",
    "OFFLINE",
    "GONE",
    "Contact",
    "Resolve",
    "FetchBuddies",
    "Record",
    "Deliver",
    "QueryStep",
    "BreadthStep",
    "ExchangeStep",
    "BUDDY_PING",
    "dispatch_record",
    # runtime
    "Budget",
    "StepStats",
    "Context",
    "Traversal",
    "ExchangeContext",
    # machines
    "contact_step",
    "dfs_step",
    "search_machine",
    "breadth_step",
    "breadth_machine",
    "fanout_step",
    "exchange_step",
    "buddy_forward_step",
    # driver contract
    "drive",
    "drive_async",
    # orchestration
    "key_in_range",
    "run_range",
    "repeated_queries",
    "discover_replicas",
    "UpdateStrategy",
    "read_single",
    "read_repeated",
    "read_majority",
]
