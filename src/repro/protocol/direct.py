"""Direct driver: execute protocol machines against an in-process grid.

This is the thin I/O layer behind the classic engines
(:class:`repro.core.search.SearchEngine`,
:class:`repro.core.updates.UpdateEngine`,
:class:`repro.core.exchange.ExchangeEngine`): a trampoline that answers

* :class:`Contact` from the grid's membership + online oracle (``GONE``
  for a departed peer — no RNG draw; one availability draw otherwise),
* :class:`Resolve` by recursing into the machine for the target peer,
  sharing the operation's budget/stats/traversal state (a direct call
  *is* synchronous message delivery),
* :class:`FetchBuddies` from the peer's buddy set (sorted),
* :class:`Record` via the shared probe dispatch,
* :class:`Deliver` as a no-op (the caller takes the return value).

The networked twin lives in :class:`repro.net.node.PGridNode`, which
answers the same effects over the transport.
"""

from __future__ import annotations

from typing import Any

from repro.protocol.contact import Budget, Context, StepStats
from repro.protocol.driver import drive as _drive
from repro.protocol.effects import (
    GONE,
    OFFLINE,
    OK,
    Contact,
    Deliver,
    FetchBuddies,
    Record,
    Resolve,
    dispatch_record,
)
from repro.protocol.exchange import ExchangeContext, exchange_step
from repro.protocol.search import Traversal, breadth_step, dfs_step
from repro.protocol.update import buddy_forward_step

__all__ = ["run_dfs", "run_breadth", "run_exchange", "run_buddies"]


def _contact_status(grid, target):
    """The grid's answer to a Contact: departed / offline / reachable."""
    if not grid.has_peer(target):
        return GONE
    if not grid.is_online(target):
        return OFFLINE
    return OK


def run_dfs(
    grid: Any,
    ctx: Context,
    probe: Any,
    view: Any,
    query: str,
    level: int,
    budget: Budget,
    stats: StepStats,
):
    """Execute the Fig. 2 machine from *view*; returns (found, responder)."""

    def execute(effect):
        cls = type(effect)
        if cls is Contact:
            return _contact_status(grid, effect.target)
        if cls is Resolve:
            payload = effect.payload
            sub = dfs_step(
                grid.peer(effect.target), payload.query, payload.level,
                ctx, budget, stats,
            )
            return _drive(sub, execute)
        if cls is Record:
            dispatch_record(probe, effect)
            return None
        if cls is Deliver:
            return None
        raise TypeError(f"unexpected effect: {effect!r}")

    return _drive(dfs_step(view, query, level, ctx, budget, stats), execute)


def run_breadth(
    grid: Any,
    ctx: Context,
    probe: Any,
    view: Any,
    query: str,
    level: int,
    trav: Traversal,
) -> None:
    """Execute the breadth-first machine from *view* (mutates *trav*)."""

    def execute(effect):
        cls = type(effect)
        if cls is Contact:
            return _contact_status(grid, effect.target)
        if cls is Resolve:
            payload = effect.payload
            sub = breadth_step(
                grid.peer(effect.target), payload.query, payload.level, ctx, trav
            )
            return _drive(sub, execute)
        if cls is Record:
            dispatch_record(probe, effect)
            return None
        if cls is Deliver:
            return None
        raise TypeError(f"unexpected effect: {effect!r}")

    _drive(breadth_step(view, query, level, ctx, trav), execute)


def run_exchange(
    grid: Any,
    ctx: ExchangeContext,
    probe: Any,
    a1: Any,
    a2: Any,
    depth: int,
) -> None:
    """Execute one Fig. 3 exchange (including case-4 recursion)."""

    def execute(effect):
        cls = type(effect)
        if cls is Contact:
            return _contact_status(grid, effect.target)
        if cls is Resolve:
            payload = effect.payload
            # exchange(partner, peer(r), depth): the *contacted* peer is
            # the second argument of the recursive call.
            sub = exchange_step(
                grid.peer(payload.partner),
                grid.peer(effect.target),
                payload.depth,
                ctx,
            )
            return _drive(sub, execute)
        if cls is Record:
            dispatch_record(probe, effect)
            return None
        raise TypeError(f"unexpected effect: {effect!r}")

    _drive(exchange_step(a1, a2, depth, ctx), execute)


def run_buddies(
    grid: Any,
    reached: set[int],
    messages: int,
    failed: int,
    attempts: int,
) -> tuple[set[int], int, int]:
    """Execute the buddy-forwarding hop (§3 update strategy 2)."""

    def execute(effect):
        cls = type(effect)
        if cls is FetchBuddies:
            return sorted(grid.peer(effect.target).buddies)
        if cls is Contact:
            return _contact_status(grid, effect.target)
        raise TypeError(f"unexpected effect: {effect!r}")

    return _drive(buddy_forward_step(reached, messages, failed, attempts), execute)
