"""``repro.api`` — the one-stop facade over construction, search, update
and the three interchangeable drivers.

Everything the rest of the package exposes stays available, but the
common path is four calls::

    from repro import Grid

    grid = Grid.build(peers=64, seed=7)
    grid.search("1010")                      # Fig. 2 depth-first search
    grid.update("1010", holder=3)            # §5.2 breadth-first publish

    with grid.serve(driver="async") as svc:  # or "engine" / "node"
        svc.search("1010", start=5)
        svc.update("1010", holder=3, version=1)

:meth:`Grid.serve` returns a *service*: a context manager with a uniform
synchronous ``search`` / ``update`` surface backed by one of the three
drivers of the sans-I/O protocol core —

``"engine"``
    the in-process engines (:class:`~repro.core.search.SearchEngine`,
    :class:`~repro.core.updates.UpdateEngine`) calling peers directly;
``"node"``
    one :class:`~repro.net.node.PGridNode` per peer over a synchronous
    :class:`~repro.net.transport.LocalTransport` — every hop an explicit
    message;
``"async"``
    one :class:`~repro.aio.node.AsyncPGridNode` per peer over an
    :class:`~repro.aio.transport.AsyncTransport` on a private event loop
    — bounded mailboxes, awaitable effects.

All three run the *same* protocol machines and draw from the grid RNG in
the same order, so on equal grids the three services return
field-for-field identical results with identical cost counters (asserted
by ``tests/api/test_facade.py``).  Collaborators are keyword-only
injection throughout, matching the package convention.
"""

from __future__ import annotations

import asyncio
import random
from typing import Iterable

from repro.core.config import PGridConfig, SearchConfig, UpdateConfig
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.search import RangeSearchResult, SearchEngine, SearchResult
from repro.core.storage import DataItem, DataRef
from repro.core.updates import ReadEngine, UpdateEngine, UpdateResult, UpdateStrategy
from repro.errors import InvalidConfigError
from repro.net.node import NodeSearchOutcome, PGridNode, attach_nodes
from repro.net.transport import LocalTransport
from repro.obs.probe import Probe
from repro.sim.builder import ConstructionReport, construct_grid

__all__ = ["Grid", "DRIVERS", "QUERY_CORES"]

#: The interchangeable driver names :meth:`Grid.serve` accepts.
DRIVERS = ("engine", "node", "async")

#: The query-plane cores :meth:`Grid.search` / :meth:`Grid.search_many`
#: accept: ``"object"`` walks the reference engines peer-by-peer,
#: ``"array"`` resolves whole batches per numpy pass (see
#: ``repro.fast.query``).
QUERY_CORES = ("object", "array")


class Grid:
    """A built P-Grid population plus its default engines.

    Construct with :meth:`build` (the common case) or wrap an existing
    :class:`~repro.core.grid.PGrid` directly.  All collaborators are
    keyword-only: ``probe`` observes, ``retry``/``healer`` add
    resilience, the config objects tune the engines.
    """

    def __init__(
        self,
        pgrid: PGrid,
        *,
        report: ConstructionReport | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
        search_config: SearchConfig | None = None,
        update_config: UpdateConfig | None = None,
    ) -> None:
        self.pgrid = pgrid
        self.report = report
        self.probe = probe
        self.retry = retry
        self.healer = healer
        self.search_config = search_config or SearchConfig()
        self.update_config = update_config or UpdateConfig()
        self.engine = SearchEngine(
            pgrid,
            config=self.search_config,
            probe=probe,
            retry=retry,
            healer=healer,
        )
        self._batch_engine = None
        self._batch_index: dict[Address, int] = {}
        self.updates = UpdateEngine(
            pgrid,
            search=self.engine,
            config=self.update_config,
            probe=probe,
            retry=retry,
        )
        self.reads = ReadEngine(pgrid, search=self.engine, probe=probe)

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        peers: int = 64,
        *,
        maxl: int = 4,
        refmax: int = 2,
        recmax: int = 2,
        fanout: int | None = 2,
        seed: int = 0,
        threshold: float = 0.99,
        max_exchanges: int | None = 2_000_000,
        core: str = "object",
        config: PGridConfig | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
        search_config: SearchConfig | None = None,
        update_config: UpdateConfig | None = None,
    ) -> "Grid":
        """Create *peers* peers and run construction to convergence.

        ``maxl``/``refmax``/``recmax``/``fanout`` are the paper's free
        parameters (ignored when an explicit ``config`` is given);
        ``seed`` makes the whole grid — construction and every later
        protocol decision — reproducible.  ``core`` selects the
        construction engine: ``"object"`` (reference), ``"array"``
        (flat-array kernel, bit-identical to the object core) or
        ``"batch"`` (vectorized rounds, deterministic but not
        bit-identical; requires numpy).
        """
        if config is None:
            config = PGridConfig(
                maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=fanout
            )
        pgrid = PGrid(config, rng=random.Random(seed))
        pgrid.add_peers(peers)
        report = construct_grid(
            pgrid,
            engine=core,
            threshold_fraction=threshold,
            max_exchanges=max_exchanges,
        )
        return cls(
            pgrid,
            report=report,
            probe=probe,
            retry=retry,
            healer=healer,
            search_config=search_config,
            update_config=update_config,
        )

    # -- population ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pgrid)

    def addresses(self) -> list[Address]:
        """Sorted addresses of all peers."""
        return self.pgrid.addresses()

    def seed_index(self, items: Iterable[tuple[DataItem, Address]]) -> int:
        """Bootstrap a consistent index outside the protocol (experiments)."""
        return self.pgrid.seed_index(list(items))

    def replicas_for(self, key: str) -> list[Address]:
        """Ground-truth replica set for *key*."""
        return self.pgrid.replicas_for_key(key)

    # -- batch query plane (array core) -------------------------------------------------

    def batch_query_engine(self, *, refresh: bool = False, chunk: int = 8192):
        """The vectorized query plane over this grid (requires numpy).

        Lazily bridges the current routing tables into a
        :class:`~repro.fast.BatchQueryEngine` snapshot and caches it;
        pass ``refresh=True`` after mutating the grid (joins, departures,
        repair) to re-bridge.  The engine draws from its own numpy
        streams seeded off the grid RNG: deterministic per grid seed and
        statistically equivalent to the object engines, not
        bit-identical (see ``repro.fast.query``).
        """
        if refresh or self._batch_engine is None:
            from repro.fast import ArrayGrid, BatchQueryEngine

            agrid = ArrayGrid.from_pgrid(self.pgrid)
            self._batch_engine = BatchQueryEngine.from_arraygrid(
                agrid,
                max_messages=self.search_config.max_messages,
                chunk=chunk,
                probe=self.probe,
            )
            self._batch_index = {
                address: index
                for index, address in enumerate(self._batch_engine.addresses)
            }
        return self._batch_engine

    def search_many(
        self, keys: list[str], starts: list[Address], *, core: str = "array"
    ):
        """Resolve one search per ``(key, start)`` pair.

        ``core="array"`` runs all pairs through the batch query plane in
        vectorized waves and returns a
        :class:`~repro.fast.BatchSearchResult` (dense peer indices; map
        responders through ``batch_query_engine().addresses``);
        ``core="object"`` loops the reference engine and returns a
        ``list[SearchResult]`` — same costs, one result object per pair.
        """
        if core == "object":
            return [self.engine.query_from(start, key)
                    for key, start in zip(keys, starts)]
        if core != "array":
            raise InvalidConfigError(
                f"unknown core {core!r}: expected one of {', '.join(QUERY_CORES)}"
            )
        engine = self.batch_query_engine()
        index = self._batch_index
        return engine.search_many(keys, [index[start] for start in starts])

    # -- direct operations (engine driver, no service needed) --------------------------

    def search(
        self, key: str, *, start: Address = 0, core: str = "object"
    ) -> SearchResult:
        """One Fig. 2 depth-first search from *start*.

        ``core="array"`` resolves it through the batch query plane
        instead of the object engine — useful to spot-check the bridged
        snapshot; for throughput use :meth:`search_many`, which is where
        the vectorization pays.
        """
        if core == "object":
            return self.engine.query_from(start, key)
        if core != "array":
            raise InvalidConfigError(
                f"unknown core {core!r}: expected one of {', '.join(QUERY_CORES)}"
            )
        engine = self.batch_query_engine()
        batch = engine.search_many([key], [self._batch_index[start]])
        found = bool(batch.found[0])
        responder = (
            engine.addresses[int(batch.responder[0])] if found else None
        )
        return SearchResult(
            query=key,
            start=start,
            found=found,
            responder=responder,
            messages=int(batch.messages[0]),
            failed_attempts=int(batch.failed_attempts[0]),
        )

    def search_range(
        self, low: str, high: str, *, start: Address = 0, recbreadth: int = 2
    ) -> RangeSearchResult:
        """Range query over ``[low, high]`` from *start*."""
        return self.engine.query_range(start, low, high, recbreadth=recbreadth)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        recbreadth: int | None = None,
        repetition: int | None = None,
    ) -> UpdateResult:
        """Publish (or re-publish) *key* stored at *holder* from *start*."""
        return self.updates.publish(
            start,
            DataItem(key=key, value=value),
            holder,
            strategy=strategy,
            repetition=repetition,
            recbreadth=recbreadth,
            version=version,
        )

    # -- drivers ----------------------------------------------------------------------

    def serve(
        self,
        driver: str = "engine",
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
        mailbox_size: int = 64,
    ):
        """Serve this grid behind one of the three drivers.

        Returns a context-managed service with a uniform synchronous
        ``search(key, *, start)`` / ``update(key, holder, ...)`` surface;
        ``retry``/``healer``/``config`` default to this grid's own.
        On equal grids all three drivers return identical results with
        identical cost counters.
        """
        retry = retry if retry is not None else self.retry
        healer = healer if healer is not None else self.healer
        config = config or self.search_config
        if driver == "engine":
            return EngineService(self)
        if driver == "node":
            return NodeService(
                self, retry=retry, healer=healer, config=config
            )
        if driver == "async":
            return AsyncService(
                self,
                retry=retry,
                healer=healer,
                config=config,
                mailbox_size=mailbox_size,
            )
        raise InvalidConfigError(
            f"unknown driver {driver!r}: expected one of {', '.join(DRIVERS)}"
        )


def _outcome_to_result(key: str, start: Address, outcome: NodeSearchOutcome) -> SearchResult:
    """Normalize a node-driver outcome to the engines' result type."""
    return SearchResult(
        query=key,
        start=start,
        found=outcome.found,
        responder=outcome.responder,
        messages=outcome.messages_sent,
        failed_attempts=outcome.failed_attempts,
        data_refs=list(outcome.data_refs),
        retry_delay=outcome.retry_delay,
    )


class EngineService:
    """The ``"engine"`` driver: direct in-process execution."""

    driver = "engine"

    def __init__(self, grid: Grid) -> None:
        self._grid = grid

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Nothing to release for the in-process driver."""

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        return self._grid.engine.query_from(start, key)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        return self._grid.update(
            key, holder, start=start, version=version, value=value,
            recbreadth=recbreadth,
        )


class NodeService:
    """The ``"node"`` driver: one message-driven node per peer."""

    driver = "node"

    def __init__(
        self,
        grid: Grid,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
    ) -> None:
        self._grid = grid
        self.transport = LocalTransport(grid.pgrid, probe=grid.probe)
        self.nodes: dict[Address, PGridNode] = attach_nodes(
            grid.pgrid, self.transport, retry=retry, healer=healer, config=config
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Unregister every node so the grid can be served again."""
        for address in list(self.nodes):
            self.transport.unregister(address)
        self.nodes.clear()

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        return _outcome_to_result(key, start, self.nodes[start].search(key))

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        if recbreadth is None:
            recbreadth = self._grid.update_config.recbreadth
        self._grid.pgrid.peer(holder).store.store_item(DataItem(key=key, value=value))
        ref = DataRef(key=key, holder=holder, version=version)
        return self.nodes[start].publish(ref, recbreadth=recbreadth)


class AsyncService:
    """The ``"async"`` driver: an :class:`~repro.aio.AsyncSwarm` on a
    private event loop, driven synchronously per operation.

    For genuinely concurrent workloads use :class:`repro.aio.AsyncSwarm`
    directly; this service exists so the facade can expose all three
    drivers behind one synchronous surface.
    """

    driver = "async"

    def __init__(
        self,
        grid: Grid,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
        mailbox_size: int = 64,
    ) -> None:
        from repro.aio.swarm import AsyncSwarm

        self._grid = grid
        self._loop = asyncio.new_event_loop()
        self.swarm = AsyncSwarm(
            grid.pgrid,
            retry=retry,
            healer=healer,
            config=config,
            probe=grid.probe,
            mailbox_size=mailbox_size,
        )
        self._loop.run_until_complete(self.swarm.start())

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the swarm, release its mailboxes, close the loop."""
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self.swarm.stop())
        for address in list(self.swarm.nodes):
            self.swarm.transport.unregister(address)
        self.swarm.nodes.clear()
        self._loop.close()

    def run(self, coroutine):
        """Run one coroutine on the service's private loop."""
        return self._loop.run_until_complete(coroutine)

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        outcome = self.run(self.swarm.search(start, key))
        return _outcome_to_result(key, start, outcome)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        if recbreadth is None:
            recbreadth = self._grid.update_config.recbreadth
        self._grid.pgrid.peer(holder).store.store_item(DataItem(key=key, value=value))
        ref = DataRef(key=key, holder=holder, version=version)
        return self.run(self.swarm.update(start, ref, recbreadth=recbreadth))
