"""``repro.api`` — the one-stop facade over construction, search, update
and the three interchangeable drivers.

Everything the rest of the package exposes stays available, but the
common path is four calls::

    from repro import Grid

    grid = Grid.build(peers=64, seed=7)
    grid.search("1010")                      # Fig. 2 depth-first search
    grid.update("1010", holder=3)            # §5.2 breadth-first publish

    with grid.serve(driver="async") as svc:  # or "engine" / "node"
        svc.search("1010", start=5)
        svc.update("1010", holder=3, version=1)

:meth:`Grid.serve` returns a *service*: a context manager with a uniform
synchronous ``search`` / ``update`` surface backed by one of the three
drivers of the sans-I/O protocol core —

``"engine"``
    the in-process engines (:class:`~repro.core.search.SearchEngine`,
    :class:`~repro.core.updates.UpdateEngine`) calling peers directly;
``"node"``
    one :class:`~repro.net.node.PGridNode` per peer over a synchronous
    :class:`~repro.net.transport.LocalTransport` — every hop an explicit
    message;
``"async"``
    one :class:`~repro.aio.node.AsyncPGridNode` per peer over an
    :class:`~repro.aio.transport.AsyncTransport` on a private event loop
    — bounded mailboxes, awaitable effects.

All three run the *same* protocol machines and draw from the grid RNG in
the same order, so on equal grids the three services return
field-for-field identical results with identical cost counters (asserted
by ``tests/api/test_facade.py``).  Collaborators are keyword-only
injection throughout, matching the package convention.
"""

from __future__ import annotations

import asyncio
import random
from typing import Iterable

from repro.core.config import PGridConfig, SearchConfig, UpdateConfig
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.search import RangeSearchResult, SearchEngine, SearchResult
from repro.core.storage import DataItem, DataRef
from repro.core.updates import ReadEngine, UpdateEngine, UpdateResult, UpdateStrategy
from repro.errors import InvalidConfigError
from repro.net.node import NodeSearchOutcome, PGridNode, attach_nodes
from repro.net.transport import LocalTransport
from repro.obs.probe import CompositeProbe, Probe
from repro.replication import (
    LoadProbe,
    LoadTracker,
    PathResolver,
    ReplicaBalancer,
    ReplicationConfig,
)
from repro.sim.builder import ConstructionReport, construct_grid

__all__ = ["Grid", "DRIVERS", "QUERY_CORES"]

#: The interchangeable driver names :meth:`Grid.serve` accepts.
DRIVERS = ("engine", "node", "async")

#: The query-plane cores :meth:`Grid.search` / :meth:`Grid.search_many`
#: accept: ``"object"`` walks the reference engines peer-by-peer,
#: ``"array"`` resolves whole batches per numpy pass (see
#: ``repro.fast.query``).
QUERY_CORES = ("object", "array")


class Grid:
    """A built P-Grid population plus its default engines.

    Construct with :meth:`build` (the common case) or wrap an existing
    :class:`~repro.core.grid.PGrid` directly.  All collaborators are
    keyword-only: ``probe`` observes, ``retry``/``healer`` add
    resilience, the config objects tune the engines, and ``replication``
    enables query-load-driven replica balancing (see below).

    ``replication`` is a strategy name (``"static"`` / ``"sqrt"`` /
    ``"adaptive"``) or a full
    :class:`~repro.replication.ReplicationConfig`.  When set, the facade
    builds a :class:`~repro.replication.LoadTracker` fed from every
    driver's searches, and a
    :class:`~repro.replication.ReplicaBalancer` that acts during
    :meth:`rebalance` meetings and update propagation.  ``None`` (the
    default) and ``"static"`` are bit-identical to today's behaviour
    (property-tested).
    """

    def __init__(
        self,
        pgrid: PGrid,
        *,
        report: ConstructionReport | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
        search_config: SearchConfig | None = None,
        update_config: UpdateConfig | None = None,
        replication: ReplicationConfig | str | None = None,
        shortcut_capacity: int | None = None,
    ) -> None:
        self.pgrid = pgrid
        self.report = report
        self.retry = retry
        self.healer = healer
        self.shortcut_capacity = shortcut_capacity
        self.search_config = search_config or SearchConfig()
        self.update_config = update_config or UpdateConfig()
        self.replication = (
            ReplicationConfig(strategy=replication)
            if isinstance(replication, str)
            else replication
        )
        if self.replication is not None:
            self.load_tracker: LoadTracker | None = LoadTracker(
                half_life=self.replication.half_life
            )
            self._path_resolver = PathResolver(pgrid)
            self.load_probe: LoadProbe | None = LoadProbe(
                self.load_tracker, self._path_resolver
            )
            probe = (
                CompositeProbe([probe, self.load_probe])
                if probe is not None
                else self.load_probe
            )
            self.balancer: ReplicaBalancer | None = ReplicaBalancer(
                pgrid, self.load_tracker, config=self.replication, probe=probe
            )
            self.balancer.subscribe(self._path_resolver.invalidate)
            self.balancer.subscribe(self._drop_batch_engine)
            # Conversion listeners fire before the zero-arg listeners, so
            # the dense index map is still valid when shortcuts are dropped.
            self.balancer.subscribe_conversion(self._on_replica_conversion)
        else:
            self.load_tracker = None
            self.load_probe = None
            self.balancer = None
            self._path_resolver = None
        self.probe = probe
        self.engine = SearchEngine(
            pgrid,
            config=self.search_config,
            probe=probe,
            retry=retry,
            healer=healer,
        )
        self._batch_engine = None
        self._batch_index: dict[Address, int] = {}
        self._rebalance_engine = None
        if shortcut_capacity is not None:
            from repro.core.shortcuts import ShortcutSearchEngine
            from repro.fast.shortcuts import ArrayShortcutCache

            self.shortcut_engine: ShortcutSearchEngine | None = ShortcutSearchEngine(
                pgrid, search=self.engine, capacity=shortcut_capacity, probe=probe
            )
            #: Array-core twin of the object shortcut layer; re-attached to
            #: the batch engine on every rebuild (dense indices survive
            #: conversion-triggered rebuilds — membership is unchanged).
            self._array_shortcuts: ArrayShortcutCache | None = ArrayShortcutCache(
                shortcut_capacity
            )
        else:
            self.shortcut_engine = None
            self._array_shortcuts = None
        self.updates = UpdateEngine(
            pgrid,
            search=self.engine,
            config=self.update_config,
            probe=probe,
            retry=retry,
            balancer=self.balancer,
        )
        self.reads = ReadEngine(pgrid, search=self.engine, probe=probe)

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        peers: int = 64,
        *,
        maxl: int = 4,
        refmax: int = 2,
        recmax: int = 2,
        fanout: int | None = 2,
        seed: int = 0,
        threshold: float = 0.99,
        max_exchanges: int | None = 2_000_000,
        core: str = "object",
        config: PGridConfig | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
        search_config: SearchConfig | None = None,
        update_config: UpdateConfig | None = None,
        replication: ReplicationConfig | str | None = None,
        shortcut_capacity: int | None = None,
    ) -> "Grid":
        """Create *peers* peers and run construction to convergence.

        ``maxl``/``refmax``/``recmax``/``fanout`` are the paper's free
        parameters (ignored when an explicit ``config`` is given);
        ``seed`` makes the whole grid — construction and every later
        protocol decision — reproducible.  ``core`` selects the
        construction engine: ``"object"`` (reference), ``"array"``
        (flat-array kernel, bit-identical to the object core) or
        ``"batch"`` (vectorized rounds, deterministic but not
        bit-identical; requires numpy).  ``replication`` enables the
        query-load balancer on the returned facade (construction itself
        is unaffected — the balancer needs observed traffic to act).
        """
        if config is None:
            config = PGridConfig(
                maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=fanout
            )
        pgrid = PGrid(config, rng=random.Random(seed))
        pgrid.add_peers(peers)
        report = construct_grid(
            pgrid,
            engine=core,
            threshold_fraction=threshold,
            max_exchanges=max_exchanges,
        )
        return cls(
            pgrid,
            report=report,
            probe=probe,
            retry=retry,
            healer=healer,
            search_config=search_config,
            update_config=update_config,
            replication=replication,
            shortcut_capacity=shortcut_capacity,
        )

    # -- population ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pgrid)

    def addresses(self) -> list[Address]:
        """Sorted addresses of all peers."""
        return self.pgrid.addresses()

    def seed_index(self, items: Iterable[tuple[DataItem, Address]]) -> int:
        """Bootstrap a consistent index outside the protocol (experiments)."""
        return self.pgrid.seed_index(list(items))

    def replicas_for(self, key: str) -> list[Address]:
        """Ground-truth replica set for *key*."""
        return self.pgrid.replicas_for_key(key)

    # -- replication (query-load-driven balancing) --------------------------------------

    def _drop_batch_engine(self) -> None:
        """Invalidate the cached batch-plane snapshot (balancer listener)."""
        self._batch_engine = None
        self._batch_index = {}

    def _on_replica_conversion(self, address: Address, old_path: str, new_path: str) -> None:
        """Drop shortcuts pointing at a converted peer (balancer listener).

        The peer stays online but answers for a different replica group,
        so every cached shortcut naming it — object core and array core —
        is stale at once.
        """
        if self.shortcut_engine is not None:
            self.shortcut_engine.invalidate_responder(address)
        if self._array_shortcuts is not None:
            index = self._batch_index.get(address)
            if index is not None:
                self._array_shortcuts.invalidate_responder(index)

    def _observe_search(self, key: str) -> None:
        """Credit one query against *key*'s replica group.

        The engine driver feeds the tracker through the probe's
        ``on_search_end`` hook; the node/async drivers and the batch
        query plane do not fire per-query probe hooks, so their service
        wrappers call this instead.  No-op without replication.
        """
        if self.load_tracker is not None:
            self.load_tracker.observe(self._path_resolver(key))

    def rebalance(
        self, *, meetings: int = 64, rounds: int = 1, scheduler=None
    ) -> dict[str, int]:
        """Run balancing meetings and return the stats delta.

        Drives the Fig. 3 exchange protocol (with the balancer attached)
        over ``rounds`` × ``meetings`` uniform random pairings — the
        anti-entropy meetings a live grid performs anyway, which is where
        the Spiral-Walk-style balancer acts.  ``scheduler`` (anything
        with ``next_pair()``) overrides the default
        :class:`~repro.sim.meetings.UniformMeetings` over the grid RNG.
        Requires ``replication=`` to have been set.
        """
        if self.balancer is None:
            raise InvalidConfigError(
                "rebalance() requires the grid to be built with replication="
            )
        from repro.core.exchange import ExchangeEngine
        from repro.sim.meetings import UniformMeetings

        if self._rebalance_engine is None:
            self._rebalance_engine = ExchangeEngine(
                self.pgrid, probe=self.probe, balancer=self.balancer
            )
        if scheduler is None:
            scheduler = UniformMeetings(self.pgrid)
        before = self.balancer.stats.snapshot()
        for _ in range(rounds):
            for _ in range(meetings):
                address1, address2 = scheduler.next_pair()
                self._rebalance_engine.meet(address1, address2)
        after = self.balancer.stats.snapshot()
        return {name: after[name] - before[name] for name in after}

    # -- batch query plane (array core) -------------------------------------------------

    def batch_query_engine(self, *, refresh: bool = False, chunk: int = 8192):
        """The vectorized query plane over this grid (requires numpy).

        Lazily bridges the current routing tables into a
        :class:`~repro.fast.BatchQueryEngine` snapshot and caches it;
        pass ``refresh=True`` after mutating the grid (joins, departures,
        repair) to re-bridge.  The engine draws from its own numpy
        streams seeded off the grid RNG: deterministic per grid seed and
        statistically equivalent to the object engines, not
        bit-identical (see ``repro.fast.query``).
        """
        if refresh or self._batch_engine is None:
            from repro.fast import ArrayGrid, BatchQueryEngine

            agrid = ArrayGrid.from_pgrid(self.pgrid)
            self._batch_engine = BatchQueryEngine.from_arraygrid(
                agrid,
                max_messages=self.search_config.max_messages,
                chunk=chunk,
                probe=self.probe,
            )
            self._batch_index = {
                address: index
                for index, address in enumerate(self._batch_engine.addresses)
            }
            if self._array_shortcuts is not None:
                self._batch_engine.shortcuts = self._array_shortcuts
        return self._batch_engine

    def snapshot(self, *, p_online: float = 1.0):
        """Export the current grid state as a shared-memory
        :class:`~repro.fast.GridSnapshot` (requires numpy).

        The returned snapshot is owned by the caller: ship its
        :meth:`~repro.fast.GridSnapshot.ref` into parallel sweeps instead
        of pickling the grid, and ``close()``/``unlink()`` it (or use it
        as a context manager) when done.
        """
        from repro.fast import ArrayGrid, GridSnapshot

        return GridSnapshot.from_arraygrid(
            ArrayGrid.from_pgrid(self.pgrid), p_online=p_online
        )

    def search_many(
        self, keys: list[str], starts: list[Address], *, core: str = "array"
    ):
        """Resolve one search per ``(key, start)`` pair.

        ``core="array"`` runs all pairs through the batch query plane in
        vectorized waves and returns a
        :class:`~repro.fast.BatchSearchResult` (dense peer indices; map
        responders through ``batch_query_engine().addresses``);
        ``core="object"`` loops the reference engine and returns a
        ``list[SearchResult]`` — same costs, one result object per pair.
        """
        if core == "object":
            return [self.engine.query_from(start, key)
                    for key, start in zip(keys, starts)]
        if core != "array":
            raise InvalidConfigError(
                f"unknown core {core!r}: expected one of {', '.join(QUERY_CORES)}"
            )
        engine = self.batch_query_engine()
        index = self._batch_index
        result = engine.search_many(keys, [index[start] for start in starts])
        if self.load_tracker is not None:
            for key in keys:
                self._observe_search(key)
        return result

    # -- direct operations (engine driver, no service needed) --------------------------

    def search(
        self, key: str, *, start: Address = 0, core: str = "object"
    ) -> SearchResult:
        """One Fig. 2 depth-first search from *start*.

        ``core="array"`` resolves it through the batch query plane
        instead of the object engine — useful to spot-check the bridged
        snapshot; for throughput use :meth:`search_many`, which is where
        the vectorization pays.  With ``shortcut_capacity`` set, both
        cores consult their per-initiator shortcut cache first.
        """
        if core == "object":
            if self.shortcut_engine is not None:
                return self.shortcut_engine.query_from(start, key)
            return self.engine.query_from(start, key)
        if core != "array":
            raise InvalidConfigError(
                f"unknown core {core!r}: expected one of {', '.join(QUERY_CORES)}"
            )
        engine = self.batch_query_engine()
        batch = engine.search_many([key], [self._batch_index[start]])
        self._observe_search(key)
        found = bool(batch.found[0])
        responder = (
            engine.addresses[int(batch.responder[0])] if found else None
        )
        return SearchResult(
            query=key,
            start=start,
            found=found,
            responder=responder,
            messages=int(batch.messages[0]),
            failed_attempts=int(batch.failed_attempts[0]),
        )

    def search_range(
        self,
        low: str,
        high: str,
        *,
        start: Address = 0,
        recbreadth: int = 2,
        core: str = "object",
    ) -> RangeSearchResult:
        """Range query over ``[low, high]`` from *start*.

        ``core="array"`` resolves the canonical cover through the batch
        query plane's vectorized range kernel instead of the object
        engine — same cover prefixes and accounting scheme, statistically
        equivalent reach (both cores' enumeration walks are RNG-order
        dependent; see ``repro.fast.query.search_range_many``).
        """
        if core == "object":
            return self.engine.query_range(start, low, high, recbreadth=recbreadth)
        if core != "array":
            raise InvalidConfigError(
                f"unknown core {core!r}: expected one of {', '.join(QUERY_CORES)}"
            )
        engine = self.batch_query_engine()
        batch = engine.search_range_many(
            [low], [high], [self._batch_index[start]], recbreadth=recbreadth
        )
        self._observe_search(low)
        responders = [engine.addresses[int(i)] for i in batch.responders(0)]
        return RangeSearchResult(
            low=low,
            high=high,
            cover=list(batch.covers[0]),
            responders=responders,
            data_refs=list(batch.data_refs[0]),
            messages=int(batch.messages[0]),
            failed_attempts=int(batch.failed_attempts[0]),
        )

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        recbreadth: int | None = None,
        repetition: int | None = None,
    ) -> UpdateResult:
        """Publish (or re-publish) *key* stored at *holder* from *start*."""
        return self.updates.publish(
            start,
            DataItem(key=key, value=value),
            holder,
            strategy=strategy,
            repetition=repetition,
            recbreadth=recbreadth,
            version=version,
        )

    # -- drivers ----------------------------------------------------------------------

    def serve(
        self,
        driver: str = "engine",
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
        mailbox_size: int = 64,
    ):
        """Serve this grid behind one of the three drivers.

        Returns a context-managed service with a uniform synchronous
        ``search(key, *, start)`` / ``update(key, holder, ...)`` surface;
        ``retry``/``healer``/``config`` default to this grid's own.
        On equal grids all three drivers return identical results with
        identical cost counters.
        """
        retry = retry if retry is not None else self.retry
        healer = healer if healer is not None else self.healer
        config = config or self.search_config
        if driver == "engine":
            return EngineService(self)
        if driver == "node":
            return NodeService(
                self, retry=retry, healer=healer, config=config
            )
        if driver == "async":
            return AsyncService(
                self,
                retry=retry,
                healer=healer,
                config=config,
                mailbox_size=mailbox_size,
            )
        raise InvalidConfigError(
            f"unknown driver {driver!r}: expected one of {', '.join(DRIVERS)}"
        )


def _outcome_to_result(key: str, start: Address, outcome: NodeSearchOutcome) -> SearchResult:
    """Normalize a node-driver outcome to the engines' result type."""
    return SearchResult(
        query=key,
        start=start,
        found=outcome.found,
        responder=outcome.responder,
        messages=outcome.messages_sent,
        failed_attempts=outcome.failed_attempts,
        data_refs=list(outcome.data_refs),
        retry_delay=outcome.retry_delay,
    )


class EngineService:
    """The ``"engine"`` driver: direct in-process execution."""

    driver = "engine"

    def __init__(self, grid: Grid) -> None:
        self._grid = grid

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Nothing to release for the in-process driver."""

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        return self._grid.engine.query_from(start, key)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        return self._grid.update(
            key, holder, start=start, version=version, value=value,
            recbreadth=recbreadth,
        )


class NodeService:
    """The ``"node"`` driver: one message-driven node per peer."""

    driver = "node"

    def __init__(
        self,
        grid: Grid,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
    ) -> None:
        self._grid = grid
        self.transport = LocalTransport(grid.pgrid, probe=grid.probe)
        self.nodes: dict[Address, PGridNode] = attach_nodes(
            grid.pgrid, self.transport, retry=retry, healer=healer, config=config
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Unregister every node so the grid can be served again."""
        for address in list(self.nodes):
            self.transport.unregister(address)
        self.nodes.clear()

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        outcome = self.nodes[start].search(key)
        self._grid._observe_search(key)
        return _outcome_to_result(key, start, outcome)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        if recbreadth is None:
            recbreadth = self._grid.update_config.recbreadth
        self._grid.pgrid.peer(holder).store.store_item(DataItem(key=key, value=value))
        ref = DataRef(key=key, holder=holder, version=version)
        result = self.nodes[start].publish(ref, recbreadth=recbreadth)
        self._grid._observe_search(key)
        return result


class AsyncService:
    """The ``"async"`` driver: an :class:`~repro.aio.AsyncSwarm` on a
    private event loop, driven synchronously per operation.

    For genuinely concurrent workloads use :class:`repro.aio.AsyncSwarm`
    directly; this service exists so the facade can expose all three
    drivers behind one synchronous surface.
    """

    driver = "async"

    def __init__(
        self,
        grid: Grid,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
        mailbox_size: int = 64,
    ) -> None:
        from repro.aio.swarm import AsyncSwarm

        self._grid = grid
        self._loop = asyncio.new_event_loop()
        self.swarm = AsyncSwarm(
            grid.pgrid,
            retry=retry,
            healer=healer,
            config=config,
            probe=grid.probe,
            mailbox_size=mailbox_size,
        )
        self._loop.run_until_complete(self.swarm.start())

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the swarm, release its mailboxes, close the loop."""
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self.swarm.stop())
        for address in list(self.swarm.nodes):
            self.swarm.transport.unregister(address)
        self.swarm.nodes.clear()
        self._loop.close()

    def run(self, coroutine):
        """Run one coroutine on the service's private loop."""
        return self._loop.run_until_complete(coroutine)

    def search(self, key: str, *, start: Address = 0) -> SearchResult:
        outcome = self.run(self.swarm.search(start, key))
        self._grid._observe_search(key)
        return _outcome_to_result(key, start, outcome)

    def update(
        self,
        key: str,
        holder: Address,
        *,
        start: Address = 0,
        version: int = 0,
        value=None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        if recbreadth is None:
            recbreadth = self._grid.update_config.recbreadth
        self._grid.pgrid.peer(holder).store.store_item(DataItem(key=key, value=value))
        ref = DataRef(key=key, holder=holder, version=version)
        result = self.run(self.swarm.update(start, ref, recbreadth=recbreadth))
        self._grid._observe_search(key)
        return result
