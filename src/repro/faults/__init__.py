"""Fault injection, retry policies, and routing self-repair.

The resilience layer for the §4 robustness claims: declarative seeded
:class:`FaultPlan`\\ s executed by a :class:`FaultInjector` over the
simulated transport, :class:`RetryPolicy` redundancy-in-time threaded
through the engines, and contact-driven :class:`RefHealer` repair of dead
routing references.  ``experiments/resilience.py`` ties the three together
against the analytic curve ``(1 - (1 - p)^refmax)^k``.
"""

from repro.faults.inject import FaultInjector, FaultOracle, FaultStats
from repro.faults.plan import FaultPlan
from repro.faults.repair import HealStats, RefHealer
from repro.faults.retry import NO_RETRY, RetryOutcome, RetryPolicy, send_with_retry

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultOracle",
    "FaultStats",
    "RetryPolicy",
    "RetryOutcome",
    "NO_RETRY",
    "send_with_retry",
    "RefHealer",
    "HealStats",
]
