"""Retry policy: bounded attempts, exponential backoff, per-operation deadline.

The paper's reliability story (§4) is *redundancy in space* — ``refmax``
references per level so that one offline peer never dooms a search.
:class:`RetryPolicy` adds the complementary *redundancy in time*: under the
per-contact availability model (§2), re-contacting the same peer is an
independent coin flip, so ``attempts`` tries lift the effective per-contact
success from ``p`` to ``1 - (1 - p)^attempts`` and eq. (3) becomes
``(1 - (1 - p)^(attempts * refmax))^k`` — validated empirically by
``experiments/resilience.py``.

The policy is pure data: engines consult :meth:`delay_before` /
``deadline`` themselves (see :class:`repro.core.search.SearchEngine`), and
:func:`send_with_retry` wraps the transport path for message-driven nodes.
Backoff delays are *simulated* time — they are accounted, never slept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigError, PeerOfflineError, TransportError

__all__ = ["RetryPolicy", "RetryOutcome", "NO_RETRY", "send_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try one failing contact before giving up.

    ``attempts``
        Total contact attempts per target (1 = the bare protocol, no retry).
    ``base_delay`` / ``backoff_factor`` / ``max_delay``
        Backoff before retry *n* (n >= 2) is
        ``min(base_delay * backoff_factor^(n-2), max_delay)`` simulated
        time units.
    ``deadline``
        Optional cap on the *accumulated* backoff per operation (one
        search / one update propagation); once spent, remaining retries
        are forfeited and the operation degrades gracefully instead of
        stalling.
    """

    attempts: int = 3
    base_delay: float = 1.0
    backoff_factor: float = 2.0
    max_delay: float = 60.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise InvalidConfigError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0:
            raise InvalidConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff_factor < 1.0:
            raise InvalidConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay < self.base_delay:
            raise InvalidConfigError(
                f"max_delay {self.max_delay} must be >= base_delay {self.base_delay}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidConfigError(
                f"deadline must be > 0 or None, got {self.deadline}"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff before making *attempt* (2-based; attempt 1 is free)."""
        if attempt < 2:
            raise ValueError(f"attempt must be >= 2, got {attempt}")
        return min(
            self.base_delay * self.backoff_factor ** (attempt - 2), self.max_delay
        )

    def schedule(self) -> list[float]:
        """The full backoff schedule: one delay per retry after the first try."""
        return [self.delay_before(attempt) for attempt in range(2, self.attempts + 1)]

    def total_backoff(self) -> float:
        """Worst-case backoff one fully-failing target costs (pre-deadline)."""
        return sum(self.schedule())

    def effective_availability(self, p_online: float) -> float:
        """Per-contact success probability after retries: ``1-(1-p)^attempts``.

        Under the §2 per-contact availability model each retry is an
        independent coin; this is what the resilience experiment plugs
        into eq. (3) as the retry-adjusted ``p``.
        """
        if not 0.0 <= p_online <= 1.0:
            raise ValueError(f"p_online must be in [0, 1], got {p_online}")
        return 1.0 - (1.0 - p_online) ** self.attempts


#: The bare protocol: one attempt, no backoff (used as an explicit default).
NO_RETRY = RetryPolicy(attempts=1, base_delay=0.0, backoff_factor=1.0, max_delay=0.0)


@dataclass
class RetryOutcome:
    """What one retried send cost and whether it got through."""

    reply: object | None
    attempts: int
    backoff: float
    gave_up: bool


def send_with_retry(transport, message, policy: RetryPolicy | None = None) -> RetryOutcome:
    """Send *message* over *transport*, retrying per *policy*.

    *transport* is anything with a ``send(message)`` raising
    :class:`PeerOfflineError` / :class:`TransportError` on failure (a
    :class:`~repro.net.transport.LocalTransport` or a
    :class:`~repro.faults.inject.FaultInjector` wrapping one).  Returns a
    :class:`RetryOutcome` instead of raising: exhausting the policy is
    graceful degradation, not an error.
    """
    policy = policy or NO_RETRY
    backoff = 0.0
    attempt = 0
    while attempt < policy.attempts:
        if attempt > 0:
            delay = policy.delay_before(attempt + 1)
            if policy.deadline is not None and backoff + delay > policy.deadline:
                break
            backoff += delay
        attempt += 1
        try:
            reply = transport.send(message)
        except (PeerOfflineError, TransportError):
            continue
        return RetryOutcome(reply=reply, attempts=attempt, backoff=backoff, gave_up=False)
    return RetryOutcome(reply=None, attempts=attempt, backoff=backoff, gave_up=True)
