"""Deterministic fault injection over the simulated transport and oracle.

:class:`FaultInjector` wraps a :class:`~repro.net.transport.LocalTransport`
(or anything with its interface) and executes a
:class:`~repro.faults.plan.FaultPlan`: extra message drops, added latency,
peer crashes with bounded downtime, and stale-routing-reference corruption.
It also exposes the crash state (plus the plan's per-contact availability)
as an :class:`~repro.core.grid.OnlineOracle` via :meth:`oracle` /
:meth:`install_oracle`, so the engine-level algorithms — which consult
``grid.is_online`` rather than the transport — see exactly the same fault
world as the message-driven nodes.  The injector's oracle *composes* with
whatever oracle the grid already has (e.g. a
:class:`~repro.sim.churn.BernoulliChurn`): a peer is online iff it is not
crashed, survives the plan's availability coin, and the inner model agrees.

Every random decision draws from a named stream derived from the plan seed
(:mod:`repro.sim.rng`), never from the grid's RNG: injecting faults cannot
perturb the algorithms' own randomness, and an empty plan draws nothing at
all (bit-identical to no injector — see ``tests/faults/test_transparency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PeerOfflineError, UnknownPeerError
from repro.faults.plan import FaultPlan
from repro.obs.probe import Probe
from repro.sim import rng as rngmod

__all__ = ["FaultInjector", "FaultOracle", "FaultStats"]

Address = int

#: Offset added to the largest live address when fabricating dangling
#: (stale) reference targets — guaranteed never to collide with a peer.
_STALE_ADDRESS_OFFSET = 1_000_000


@dataclass
class FaultStats:
    """Tally of every fault the injector actually fired."""

    injected_drops: int = 0
    injected_latency: float = 0.0
    crashes: int = 0
    restarts: int = 0
    stale_refs_injected: int = 0
    crashed_contacts: int = 0
    availability_misses: int = 0
    stale_log: list[tuple[Address, int, Address]] = field(default_factory=list)

    def snapshot(self) -> dict[str, object]:
        """Plain-dict copy for experiment records."""
        return {
            "injected_drops": self.injected_drops,
            "injected_latency": self.injected_latency,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "stale_refs_injected": self.stale_refs_injected,
            "crashed_contacts": self.crashed_contacts,
            "availability_misses": self.availability_misses,
        }


class FaultInjector:
    """Transport wrapper + availability oracle executing one fault plan.

    Implements the :class:`~repro.net.transport.LocalTransport` interface
    (``send`` / ``try_send`` / ``register`` / ``unregister`` /
    ``is_reachable`` / ``count`` / ``stats``), so message-driven nodes can
    be attached to the injector exactly as they would to the bare
    transport.
    """

    def __init__(
        self,
        transport,
        plan: FaultPlan | None = None,
        *,
        probe: Probe | None = None,
    ) -> None:
        self.transport = transport
        self.plan = plan or FaultPlan()
        self.probe = probe
        self.fault_stats = FaultStats()
        # Crashed peers -> remaining downtime in contact attempts
        # (None = down until an explicit restart()).
        self._crashed: dict[Address, int | None] = {}
        seed = self.plan.seed
        self._drop_rng = rngmod.derive(seed, "faults-drop")
        self._crash_rng = rngmod.derive(seed, "faults-crash")
        self._stale_rng = rngmod.derive(seed, "faults-stale")
        self._select_rng = rngmod.derive(seed, "faults-select")

    # -- LocalTransport interface -------------------------------------------------

    @property
    def grid(self):
        """The wrapped transport's grid."""
        return self.transport.grid

    @property
    def stats(self):
        """The wrapped transport's traffic counters (shared object)."""
        return self.transport.stats

    def register(self, address: Address, handler) -> None:
        self.transport.register(address, handler)

    def unregister(self, address: Address) -> None:
        self.transport.unregister(address)

    def is_reachable(self, address: Address) -> bool:
        """Registered, online, and not currently crashed (no downtime tick)."""
        if address in self._crashed:
            return False
        return self.transport.is_reachable(address)

    def count(self, kind) -> int:
        return self.transport.count(kind)

    def send(self, message):
        """Deliver *message* through the fault plan, then the transport.

        Fault order: crash check (the destination is simply gone), then the
        plan's drop coin, then real delivery; on successful delivery the
        plan may add latency, crash the destination, or go back and corrupt
        one of the *source's* routing references (a stale ref the sender
        will trip over later).
        """
        self.precheck(message)
        reply = self.transport.send(message)
        self.postcheck(message)
        return reply

    def precheck(self, message) -> None:
        """Pre-delivery fault gate for one message (crash, then drop coin).

        Shared by :meth:`send` and the async transport
        (:class:`repro.aio.transport.AsyncTransport`), so a fault plan
        behaves identically — same derived streams, same draw order —
        whichever substrate delivers the message.  Raises
        :class:`PeerOfflineError` / :class:`~repro.errors.TransportError`
        exactly as :meth:`send` would.
        """
        plan = self.plan
        if self._contact_crashed(message.destination):
            self.fault_stats.crashed_contacts += 1
            self.transport.stats.offline_failures += 1
            if self.probe is not None:
                self.probe.on_transport(
                    message.kind.value, message.source, message.destination, "crashed"
                )
            raise PeerOfflineError(message.destination)
        if plan.drop_probability and self._drop_rng.random() < plan.drop_probability:
            self.fault_stats.injected_drops += 1
            self.transport.stats.dropped += 1
            if self.probe is not None:
                self.probe.on_transport(
                    message.kind.value, message.source, message.destination, "dropped"
                )
            from repro.errors import TransportError

            raise TransportError(
                f"message {message.message_id} to {message.destination} "
                "dropped by fault plan"
            )

    def postcheck(self, message) -> float:
        """Post-delivery faults; returns the latency injected (if any).

        The latency is already accrued on the transport's simulated clock;
        the async transport additionally awaits it on its event-loop clock.
        """
        plan = self.plan
        latency = 0.0
        if plan.extra_latency:
            self.transport.stats.simulated_time += plan.extra_latency
            self.fault_stats.injected_latency += plan.extra_latency
            latency = plan.extra_latency
        if plan.crash_probability and self._crash_rng.random() < plan.crash_probability:
            self.crash(message.destination, downtime=plan.crash_downtime)
        if (
            plan.stale_ref_probability
            and self._stale_rng.random() < plan.stale_ref_probability
        ):
            self._inject_stale_ref(message.source)
        return latency

    def try_send(self, message):
        """Like :meth:`send` but returns ``None`` on any failure."""
        from repro.errors import TransportError

        try:
            return self.send(message)
        except (PeerOfflineError, TransportError):
            return None

    # -- crash / restart ----------------------------------------------------------

    @property
    def crashed(self) -> frozenset[Address]:
        """Peers currently down."""
        return frozenset(self._crashed)

    def crash(self, address: Address, *, downtime: int | None = None) -> None:
        """Take *address* down for *downtime* contact attempts (0/None = until
        :meth:`restart`).

        Raises :class:`~repro.errors.InvalidConfigError` if *address* is
        not a peer of the grid: a fault plan naming a nonexistent peer is
        a configuration bug, and silently no-opping it would let a typo'd
        plan report a fault-free run as resilience (same audit stance as
        the lossy-but-unseeded transport check).
        """
        self._require_peer(address, "crash")
        if address in self._crashed:
            return
        self._crashed[address] = downtime if downtime else None
        self.fault_stats.crashes += 1

    def restart(self, address: Address) -> None:
        """Bring *address* back up (no-op if it was not crashed).

        Like :meth:`crash`, an *address* outside the grid raises
        :class:`~repro.errors.InvalidConfigError` instead of silently
        doing nothing.
        """
        self._require_peer(address, "restart")
        if self._crashed.pop(address, _MISSING) is not _MISSING:
            self.fault_stats.restarts += 1

    def _require_peer(self, address: Address, action: str) -> None:
        if not self.grid.has_peer(address):
            from repro.errors import InvalidConfigError

            raise InvalidConfigError(
                f"fault plan cannot {action} peer {address!r}: "
                "no such peer in the grid"
            )

    def crash_random(self, fraction: float, *, downtime: int | None = None) -> list[Address]:
        """Crash a seeded random *fraction* of registered peers; returns them.

        The sample is drawn from the injector's own selection stream, so
        which peers die is a pure function of the plan seed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        population = self.grid.addresses()
        count = round(len(population) * fraction)
        victims = sorted(self._select_rng.sample(population, count))
        for address in victims:
            self.crash(address, downtime=downtime)
        return victims

    def _contact_crashed(self, address: Address) -> bool:
        """Whether a contact to *address* fails due to a crash (ticks downtime)."""
        remaining = self._crashed.get(address, _MISSING)
        if remaining is _MISSING:
            return False
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                del self._crashed[address]
                self.fault_stats.restarts += 1
            else:
                self._crashed[address] = remaining
        return True

    # -- stale routing references ----------------------------------------------------

    def inject_stale_refs(self, fraction: float) -> int:
        """Corrupt one routing reference on a random *fraction* of peers.

        Each victim gets one randomly chosen (level, slot) reference
        replaced by a dangling address, simulating a peer that moved or
        vanished while others still point at it.  Returns the number of
        references corrupted.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        population = self.grid.addresses()
        count = round(len(population) * fraction)
        corrupted = 0
        for address in sorted(self._select_rng.sample(population, count)):
            if self._inject_stale_ref(address):
                corrupted += 1
        return corrupted

    def _inject_stale_ref(self, address: Address) -> bool:
        """Replace one reference of *address* with a dangling target."""
        try:
            peer = self.grid.peer(address)
        except UnknownPeerError:
            return False
        slots = [
            (level, index)
            for level, refs in peer.routing.iter_levels()
            for index in range(len(refs))
        ]
        if not slots:
            return False
        level, index = slots[self._stale_rng.randrange(len(slots))]
        refs = peer.routing.refs(level)
        dead = max(self.grid.addresses(), default=0) + _STALE_ADDRESS_OFFSET
        dead += self._stale_rng.randrange(_STALE_ADDRESS_OFFSET)
        old = refs[index]
        refs[index] = dead
        peer.routing.set_refs(level, refs)
        self.fault_stats.stale_refs_injected += 1
        self.fault_stats.stale_log.append((address, level, old))
        return True

    # -- oracle composition -----------------------------------------------------------

    def oracle(self, inner=None) -> "FaultOracle":
        """An oracle composing this injector's faults over *inner*.

        *inner* defaults to the grid's current oracle, so churn models
        configured before the injector keep working underneath it.
        """
        return FaultOracle(
            self,
            inner if inner is not None else self.grid.online_oracle,
            availability=self.plan.availability,
            rng=rngmod.derive(self.plan.seed, "faults-availability"),
        )

    def install_oracle(self, inner=None) -> "FaultOracle":
        """Build :meth:`oracle` and install it as the grid's oracle."""
        composed = self.oracle(inner)
        self.grid.online_oracle = composed
        return composed


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


class FaultOracle:
    """Availability oracle: crashes, then the plan's coin, then the inner model.

    With ``availability=None`` and no crashed peers this is a transparent
    pass-through that draws nothing — attaching it cannot change an
    experiment (property-tested).
    """

    def __init__(self, injector: FaultInjector, inner, *, availability=None, rng=None) -> None:
        self._injector = injector
        self._inner = inner
        self._availability = availability
        self._rng = rng

    def is_online(self, address: Address) -> bool:
        if self._injector._contact_crashed(address):
            self._injector.fault_stats.crashed_contacts += 1
            return False
        if self._availability is not None and self._rng.random() >= self._availability:
            self._injector.fault_stats.availability_misses += 1
            return False
        return self._inner.is_online(address)
