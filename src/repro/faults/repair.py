"""Routing self-repair: evict repeatedly-dead references, refill from replicas.

The paper's routing tables are only ever *grown* (exchange, Fig. 3); nothing
removes a reference once its target departs for good.  Under churn that is
fine — §2 models absence as temporary — but under crashes and stale
references (GeoP2P's departure scenario, see PAPERS.md) a dead reference
costs a failed contact on every traversal forever.

:class:`RefHealer` is the contact-driven repair loop: the search and update
engines report each per-reference contact outcome
(:meth:`~RefHealer.record_failure` / :meth:`~RefHealer.record_success`); a
reference that fails ``evict_after`` times *consecutively* is evicted from
the owner's table and the slot refilled with a live peer from the same
complementary subtree, found via the dead peer's buddy list, the buddy
lists of surviving same-level references, or the grid's replica directory.
Repairs are instrumented through the standard
:meth:`repro.obs.probe.Probe.on_repair` hook, so the PR 1 metrics
vocabulary (``repair.*``) covers healer activity with no new plumbing.

The healer is deliberately *pessimistic about transients*: a single success
resets the failure counter, so ordinary churn (peer offline for one
contact) never triggers eviction at the default threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.probe import Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.grid import PGrid

__all__ = ["RefHealer", "HealStats"]

Address = int


@dataclass
class HealStats:
    """Tally of healer activity (also exported via ``repair.*`` metrics)."""

    failures_recorded: int = 0
    successes_recorded: int = 0
    evictions: int = 0
    refills: int = 0
    offline_refills: int = 0
    refill_failures: int = 0
    probes_sent: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy for experiment records."""
        return {
            "failures_recorded": self.failures_recorded,
            "successes_recorded": self.successes_recorded,
            "evictions": self.evictions,
            "refills": self.refills,
            "offline_refills": self.offline_refills,
            "refill_failures": self.refill_failures,
            "probes_sent": self.probes_sent,
        }


class RefHealer:
    """Evict a reference after ``evict_after`` consecutive contact failures.

    ``refill=False`` degrades to pure eviction (useful to isolate the two
    effects in experiments).  ``use_replica_directory`` controls whether the
    refill may fall back on :meth:`repro.core.grid.PGrid.replicas_for_key`
    — the simulator's global view — when no buddy-list candidate survives;
    a deployment would instead issue a search, but the candidate *set* is
    identical, so the resilience curves are unaffected.
    """

    def __init__(
        self,
        grid: "PGrid",
        *,
        evict_after: int = 3,
        refill: bool = True,
        use_replica_directory: bool = True,
        probe: Probe | None = None,
    ) -> None:
        if evict_after < 1:
            raise ValueError(f"evict_after must be >= 1, got {evict_after}")
        self.grid = grid
        self.evict_after = evict_after
        self.refill = refill
        self.use_replica_directory = use_replica_directory
        self.probe = probe
        self.stats = HealStats()
        self._failures: dict[tuple[Address, int, Address], int] = {}

    # -- contact outcome reporting ------------------------------------------------

    def record_success(self, owner: Address, level: int, ref: Address) -> None:
        """A contact through (*owner*, *level*, *ref*) got an answer."""
        self.stats.successes_recorded += 1
        self._failures.pop((owner, level, ref), None)

    def record_failure(self, owner: Address, level: int, ref: Address) -> bool:
        """A contact through (*owner*, *level*, *ref*) failed.

        Returns ``True`` if the failure crossed the threshold and the
        reference was evicted (callers should stop retrying it).
        """
        self.stats.failures_recorded += 1
        key = (owner, level, ref)
        count = self._failures.get(key, 0) + 1
        if count < self.evict_after:
            self._failures[key] = count
            return False
        self._failures.pop(key, None)
        self._evict(owner, level, ref)
        return True

    def pending_failures(self, owner: Address, level: int, ref: Address) -> int:
        """Current consecutive-failure count for one reference (tests)."""
        return self._failures.get((owner, level, ref), 0)

    # -- eviction + refill -----------------------------------------------------------

    def _evict(self, owner: Address, level: int, dead: Address) -> None:
        if not self.grid.has_peer(owner):
            return
        peer = self.grid.peer(owner)
        if not peer.routing.remove_ref(level, dead):
            return  # already gone (e.g. evicted via another owner's sweep)
        self.stats.evictions += 1
        added = 0
        probes = 0
        if self.refill:
            added, probes = self._refill(peer, level, dead)
        if self.probe is not None:
            self.probe.on_repair(
                owner, dead_refs_dropped=1, refs_added=added, messages=probes
            )

    def _refill(self, peer, level: int, dead: Address) -> tuple[int, int]:
        """Find a live replacement for the complementary subtree at *level*.

        Returns ``(refs_added, liveness_probes_sent)``.
        """
        if level > peer.depth:
            # A stale level deeper than the current path: nothing routes
            # through it, dropping was repair enough.
            return 0, 0
        target = self._target_prefix(peer, level)
        current = set(peer.routing.refs(level))
        probes = 0
        fallback: Address | None = None
        for candidate in self._candidates(peer, level, dead, target):
            if candidate == peer.address or candidate in current:
                continue
            if not self.grid.has_peer(candidate):
                continue
            if not self.grid.peer(candidate).path.startswith(target):
                continue
            probes += 1
            self.stats.probes_sent += 1
            if not self.grid.is_online(candidate):
                if fallback is None:
                    fallback = candidate
                continue
            if peer.routing.add_ref(level, candidate):
                self.stats.refills += 1
                return 1, probes
            break  # table full — the evicted slot was already re-taken
        else:
            # No candidate answered the liveness probe.  Under the §2
            # availability model "offline now" is transient, so install a
            # structurally valid replica anyway rather than permanently
            # shrinking the table (it will be re-evicted if truly dead).
            if fallback is not None and peer.routing.add_ref(level, fallback):
                self.stats.refills += 1
                self.stats.offline_refills += 1
                return 1, probes
        self.stats.refill_failures += 1
        return 0, probes

    @staticmethod
    def _target_prefix(peer, level: int) -> str:
        """Path prefix a valid level-*level* reference must carry (§2)."""
        bit = peer.path[level - 1]
        return peer.prefix(level - 1) + ("1" if bit == "0" else "0")

    def _candidates(self, peer, level: int, dead: Address, target: str):
        """Replacement candidates, cheapest source first, deterministic order.

        1. the dead peer's own buddies (co-replicas of the lost subtree),
        2. buddies of surviving same-level references,
        3. the replica directory for the target prefix (global fallback).
        Duplicates are yielded once, in first-seen order.
        """
        seen: set[Address] = set()
        if self.grid.has_peer(dead):
            for buddy in sorted(self.grid.peer(dead).buddies):
                if buddy not in seen:
                    seen.add(buddy)
                    yield buddy
        for ref in peer.routing.refs(level):
            if not self.grid.has_peer(ref):
                continue
            for buddy in sorted(self.grid.peer(ref).buddies):
                if buddy not in seen:
                    seen.add(buddy)
                    yield buddy
        if self.use_replica_directory:
            for address in self.grid.replicas_for_key(target):
                if address not in seen:
                    seen.add(address)
                    yield address
