"""Declarative fault plans.

A :class:`FaultPlan` says *what* to break — message drops, added latency,
peer crashes/restarts, stale routing references, per-contact availability —
without saying *how*; :class:`~repro.faults.inject.FaultInjector` executes
the plan deterministically from ``seed``-derived RNG streams, so a faulty
run is exactly replayable and composable with the churn models in
:mod:`repro.sim.churn` (the plan's ``availability`` multiplies on top of
whatever oracle the grid already has).

The empty plan (all defaults) is a strict no-op: an injector driving it
never consults its RNG streams and never perturbs the wrapped transport or
the grid — property-tested bit-identical in
``tests/faults/test_transparency.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import InvalidConfigError

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative specification of injected faults.

    ``seed``
        Master seed for every fault decision; independent named streams are
        derived per fault type (see :mod:`repro.sim.rng`), so e.g. enabling
        drops does not reshuffle which peers crash.
    ``drop_probability``
        Extra, independent per-message drop probability applied *before*
        delivery (on top of the transport's own loss model).
    ``extra_latency``
        Fixed simulated latency added to every delivered message.
    ``availability``
        Per-contact online probability applied by the injector's oracle on
        top of the grid's existing oracle (``None`` = leave availability to
        the grid).  This is the paper's §2 ``online: P -> [0, 1]`` model,
        expressed as a composable fault.
    ``crash_probability``
        Per-delivery probability that the *destination* peer crashes right
        after handling the message.
    ``crash_downtime``
        How many subsequent contact attempts a crashed peer misses before
        it restarts; ``0`` means it stays down until an explicit
        :meth:`~repro.faults.inject.FaultInjector.restart`.
    ``stale_ref_probability``
        Per-delivery probability that one routing reference of the *source*
        peer is silently corrupted to a dangling address — the "peer moved
        and nobody updated the reference" fault that routing self-repair
        (:class:`~repro.faults.repair.RefHealer`) exists to fix.
    """

    seed: int = 0
    drop_probability: float = 0.0
    extra_latency: float = 0.0
    availability: float | None = None
    crash_probability: float = 0.0
    crash_downtime: int = 0
    stale_ref_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "crash_probability", "stale_ref_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise InvalidConfigError(f"{name} must be in [0, 1), got {value}")
        if self.availability is not None and not 0.0 < self.availability <= 1.0:
            raise InvalidConfigError(
                f"availability must be in (0, 1] or None, got {self.availability}"
            )
        if self.extra_latency < 0:
            raise InvalidConfigError(
                f"extra_latency must be >= 0, got {self.extra_latency}"
            )
        if self.crash_downtime < 0:
            raise InvalidConfigError(
                f"crash_downtime must be >= 0, got {self.crash_downtime}"
            )

    def is_empty(self) -> bool:
        """Whether the plan injects nothing (the guaranteed no-op plan)."""
        return (
            self.drop_probability == 0.0
            and self.extra_latency == 0.0
            and self.availability is None
            and self.crash_probability == 0.0
            and self.stale_ref_probability == 0.0
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for experiment records and CLI echo."""
        return {
            "seed": self.seed,
            "drop_probability": self.drop_probability,
            "extra_latency": self.extra_latency,
            "availability": self.availability,
            "crash_probability": self.crash_probability,
            "crash_downtime": self.crash_downtime,
            "stale_ref_probability": self.stale_ref_probability,
        }
