"""D1 (§6 table): P-Grid vs. central server vs. flooding — measured.

The paper's §6 table is asymptotic: P-Grid stores ``O(log D)`` per peer and
answers queries in ``O(log N)`` messages, while a central server stores
``O(D)`` and serves ``O(N)`` query load, and Gnutella-style flooding costs
``O(N)`` messages *per query*.  This experiment measures all three
empirically over a sweep of community sizes and reports the per-node
storage and per-query message costs, making the crossover tangible.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.baselines.central import CentralIndexServer
from repro.baselines.flooding import GnutellaNetwork
from repro.baselines.interface import PGridSearchSystem
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.experiments.common import ExperimentResult
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.workload import UniformKeyWorkload, generate_items

EXPERIMENT_ID = "discussion_scaling"
CONSTRUCTION_SCALE_EXPERIMENT_ID = "construction_scale"


def _build_pgrid(n_peers: int, maxl: int, seed: int) -> PGrid:
    config = PGridConfig(maxl=maxl, refmax=3, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=rngmod.derive(seed, f"d1-grid-{n_peers}"))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(max_exchanges=3_000_000)
    return grid


def run(
    *,
    peer_counts: Sequence[int] = (128, 256, 512, 1024, 2048),
    items_per_peer: int = 4,
    queries: int = 300,
    seed: int = 6,
) -> ExperimentResult:
    """Measure query messages and per-node storage for all three systems."""
    rows: list[list[object]] = []
    for n_peers in peer_counts:
        maxl = max(2, int(math.log2(max(2, n_peers // 8))))
        key_length = maxl + 2
        item_rng = rngmod.derive(seed, f"d1-items-{n_peers}")
        query_rng = rngmod.derive(seed, f"d1-queries-{n_peers}")
        keys = UniformKeyWorkload(key_length, item_rng).keys(
            n_peers * items_per_peer
        )
        items = generate_items(keys)

        # -- P-Grid -----------------------------------------------------------
        grid = _build_pgrid(n_peers, maxl, seed)
        pgrid = PGridSearchSystem(grid, SearchEngine(grid))
        for index, item in enumerate(items):
            pgrid.publish(item, index % n_peers)

        # -- Central server ----------------------------------------------------
        central = CentralIndexServer()
        for index, item in enumerate(items):
            central.publish(item, index % n_peers)

        # -- Flooding ------------------------------------------------------------
        flood = GnutellaNetwork(
            n_peers,
            extra_edges_per_peer=3,
            rng=rngmod.derive(seed, f"d1-flood-{n_peers}"),
            default_ttl=max(4, maxl + 2),
        )
        for index, item in enumerate(items):
            flood.publish(item, index % n_peers)

        pgrid_messages = 0.0
        pgrid_found = 0
        flood_messages = 0.0
        flood_found = 0
        for _ in range(queries):
            start = query_rng.randrange(n_peers)
            key = query_rng.choice(keys)
            presult = pgrid.search(start, key)
            pgrid_messages += presult.messages
            pgrid_found += int(presult.found)
            fresult = flood.search(start, key)
            flood_messages += fresult.messages
            flood_found += int(fresult.found)

        rows.append(
            [
                n_peers,
                pgrid_messages / queries,
                pgrid_found / queries,
                pgrid.storage_per_node(),
                1,  # central: one message per query (to the server)
                queries,  # central server load for this query batch: O(N rate)
                central.storage_per_node(),
                flood_messages / queries,
                flood_found / queries,
                flood.storage_per_node(),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="P-Grid vs. central server vs. flooding (measured, §6)",
        headers=[
            "N",
            "pgrid msgs/query",
            "pgrid hit rate",
            "pgrid storage/peer",
            "central msgs/query",
            "central server load",
            "central storage",
            "flood msgs/query",
            "flood hit rate",
            "flood storage/peer",
        ],
        rows=rows,
        config={
            "peer_counts": list(peer_counts),
            "items_per_peer": items_per_peer,
            "queries": queries,
            "seed": seed,
        },
        notes=(
            "Expected shape: pgrid msgs/query grows ~log N and its per-peer "
            "storage ~log D; flooding msgs/query grows ~linearly with N "
            "(it must reach most peers); central storage grows linearly "
            "with D and its serving load with the query volume (O(N) for "
            "constant per-node query rate)."
        ),
    )


def run_construction_scale(
    *,
    peer_counts: Sequence[int] = (1_000, 4_000, 20_000, 100_000),
    refmax: int = 20,
    seed: int = 14,
    threshold_fraction: float = 0.985,
) -> ExperimentResult:
    """Construction cost and replica balance across engines and scales.

    Small points run both the object core and the vectorized batch
    engine so their costs can be compared side by side; points beyond
    the object-core ceiling (4k peers) run batch-only (gridless — the
    whole construction lives in numpy arrays, which is what makes the
    100k+ rows feasible at all).  Requires numpy; raises
    ``RuntimeError`` without it.
    """
    import time

    from repro.fast.batch import BatchGridBuilder

    object_ceiling = 4_000  # beyond this the object core dominates runtime
    rows: list[list[object]] = []
    for n_peers in peer_counts:
        # Size the key space so the converged grid keeps a Fig. 4-like
        # replica distribution (~2-25 peers per leaf path).
        maxl = max(4, int(math.log2(n_peers)) - 4)
        run_seed = rngmod.derive_seed(seed, f"construction-scale-{n_peers}")
        engines = ["object", "batch"] if n_peers <= object_ceiling else ["batch"]
        for engine in engines:
            config = PGridConfig(
                maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2
            )
            start = time.perf_counter()
            if engine == "object":
                grid = PGrid(config, rng=rngmod.derive(seed, f"cs-{n_peers}"))
                grid.add_peers(n_peers)
                report = GridBuilder(grid).build(
                    threshold_fraction=threshold_fraction,
                    max_exchanges=100_000_000,
                )
                histogram = grid.replication_histogram()
                mean_repl = sum(s * c for s, c in histogram.items()) / n_peers
                max_repl = max(histogram)
            else:
                builder = BatchGridBuilder(
                    n=n_peers, config=config, seed=run_seed
                )
                report = builder.build(
                    threshold_fraction=threshold_fraction,
                    max_exchanges=100_000_000,
                )
                sizes = builder.replication_sizes()
                mean_repl = float(sizes.mean())
                max_repl = int(sizes.max())
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    n_peers,
                    maxl,
                    engine,
                    report.converged,
                    report.exchanges,
                    report.exchanges_per_peer,
                    round(elapsed, 2),
                    round(report.exchanges / elapsed) if elapsed else None,
                    round(mean_repl, 2),
                    max_repl,
                ]
            )
    return ExperimentResult(
        experiment_id=CONSTRUCTION_SCALE_EXPERIMENT_ID,
        title="Construction scaling: object core vs. vectorized array core",
        headers=[
            "N",
            "maxl",
            "engine",
            "converged",
            "exchanges",
            "e/N",
            "seconds",
            "exch/s",
            "mean repl",
            "max repl",
        ],
        rows=rows,
        config={
            "peer_counts": list(peer_counts),
            "refmax": refmax,
            "seed": seed,
            "threshold_fraction": threshold_fraction,
        },
        notes=(
            "e/N stays near the paper's O(log N)-flavored growth while "
            "exch/s shows the array core's headroom: the batch engine "
            "sustains its throughput to 100k+ peers where the object "
            "core becomes CPU- and memory-bound.  Engines are not "
            "bit-comparable (different meeting interleavings); compare "
            "e/N and the replica balance, not exact exchange counts."
        ),
    )
