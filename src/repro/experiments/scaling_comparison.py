"""D1 (§6 table): P-Grid vs. central server vs. flooding — measured.

The paper's §6 table is asymptotic: P-Grid stores ``O(log D)`` per peer and
answers queries in ``O(log N)`` messages, while a central server stores
``O(D)`` and serves ``O(N)`` query load, and Gnutella-style flooding costs
``O(N)`` messages *per query*.  This experiment measures all three
empirically over a sweep of community sizes and reports the per-node
storage and per-query message costs, making the crossover tangible.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.baselines.central import CentralIndexServer
from repro.baselines.flooding import GnutellaNetwork
from repro.baselines.interface import PGridSearchSystem
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.experiments.common import ExperimentResult
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.workload import UniformKeyWorkload, generate_items

EXPERIMENT_ID = "discussion_scaling"


def _build_pgrid(n_peers: int, maxl: int, seed: int) -> PGrid:
    config = PGridConfig(maxl=maxl, refmax=3, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=rngmod.derive(seed, f"d1-grid-{n_peers}"))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(max_exchanges=3_000_000)
    return grid


def run(
    *,
    peer_counts: Sequence[int] = (128, 256, 512, 1024, 2048),
    items_per_peer: int = 4,
    queries: int = 300,
    seed: int = 6,
) -> ExperimentResult:
    """Measure query messages and per-node storage for all three systems."""
    rows: list[list[object]] = []
    for n_peers in peer_counts:
        maxl = max(2, int(math.log2(max(2, n_peers // 8))))
        key_length = maxl + 2
        item_rng = rngmod.derive(seed, f"d1-items-{n_peers}")
        query_rng = rngmod.derive(seed, f"d1-queries-{n_peers}")
        keys = UniformKeyWorkload(key_length, item_rng).keys(
            n_peers * items_per_peer
        )
        items = generate_items(keys)

        # -- P-Grid -----------------------------------------------------------
        grid = _build_pgrid(n_peers, maxl, seed)
        pgrid = PGridSearchSystem(grid, SearchEngine(grid))
        for index, item in enumerate(items):
            pgrid.publish(item, index % n_peers)

        # -- Central server ----------------------------------------------------
        central = CentralIndexServer()
        for index, item in enumerate(items):
            central.publish(item, index % n_peers)

        # -- Flooding ------------------------------------------------------------
        flood = GnutellaNetwork(
            n_peers,
            extra_edges_per_peer=3,
            rng=rngmod.derive(seed, f"d1-flood-{n_peers}"),
            default_ttl=max(4, maxl + 2),
        )
        for index, item in enumerate(items):
            flood.publish(item, index % n_peers)

        pgrid_messages = 0.0
        pgrid_found = 0
        flood_messages = 0.0
        flood_found = 0
        for _ in range(queries):
            start = query_rng.randrange(n_peers)
            key = query_rng.choice(keys)
            presult = pgrid.search(start, key)
            pgrid_messages += presult.messages
            pgrid_found += int(presult.found)
            fresult = flood.search(start, key)
            flood_messages += fresult.messages
            flood_found += int(fresult.found)

        rows.append(
            [
                n_peers,
                pgrid_messages / queries,
                pgrid_found / queries,
                pgrid.storage_per_node(),
                1,  # central: one message per query (to the server)
                queries,  # central server load for this query batch: O(N rate)
                central.storage_per_node(),
                flood_messages / queries,
                flood_found / queries,
                flood.storage_per_node(),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="P-Grid vs. central server vs. flooding (measured, §6)",
        headers=[
            "N",
            "pgrid msgs/query",
            "pgrid hit rate",
            "pgrid storage/peer",
            "central msgs/query",
            "central server load",
            "central storage",
            "flood msgs/query",
            "flood hit rate",
            "flood storage/peer",
        ],
        rows=rows,
        config={
            "peer_counts": list(peer_counts),
            "items_per_peer": items_per_peer,
            "queries": queries,
            "seed": seed,
        },
        notes=(
            "Expected shape: pgrid msgs/query grows ~log N and its per-peer "
            "storage ~log D; flooding msgs/query grows ~linearly with N "
            "(it must reach most peers); central storage grows linearly "
            "with D and its serving load with the query volume (O(N) for "
            "constant per-node query rate)."
        ),
    )
