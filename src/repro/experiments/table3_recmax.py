"""T3 (§5.1, third table): effect of the recursion bound ``recmax``.

N = 500, maxl = 6, refmax = 1.  Recursive exchanges raise the probability
that a meeting yields a successful specialization — but unbounded recursion
over-specializes subregions, so the cost curve is U-shaped with the optimum
near recmax = 2 (paper: e/N of 70.9 at recmax=0, 25.5 at recmax=2, rising
again beyond).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.experiments.table1_construction_scaling import construction_cost

EXPERIMENT_ID = "table3"

#: Paper values: recmax -> e.
PAPER_ROWS = {0: 35436, 1: 15377, 2: 12735, 3: 16595, 4: 18956, 5: 22426, 6: 25130}


def run(
    *,
    n_peers: int = 500,
    maxl: int = 6,
    refmax: int = 1,
    recmax_values: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    seed: int = 3,
    jobs: int | None = 1,
) -> ExperimentResult:
    """Reproduce T3: ``e`` and ``e/N`` per recursion bound."""
    points = [
        {"n_peers": n_peers, "maxl": maxl, "refmax": refmax,
         "recmax": recmax, "seed": seed}
        for recmax in recmax_values
    ]
    outcomes = run_experiment_points(construction_cost, points, jobs=jobs)
    rows: list[list[object]] = []
    best: tuple[int, int] | None = None
    for recmax, (exchanges, _converged) in zip(recmax_values, outcomes):
        rows.append(
            [recmax, exchanges, exchanges / n_peers, PAPER_ROWS.get(recmax)]
        )
        if best is None or exchanges < best[1]:
            best = (recmax, exchanges)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Construction cost vs. recmax (N={n_peers}, maxl={maxl})",
        headers=["recmax", "e", "e/N", "paper e"],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "recmax_values": list(recmax_values),
            "seed": seed,
            "optimal_recmax": best[0] if best else None,
        },
        notes=(
            "Expected shape: U-shaped cost with the optimum at a small "
            f"recursion bound (paper: 2; this run: {best[0] if best else '?'})."
        ),
    )
