"""Shared infrastructure for the paper-reproduction experiments.

Scale profiles
--------------
The §5.1 construction tables run at the paper's exact sizes — they are cheap
in this implementation.  The §5.2 experiments (Fig. 4, Fig. 5, table 6,
search reliability) use one shared grid that at the paper's size (N=20 000,
maxl=10, refmax=20) takes the authors ~10 h and us ~1–2 min to build; the
default profile scales it down (~4 000 peers) with the *shape-relevant
ratios preserved* (mean replication ≈ N/2^maxl, refmax=20 so eq. (3) gives
the same per-level survival).  Select a profile with::

    REPRO_SCALE=quick|scaled|paper pytest benchmarks/ --benchmark-only

Constructed §5.2 grids are cached as JSON snapshots under
``benchmarks/.cache`` and reused across benchmark runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.obs.metrics import MetricsRegistry
from repro.perf.parallel import merge_registries, parallel_starmap
from repro.report.csvout import write_csv, write_json
from repro.report.tables import render_table
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.persistence import load_grid, save_grid
from repro.sim.scenario import ScenarioMetrics, ScenarioSpec, run_scenario

SCALE_ENV_VAR = "REPRO_SCALE"

__all__ = [
    "SCALE_ENV_VAR",
    "Section52Profile",
    "ExperimentResult",
    "active_scale",
    "section52_profile",
    "build_section52_grid",
    "build_section52_array_engine",
    "build_section52_snapshot",
    "default_cache_dir",
    "gridship_state",
    "run_experiment_points",
    "run_scenario_trials",
    "run_snapshot_search_sweep",
]


@dataclass(frozen=True)
class Section52Profile:
    """Sizing of the shared §5.2 experiment grid."""

    name: str
    n_peers: int
    maxl: int
    refmax: int
    recmax: int
    recursion_fanout: int
    p_online: float
    n_searches: int
    n_updates: int
    queries_per_update: int
    threshold_fraction: float
    max_exchanges: int
    seed: int = 20020101  # the paper's year, for flavour

    @property
    def config(self) -> PGridConfig:
        """The grid configuration for this profile."""
        return PGridConfig(
            maxl=self.maxl,
            refmax=self.refmax,
            recmax=self.recmax,
            recursion_fanout=self.recursion_fanout,
        )

    @property
    def query_key_length(self) -> int:
        """§5.2 queries use keys one shorter than ``maxl`` (length 9 there)."""
        return self.maxl - 1

    def cache_key(self) -> str:
        """Stable identifier for snapshot caching."""
        return (
            f"s52-{self.name}-n{self.n_peers}-l{self.maxl}-r{self.refmax}"
            f"-c{self.recmax}-f{self.recursion_fanout}"
            f"-t{self.threshold_fraction}-s{self.seed}"
        )


_PROFILES: dict[str, Section52Profile] = {
    # Fast enough for a laptop test loop; shape only roughly preserved.
    "quick": Section52Profile(
        name="quick",
        n_peers=600,
        maxl=5,
        refmax=10,
        recmax=2,
        recursion_fanout=2,
        p_online=0.3,
        n_searches=1_000,
        n_updates=20,
        queries_per_update=5,
        threshold_fraction=0.985,
        max_exchanges=1_000_000,
    ),
    # Default: every ratio that drives the paper's §5.2 claims preserved:
    # mean replication ~ N / 2^maxl ≈ 15.6 (paper ≈ 19.5), refmax = 20 so
    # eq. (3)'s per-level survival matches, queries one bit short of maxl.
    "scaled": Section52Profile(
        name="scaled",
        n_peers=4_000,
        maxl=8,
        refmax=20,
        recmax=2,
        recursion_fanout=2,
        p_online=0.3,
        n_searches=10_000,
        n_updates=50,
        queries_per_update=10,
        threshold_fraction=0.985,
        max_exchanges=2_000_000,
    ),
    # The paper's exact §5.2 sizing.
    "paper": Section52Profile(
        name="paper",
        n_peers=20_000,
        maxl=10,
        refmax=20,
        recmax=2,
        recursion_fanout=2,
        p_online=0.3,
        n_searches=10_000,
        n_updates=100,
        queries_per_update=10,
        threshold_fraction=0.985,
        max_exchanges=8_000_000,
    ),
    # Beyond the paper: 5x its population, for the array core only —
    # building 100k peers as Python objects is infeasible in a test
    # loop, so use ``core="array"`` (gridless batch construction + the
    # vectorized query plane; requires numpy).
    "large": Section52Profile(
        name="large",
        n_peers=100_000,
        maxl=12,
        refmax=20,
        recmax=2,
        recursion_fanout=2,
        p_online=0.3,
        n_searches=10_000,
        n_updates=50,
        queries_per_update=10,
        threshold_fraction=0.985,
        max_exchanges=60_000_000,
    ),
}


def active_scale(default: str = "scaled") -> str:
    """The profile selected via ``REPRO_SCALE`` (validated)."""
    scale = os.environ.get(SCALE_ENV_VAR, default).strip().lower()
    if scale not in _PROFILES:
        raise ValueError(
            f"unknown {SCALE_ENV_VAR}={scale!r}; choose one of "
            f"{sorted(_PROFILES)}"
        )
    return scale


def section52_profile(scale: str | None = None) -> Section52Profile:
    """The §5.2 profile for *scale* (or the environment's choice)."""
    return _PROFILES[scale if scale is not None else active_scale()]


def default_cache_dir() -> Path:
    """Snapshot cache location (override with ``REPRO_CACHE_DIR``)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / ".cache"


def build_section52_grid(
    profile: Section52Profile | None = None,
    *,
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> PGrid:
    """Build (or load from cache) the shared §5.2 grid for *profile*.

    Construction runs failure-free (the paper's 30% availability governs
    the *search/update* phases; during construction the two meeting peers
    are by definition both online, and availability of third parties only
    throttles case-4 recursion — see EXPERIMENTS.md).  The returned grid has
    a fresh RNG stream derived from the profile seed; attach a churn oracle
    before running availability experiments.
    """
    profile = profile or section52_profile()
    cache_dir = cache_dir or default_cache_dir()
    cache_path = cache_dir / f"{profile.cache_key()}.json.gz"
    if use_cache and cache_path.exists():
        return load_grid(cache_path, rng=rngmod.derive(profile.seed, "post-build"))

    grid = PGrid(profile.config, rng=rngmod.derive(profile.seed, "construction"))
    grid.add_peers(profile.n_peers)
    GridBuilder(grid).build(
        threshold_fraction=profile.threshold_fraction,
        max_exchanges=profile.max_exchanges,
    )
    if use_cache:
        save_grid(grid, cache_path)
    grid.rng = rngmod.derive(profile.seed, "post-build")
    return grid


def build_section52_array_engine(
    profile: Section52Profile | None = None,
    *,
    p_online: float | None = None,
    probe: Any = None,
    chunk: int = 8192,
):
    """Build the §5.2 state gridless and wrap it in the batch query plane.

    The array-core twin of :func:`build_section52_grid`: a
    :class:`~repro.fast.BatchGridBuilder` constructs the routing tables
    as flat numpy arrays (no Python object per peer — this is what makes
    the ``large`` 100k-peer profile tractable) and the returned
    :class:`~repro.fast.BatchQueryEngine` resolves batched searches,
    updates and reads over them with the profile's availability baked in
    as ``p_online``.

    No snapshot cache: at 100k peers the gridless build takes about as
    long as loading a compressed snapshot would, and the flat state has
    no JSON persistence format.  Requires numpy (raises otherwise).
    The engine draws from its own numpy streams: results are
    deterministic per profile seed and statistically equivalent to the
    object core, not bit-identical (see ``repro.fast.query``).
    """
    from repro.fast import HAVE_NUMPY, BatchGridBuilder, BatchQueryEngine

    if not HAVE_NUMPY:
        raise RuntimeError(
            "core='array' requires numpy; use the object core instead"
        )
    profile = profile or section52_profile()
    builder = BatchGridBuilder(
        n=profile.n_peers,
        config=profile.config,
        seed=rngmod.derive_seed(profile.seed, "construction-batch"),
    )
    builder.build(
        threshold_fraction=profile.threshold_fraction,
        # The object profiles size max_exchanges for the object builder's
        # meeting schedule; the batched rounds need ~250/peer to converge.
        max_exchanges=max(profile.max_exchanges, 600 * profile.n_peers),
    )
    return BatchQueryEngine.from_batch_builder(
        builder,
        seed=rngmod.derive_seed(profile.seed, "post-build"),
        p_online=p_online if p_online is not None else profile.p_online,
        probe=probe,
        chunk=chunk,
    )


def build_section52_snapshot(
    profile: Section52Profile | None = None,
    *,
    p_online: float | None = None,
):
    """Build the §5.2 state once and export it as a shared-memory snapshot.

    Same construction seeds as :func:`build_section52_array_engine` (the
    two produce identical routing state), but instead of wrapping the
    arrays in a process-local engine the state is published as a
    :class:`~repro.fast.GridSnapshot`: sweeps hand its picklable
    :meth:`~repro.fast.GridSnapshot.ref` to worker trials, which attach
    the segment zero-copy instead of each unpickling a grid.  The caller
    owns the snapshot (``close()``/``unlink()`` or context manager).
    Requires numpy.
    """
    from repro.fast import HAVE_NUMPY

    if not HAVE_NUMPY:
        raise RuntimeError("snapshot sweeps require numpy")
    from repro.fast.batch import BatchGridBuilder
    from repro.fast.snapshot import GridSnapshot

    profile = profile or section52_profile()
    builder = BatchGridBuilder(
        n=profile.n_peers,
        config=profile.config,
        seed=rngmod.derive_seed(profile.seed, "construction-batch"),
    )
    builder.build(
        threshold_fraction=profile.threshold_fraction,
        max_exchanges=max(profile.max_exchanges, 600 * profile.n_peers),
    )
    return GridSnapshot.from_batch_builder(
        builder,
        p_online=p_online if p_online is not None else profile.p_online,
    )


def _run_snapshot_queries(
    engine: Any, seed: int, n_queries: int, key_length: int
) -> dict[str, Any]:
    """Resolve one batch of uniform random queries; pure numbers out.

    Shared by the snapshot-ref and grid-ship trial functions so their
    ``"results"`` payloads are bit-identical when the underlying arrays
    are — the sweep's equivalence gate compares exactly this dict.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    queries = rng.integers(0, 1 << key_length, size=n_queries, dtype=np.int64)
    lengths = np.full(n_queries, key_length, dtype=np.int64)
    starts = rng.integers(0, engine.n, size=n_queries, dtype=np.int64)
    result = engine.search_many((queries, lengths), starts)
    return {
        "found": int(result.found.sum()),
        "messages": int(result.messages.sum()),
        "failed": int(result.failed_attempts.sum()),
        "responder_checksum": int(result.responder[result.found].sum()),
    }


def _snapshot_search_trial(
    snapshot: Any, seed: int, n_queries: int, key_length: int
) -> dict[str, Any]:
    """One search trial against an attached snapshot (module-level for
    pickling; *snapshot* arrives as a resolved :class:`GridSnapshot` when
    the spec carried a :class:`~repro.fast.SnapshotRef`)."""
    from repro.fast.snapshot import fresh_attach_count

    engine = snapshot.batch_query_engine(seed=seed)
    results = _run_snapshot_queries(engine, seed, n_queries, key_length)
    return {
        "results": results,
        "worker": {"pid": os.getpid(), "fresh_attaches": fresh_attach_count()},
    }


def gridship_state(snapshot: Any) -> dict[str, Any]:
    """The pre-snapshot trial payload: the full grid arrays, copied out of
    the segment so the pickled spec ships them to every worker — the
    baseline :func:`run_snapshot_search_sweep` is benchmarked against."""
    import numpy as np

    return {
        "pb": np.array(snapshot.view("path_bits")),
        "pl": np.array(snapshot.view("path_len")),
        "refs": np.array(snapshot.view("refs")),
        "rl": np.array(snapshot.view("ref_len")),
        "n": snapshot.n,
        "config": snapshot.config,
        "p_online": snapshot.p_online,
    }


def _gridship_search_trial(
    state: dict[str, Any], seed: int, n_queries: int, key_length: int
) -> dict[str, Any]:
    """The pre-snapshot baseline: the full grid state rides inside the
    pickled trial spec.  Kept for the benchmark's bytes/speedup
    comparison; produces bit-identical ``"results"``."""
    from repro.fast.query import BatchQueryEngine

    engine = BatchQueryEngine(
        pb=state["pb"],
        pl=state["pl"],
        refs=state["refs"],
        rl=state["rl"],
        n=state["n"],
        config=state["config"],
        seed=seed,
        p_online=state["p_online"],
    )
    results = _run_snapshot_queries(engine, seed, n_queries, key_length)
    return {
        "results": results,
        "worker": {"pid": os.getpid(), "fresh_attaches": 0},
    }


def run_snapshot_search_sweep(
    snapshot: Any,
    *,
    trials: int,
    n_queries: int,
    jobs: int | None = 1,
    master_seed: int | None = None,
    key_length: int | None = None,
) -> list[dict[str, Any]]:
    """Fan *trials* independent search batches over the perf pool, shipping
    only the snapshot's handle.

    Each trial spec carries a :class:`~repro.fast.SnapshotRef` (a few
    hundred bytes) instead of the grid; workers attach the shared segment
    once per process and reuse it across trials.  Trial ``i`` uses seed
    ``derive_seed(master, "trial-i")``, so the ``"results"`` sections are
    bit-identical for any ``jobs`` (the ``"worker"`` sections — pid,
    attach counts — legitimately differ between serial and pooled runs).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    master = snapshot.config.maxl if master_seed is None else master_seed
    key_length = snapshot.config.maxl - 1 if key_length is None else key_length
    ref = snapshot.ref()
    specs = [
        {
            "snapshot": ref,
            "seed": rngmod.derive_seed(master, f"trial-{index}"),
            "n_queries": n_queries,
            "key_length": key_length,
        }
        for index in range(trials)
    ]
    return parallel_starmap(_snapshot_search_trial, specs, jobs=jobs)


# -- parallel trial execution -------------------------------------------------
#
# Every §5 sweep evaluates independent (parameter point, derived seed)
# trials; these helpers fan them out over repro.perf.parallel while keeping
# results bit-identical to a serial run (each point derives all randomness
# from its own arguments — see the determinism contract in that module).


def run_experiment_points(
    fn: Callable[..., Any],
    kwargs_list: Sequence[dict[str, Any]],
    *,
    jobs: int | None = 1,
) -> list[Any]:
    """Evaluate one experiment point per kwargs dict, in order.

    ``fn`` must be a module-level trial function (picklable) that derives
    its randomness from its arguments only.  ``jobs`` > 1 distributes the
    points over a process pool; the returned list order always matches
    *kwargs_list*.
    """
    return parallel_starmap(fn, kwargs_list, jobs=jobs)


def _scenario_trial(spec: ScenarioSpec) -> tuple[ScenarioMetrics, MetricsRegistry]:
    """One instrumented scenario run (module-level for pickling)."""
    from repro.obs.metrics import MetricsProbe

    probe = MetricsProbe()
    metrics = run_scenario(spec, probe=probe)
    return metrics, probe.registry


def run_scenario_trials(
    spec: ScenarioSpec,
    trials: int,
    *,
    jobs: int | None = 1,
    master_seed: int | None = None,
) -> tuple[list[ScenarioMetrics], MetricsRegistry]:
    """Run *trials* independent replays of *spec*, merging their metrics.

    Trial ``i`` runs with the seed ``derive_seed(master, "trial-i")``
    (*master* defaults to ``spec.seed``), so the trial set is a pure
    function of the master seed and the per-trial registries merge to the
    same snapshot whatever ``jobs`` is.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    master = spec.seed if master_seed is None else master_seed
    specs = [
        replace(spec, seed=rngmod.derive_seed(master, f"trial-{index}"))
        for index in range(trials)
    ]
    outcomes = parallel_starmap(
        _scenario_trial, [{"spec": trial_spec} for trial_spec in specs], jobs=jobs
    )
    metrics = [metrics for metrics, _registry in outcomes]
    merged = merge_registries(registry for _metrics, registry in outcomes)
    return metrics, merged


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows plus provenance."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[list[Any]]
    config: dict[str, Any]
    notes: str = ""
    extra_text: str = ""

    def to_text(self, *, float_digits: int = 2) -> str:
        """Human-readable rendering (table + optional figure text)."""
        parts = [
            render_table(
                self.headers,
                self.rows,
                title=f"[{self.experiment_id}] {self.title}",
                float_digits=float_digits,
            )
        ]
        if self.extra_text:
            parts.append(self.extra_text)
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)

    def save(self, directory: str | Path) -> None:
        """Persist as CSV (rows) + JSON (rows and provenance)."""
        directory = Path(directory)
        write_csv(directory / f"{self.experiment_id}.csv", self.headers, self.rows)
        write_json(
            directory / f"{self.experiment_id}.json",
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": list(self.headers),
                "rows": self.rows,
                "config": self.config,
                "notes": self.notes,
            },
        )
