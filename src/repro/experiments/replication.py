"""Replication-strategy ablation under Zipf query traffic (ROADMAP item 4).

The paper sizes replication statically (§4) assuming uniform queries;
this experiment measures what happens when traffic is Zipf-skewed and the
:mod:`repro.replication` balancer is allowed to adapt.  For each Zipf
exponent the same grid (identical build seed) is run under each strategy:

``static``
    the §4 baseline — the balancer is attached but inert, so the column
    doubles as the bit-identity control;
``sqrt``
    square-root replication targets from the measured load;
``adaptive``
    threshold expand/retract (Spiral-Walk style).

Protocol per point: build → warm-up queries (fills the EWMA tracker) →
alternating query/balancing-meeting rounds (where conversions happen) →
a frozen measurement phase (no meetings, so the topology is fixed) that
reports the found rate, the mean and p95 messages-to-hit, the hot
replica-group size, the max per-replica EWMA load and the conversion
count.  The expected shape: for exponents >= 1.0 the adaptive column's
p95 drops below static's — replicating the hot path turns most hot-key
queries into 0-message responsible-start hits, pushing the overall 95th
percentile down into the (cheaper) quantiles of the cold tail.  At
s = 0.8 the same churn *hurts* the tail: conversions leave stale inbound
references that cold queries pay for, and with only ~half the mass on
the hot path there is not enough hot traffic to compensate — the regime
boundary docs/REPLICATION.md discusses.

Keys are 64-bit (drawn by the sampled inverse-CDF Zipf workload): under
Zipf the fraction of traffic the single hottest leaf path absorbs is
``(key_length - maxl) / key_length`` at s = 1.0, so long keys are the
realistic hash-keyspace regime where one replica group saturates — with
16-bit keys the cold tail alone is heavier than 5% of traffic and no
replication policy could move the 95th percentile at all.

``main(["--check"])`` gates exactly that claim (the CI smoke gate behind
``make replication-smoke``); committed numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.replication import ReplicationConfig
from repro.sim import rng as rngmod

EXPERIMENT_ID = "replication"

HEADERS = [
    "zipf_s",
    "strategy",
    "found_rate",
    "messages_mean",
    "messages_p95",
    "hot_replicas",
    "max_load_per_replica",
    "conversions",
]

STRATEGIES = ("static", "sqrt", "adaptive")


@dataclass(frozen=True)
class ReplicationProfile:
    """One scale of the ablation."""

    name: str
    n_peers: int
    maxl: int
    refmax: int
    key_length: int
    exponents: tuple[float, ...]
    warmup_queries: int
    balance_rounds: int
    queries_per_round: int
    meetings_per_round: int
    measure_queries: int
    replicate_threshold: float = 1.0
    retract_floor: float = 0.25
    min_replicas: int = 2
    half_life: float = 64.0
    min_observations: int = 50
    max_replicas_fraction: float = 0.5
    #: --check: adaptive p95 must undercut static p95 by at least this
    #: many messages at every exponent >= 1.0.
    min_p95_improvement: float = 0.5
    #: --check: every strategy must keep at least this found rate.
    found_floor: float = 0.99
    seed: int = 2002


_PROFILES = {
    "tiny": ReplicationProfile(
        name="tiny",
        n_peers=48,
        maxl=4,
        refmax=3,
        key_length=32,  # > 24 bits: exercises the sampled Zipf workload
        exponents=(1.25,),
        warmup_queries=200,
        balance_rounds=4,
        queries_per_round=100,
        meetings_per_round=32,
        measure_queries=400,
    ),
    "smoke": ReplicationProfile(
        name="smoke",
        n_peers=128,
        maxl=5,
        refmax=4,
        key_length=64,
        exponents=(0.8, 1.0, 1.25),
        warmup_queries=400,
        balance_rounds=8,
        queries_per_round=150,
        meetings_per_round=64,
        measure_queries=2000,
    ),
    "fig4": ReplicationProfile(
        name="fig4",
        n_peers=600,
        maxl=5,
        refmax=5,
        key_length=64,
        exponents=(0.8, 1.0, 1.25),
        warmup_queries=800,
        balance_rounds=8,
        queries_per_round=300,
        meetings_per_round=150,
        measure_queries=3000,
    ),
    "large": ReplicationProfile(
        name="large",
        n_peers=4000,
        maxl=8,
        refmax=4,
        key_length=64,
        exponents=(1.0, 1.25),
        warmup_queries=2000,
        balance_rounds=10,
        queries_per_round=1000,
        meetings_per_round=800,
        measure_queries=5000,
    ),
}


def replication_profile(scale: str = "smoke") -> ReplicationProfile:
    """The named profile (``tiny``/``smoke``/``fig4``/``large``)."""
    try:
        return _PROFILES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}: expected one of {', '.join(_PROFILES)}"
        ) from None


def _percentile(values: list[int], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered) + 0.5) - 1))
    return float(ordered[rank])


def _replication_point(
    *,
    exponent: float,
    strategy: str,
    n_peers: int,
    maxl: int,
    refmax: int,
    key_length: int,
    warmup_queries: int,
    balance_rounds: int,
    queries_per_round: int,
    meetings_per_round: int,
    measure_queries: int,
    replicate_threshold: float,
    retract_floor: float,
    min_replicas: int,
    half_life: float,
    min_observations: int,
    max_replicas: int,
    build_seed: int,
    workload_seed: int,
) -> list:
    """One (exponent, strategy) cell (module-level so --jobs can pickle it)."""
    from repro.api import Grid
    from repro.sim.workload import ZipfKeyWorkload

    grid = Grid.build(
        peers=n_peers,
        maxl=maxl,
        refmax=refmax,
        seed=build_seed,
        replication=ReplicationConfig(
            strategy=strategy,
            replicate_threshold=replicate_threshold,
            retract_floor=retract_floor,
            min_replicas=min_replicas,
            half_life=half_life,
            min_observations=min_observations,
            max_replicas=max_replicas,
        ),
    )
    # Workload streams are derived from the *point* seed only, so every
    # strategy column of one exponent sees the identical key/start
    # sequences over an identically-built grid.
    key_rng = rngmod.derive(workload_seed, "keys")
    start_rng = rngmod.derive(workload_seed, "starts")
    workload = ZipfKeyWorkload(key_length, key_rng, exponent=exponent)
    addresses = grid.addresses()

    def run_queries(count: int) -> tuple[int, list[int]]:
        found = 0
        messages: list[int] = []
        for _ in range(count):
            result = grid.search(
                workload.next_key(), start=start_rng.choice(addresses)
            )
            if result.found:
                found += 1
                messages.append(result.messages)
        return found, messages

    run_queries(warmup_queries)
    for _ in range(balance_rounds):
        run_queries(queries_per_round)
        grid.rebalance(meetings=meetings_per_round)
    found, messages = run_queries(measure_queries)

    tracker = grid.load_tracker
    groups = grid.pgrid.replica_groups()
    hottest = tracker.hottest()
    hot_replicas = (
        len(groups.get(hottest[0], ())) if hottest is not None else 0
    )
    max_load = max(
        (tracker.load(path) / len(members) for path, members in groups.items()),
        default=0.0,
    )
    return [
        exponent,
        strategy,
        found / measure_queries if measure_queries else 0.0,
        sum(messages) / len(messages) if messages else 0.0,
        _percentile(messages, 0.95),
        hot_replicas,
        max_load,
        grid.balancer.stats.conversions,
    ]


def run(
    profile: ReplicationProfile | None = None,
    *,
    scale: str = "smoke",
    jobs: int = 1,
) -> ExperimentResult:
    """The full exponent x strategy sweep at one scale."""
    profile = profile or replication_profile(scale)
    max_replicas = max(
        2, int(profile.n_peers * profile.max_replicas_fraction)
    )
    points = []
    for exponent in profile.exponents:
        workload_seed = rngmod.derive_seed(
            profile.seed, f"workload-{exponent}"
        )
        for strategy in STRATEGIES:
            points.append(
                dict(
                    exponent=exponent,
                    strategy=strategy,
                    n_peers=profile.n_peers,
                    maxl=profile.maxl,
                    refmax=profile.refmax,
                    key_length=profile.key_length,
                    warmup_queries=profile.warmup_queries,
                    balance_rounds=profile.balance_rounds,
                    queries_per_round=profile.queries_per_round,
                    meetings_per_round=profile.meetings_per_round,
                    measure_queries=profile.measure_queries,
                    replicate_threshold=profile.replicate_threshold,
                    retract_floor=profile.retract_floor,
                    min_replicas=profile.min_replicas,
                    half_life=profile.half_life,
                    min_observations=profile.min_observations,
                    max_replicas=max_replicas,
                    build_seed=rngmod.derive_seed(
                        profile.seed, f"build-{exponent}"
                    ),
                    workload_seed=workload_seed,
                )
            )
    rows = run_experiment_points(_replication_point, points, jobs=jobs)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            "Replication strategies under Zipf traffic "
            f"({profile.n_peers} peers, maxl={profile.maxl}, "
            f"{profile.key_length}-bit keys)"
        ),
        headers=HEADERS,
        rows=rows,
        config={
            "profile": profile.name,
            "n_peers": profile.n_peers,
            "maxl": profile.maxl,
            "refmax": profile.refmax,
            "key_length": profile.key_length,
            "exponents": list(profile.exponents),
            "replicate_threshold": profile.replicate_threshold,
            "retract_floor": profile.retract_floor,
            "min_replicas": profile.min_replicas,
            "half_life": profile.half_life,
            "max_replicas": max_replicas,
            "min_p95_improvement": profile.min_p95_improvement,
            "found_floor": profile.found_floor,
            "seed": profile.seed,
        },
        notes=(
            "Same build seed and workload streams per exponent across "
            "strategies; measurement phase runs no meetings, so the "
            "reported costs are over a frozen topology."
        ),
    )


def check_deviations(result: ExperimentResult) -> list[str]:
    """The smoke gate: adaptive must beat static on p95 messages-to-hit
    for every exponent >= 1.0, without sacrificing the found rate."""
    config = result.config
    min_improvement = config["min_p95_improvement"]
    found_floor = config["found_floor"]
    violations: list[str] = []
    cells: dict[tuple[float, str], list] = {
        (row[0], row[1]): row for row in result.rows
    }
    for exponent in config["exponents"]:
        for strategy in STRATEGIES:
            row = cells.get((exponent, strategy))
            if row is None:
                violations.append(f"missing row: s={exponent} {strategy}")
                continue
            if row[2] < found_floor:
                violations.append(
                    f"s={exponent} {strategy}: found rate {row[2]:.4f} "
                    f"below floor {found_floor}"
                )
        static_row = cells.get((exponent, "static"))
        adaptive_row = cells.get((exponent, "adaptive"))
        if static_row is None or adaptive_row is None or exponent < 1.0:
            continue
        improvement = static_row[4] - adaptive_row[4]
        if improvement < min_improvement:
            violations.append(
                f"s={exponent}: adaptive p95 {adaptive_row[4]:.2f} vs "
                f"static {static_row[4]:.2f} — improvement {improvement:.2f} "
                f"below required {min_improvement}"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(_PROFILES), default="smoke"
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless adaptive beats static on p95 messages-to-hit "
        "for every exponent >= 1.0",
    )
    parser.add_argument(
        "--save", type=str, default=None, help="directory for CSV/JSON output"
    )
    args = parser.parse_args(argv)
    result = run(scale=args.scale, jobs=args.jobs)
    print(result.to_text())
    if args.save:
        result.save(args.save)
    if args.check:
        violations = check_deviations(result)
        if violations:
            for violation in violations:
                print(f"DEVIATION: {violation}")
            return 1
        print("replication gate: OK (adaptive beats static on p95)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
