"""Experiment runners — one per paper table/figure (see DESIGN.md).

Every module exposes ``run(...) -> ExperimentResult``; the benchmark suite
and the CLI are thin wrappers over these.
"""

from repro.experiments import (
    ablations,
    analysis_example,
    convergence,
    fig4_replicas,
    fig5_update_strategies,
    replication,
    resilience,
    scaling_comparison,
    search_reliability,
    table1_construction_scaling,
    table2_maxl,
    table3_recmax,
    table4_refmax,
    table6_tradeoff,
)
from repro.experiments.common import (
    ExperimentResult,
    Section52Profile,
    active_scale,
    build_section52_grid,
    default_cache_dir,
    section52_profile,
)

__all__ = [
    "ExperimentResult",
    "Section52Profile",
    "ablations",
    "active_scale",
    "analysis_example",
    "build_section52_grid",
    "convergence",
    "default_cache_dir",
    "fig4_replicas",
    "fig5_update_strategies",
    "replication",
    "resilience",
    "scaling_comparison",
    "search_reliability",
    "section52_profile",
    "table1_construction_scaling",
    "table2_maxl",
    "table3_recmax",
    "table4_refmax",
    "table6_tradeoff",
]
