"""Ablations beyond the paper's tables (DESIGN.md AB1–AB4).

Each probes a design choice §3/§6 discusses but does not evaluate:

AB1 — inserting the two case-4 peers into each other's routing tables
      (the paper only forwards them to referenced peers);
AB2 — search success vs. availability, validating eq. (3) against
      simulation across the whole availability range;
AB3 — Zipf-skewed workloads: where the §6 uniformity assumption breaks
      (query-load and index-storage imbalance);
AB4 — exchanging references at every shared level instead of only the
      deepest shared level ``lc``;
AB5 — data-driven splitting (§3's threshold hint): letting the data
      volume, not a global ``maxl``, decide how deep each region splits —
      the fix for AB3's imbalance;
AB6 — membership churn: peers failing and joining after construction,
      with and without reference repair;
AB7 — construction under availability: a time-driven meeting process with
      session churn, on the discrete-event kernel;
AB8 — query-adaptive shortcut caching (§6 "knowledge on query
      distribution"): initiator-local LRU of recent responders;
AB9 — native k-ary trie (§6 "extending the {0,1} alphabet") vs. the
      binary text reduction, on one word workload;
AB10 — proximity-aware reference retention and routing (§6 "knowledge on
      the network topology");
AB11 — meeting schedulers: the paper's uniform random pairs vs.
      prefix-biased and round-robin meeting processes.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.core.analysis import search_success_probability
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.membership import MembershipEngine
from repro.core.search import SearchEngine
from repro.core.storage import DataRef
from repro.experiments.common import ExperimentResult
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn
from repro.sim.metrics import RateAccumulator, gini
from repro.sim.workload import UniformKeyWorkload, ZipfKeyWorkload, generate_items


def _build(config: PGridConfig, n_peers: int, seed: int, tag: str) -> tuple[PGrid, int]:
    grid = PGrid(config, rng=rngmod.derive(seed, f"ab-{tag}"))
    grid.add_peers(n_peers)
    report = GridBuilder(grid).build(max_exchanges=4_000_000)
    return grid, report.exchanges


def _measure_search(
    grid: PGrid, *, p_online: float, key_length: int, n_searches: int, seed: int, tag: str
) -> tuple[float, float]:
    """(success rate, mean messages of successful searches)."""
    grid.online_oracle = BernoulliChurn(
        p_online, rngmod.derive(seed, f"ab-churn-{tag}")
    )
    engine = SearchEngine(grid)
    keys = UniformKeyWorkload(key_length, rngmod.derive(seed, f"ab-keys-{tag}"))
    starts = rngmod.derive(seed, f"ab-starts-{tag}")
    addresses = grid.addresses()
    acc = RateAccumulator()
    messages = 0
    hits = 0
    for _ in range(n_searches):
        result = engine.query_from(starts.choice(addresses), keys.next_key())
        acc.record(result.found)
        if result.found:
            messages += result.messages
            hits += 1
    return acc.rate, (messages / hits if hits else 0.0)


# -- AB1: mutual references in case 4 ------------------------------------------------


def run_case4_refs(
    *,
    n_peers: int = 1000,
    maxl: int = 6,
    refmax: int = 4,
    recmax: int = 2,
    fanout: int = 2,
    p_online: float = 0.3,
    n_searches: int = 2000,
    seed: int = 11,
) -> ExperimentResult:
    """AB1: does adding the case-4 pair as mutual references help?"""
    rows: list[list[object]] = []
    for mutual in (False, True):
        config = PGridConfig(
            maxl=maxl,
            refmax=refmax,
            recmax=recmax,
            recursion_fanout=fanout,
            mutual_refs_in_case4=mutual,
        )
        grid, exchanges = _build(config, n_peers, seed, f"ab1-{mutual}")
        density = grid.total_routing_refs() / max(
            1, sum(peer.depth for peer in grid.peers())
        )
        success, messages = _measure_search(
            grid,
            p_online=p_online,
            key_length=maxl - 1,
            n_searches=n_searches,
            seed=seed,
            tag=f"ab1-{mutual}",
        )
        rows.append(
            [
                "mutual refs" if mutual else "paper (forward only)",
                exchanges,
                density,
                success,
                messages,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_case4_refs",
        title="AB1: case-4 mutual reference insertion",
        headers=[
            "variant",
            "e",
            "refs per path bit",
            "search success",
            "avg messages",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "recmax": recmax,
            "fanout": fanout,
            "p_online": p_online,
            "n_searches": n_searches,
            "seed": seed,
        },
        notes=(
            "Mutual insertion fills routing tables faster (higher density), "
            "which should raise search success under churn at little or no "
            "extra construction cost."
        ),
    )


# -- AB2: availability sweep vs. eq. (3) -----------------------------------------------


def run_online_prob(
    *,
    n_peers: int = 1024,
    maxl: int = 7,
    refmax: int = 5,
    recmax: int = 2,
    fanout: int = 2,
    probabilities: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.7, 0.9),
    n_searches: int = 2000,
    seed: int = 12,
) -> ExperimentResult:
    """AB2: measured search success vs. the eq. (3) analytical bound."""
    config = PGridConfig(
        maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=fanout
    )
    grid, _exchanges = _build(config, n_peers, seed, "ab2")
    key_length = maxl - 1
    rows: list[list[object]] = []
    for p_online in probabilities:
        success, messages = _measure_search(
            grid,
            p_online=p_online,
            key_length=key_length,
            n_searches=n_searches,
            seed=seed,
            tag=f"ab2-{p_online}",
        )
        predicted = search_success_probability(p_online, refmax, key_length)
        rows.append([p_online, success, predicted, success - predicted, messages])
    return ExperimentResult(
        experiment_id="ablation_online_prob",
        title="AB2: search success vs. availability (simulation vs. eq. 3)",
        headers=[
            "p_online",
            "measured success",
            "eq.(3) bound",
            "delta",
            "avg messages",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "probabilities": list(probabilities),
            "n_searches": n_searches,
            "seed": seed,
        },
        notes=(
            "Expected shape: measured success tracks and dominates the "
            "eq.(3) bound (the bound ignores depth-first backtracking), "
            "with the gap largest at low availability."
        ),
    )


# -- AB3: skewed workloads ------------------------------------------------------------


def run_skew(
    *,
    n_peers: int = 1024,
    maxl: int = 7,
    refmax: int = 5,
    recmax: int = 2,
    fanout: int = 2,
    n_items: int = 4096,
    n_queries: int = 4000,
    zipf_exponent: float = 1.0,
    seed: int = 13,
) -> ExperimentResult:
    """AB3: load imbalance under uniform vs. Zipf-skewed workloads."""
    config = PGridConfig(
        maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=fanout
    )
    grid, _exchanges = _build(config, n_peers, seed, "ab3")
    key_length = maxl + 2
    rows: list[list[object]] = []
    for label, exponent in (("uniform", 0.0), (f"zipf({zipf_exponent})", zipf_exponent)):
        work_rng = rngmod.derive(seed, f"ab3-work-{label}")
        if exponent:
            workload = ZipfKeyWorkload(key_length, work_rng, exponent=exponent)
        else:
            workload = UniformKeyWorkload(key_length, work_rng)
        # Index storage imbalance: publish items, count leaf refs per peer.
        items = generate_items(workload.keys(n_items))
        fresh = PGrid(config, rng=rngmod.derive(seed, f"ab3-grid-{label}"))
        fresh.add_peers(n_peers)
        GridBuilder(fresh).build(max_exchanges=4_000_000)
        fresh.seed_index(
            [(item, index % n_peers) for index, item in enumerate(items)]
        )
        storage = [peer.store.ref_count for peer in fresh.peers()]
        # Query load imbalance: count answering-responder hits per peer.
        engine = SearchEngine(fresh)
        starts = rngmod.derive(seed, f"ab3-starts-{label}")
        addresses = fresh.addresses()
        load: Counter[int] = Counter()
        query_keys = workload.keys(n_queries)
        for key in query_keys:
            result = engine.query_from(starts.choice(addresses), key)
            if result.found and result.responder is not None:
                load[result.responder] += 1
        load_values = [load.get(address, 0) for address in addresses]
        rows.append(
            [
                label,
                gini(storage),
                max(storage),
                sum(storage) / len(storage),
                gini(load_values),
                max(load_values),
                sum(load_values) / len(load_values),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_skew",
        title="AB3: storage & query-load balance, uniform vs. Zipf keys",
        headers=[
            "workload",
            "storage gini",
            "max refs/peer",
            "mean refs/peer",
            "query-load gini",
            "max hits/peer",
            "mean hits/peer",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "n_items": n_items,
            "n_queries": n_queries,
            "zipf_exponent": zipf_exponent,
            "seed": seed,
        },
        notes=(
            "Expected shape: this P-Grid variant splits the key space "
            "data-agnostically, so Zipf keys concentrate index entries and "
            "query hits on the peers owning popular prefixes — higher gini "
            "and max/mean ratios than uniform (the §6 future-work gap)."
        ),
    )


# -- AB4: reference exchange at all shared levels ----------------------------------------


def run_ref_exchange(
    *,
    n_peers: int = 1000,
    maxl: int = 6,
    refmax: int = 4,
    recmax: int = 2,
    fanout: int = 2,
    p_online: float = 0.3,
    n_searches: int = 2000,
    seed: int = 14,
) -> ExperimentResult:
    """AB4: exchanging refs at all shared levels vs. only level ``lc``."""
    rows: list[list[object]] = []
    for all_levels in (False, True):
        config = PGridConfig(
            maxl=maxl,
            refmax=refmax,
            recmax=recmax,
            recursion_fanout=fanout,
            exchange_refs_all_levels=all_levels,
        )
        grid, exchanges = _build(config, n_peers, seed, f"ab4-{all_levels}")
        total_refs = grid.total_routing_refs()
        success, messages = _measure_search(
            grid,
            p_online=p_online,
            key_length=maxl - 1,
            n_searches=n_searches,
            seed=seed,
            tag=f"ab4-{all_levels}",
        )
        rows.append(
            [
                "all shared levels" if all_levels else "paper (level lc only)",
                exchanges,
                total_refs / n_peers,
                success,
                messages,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_ref_exchange",
        title="AB4: reference exchange at all levels vs. deepest level only",
        headers=["variant", "e", "refs per peer", "search success", "avg messages"],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "p_online": p_online,
            "n_searches": n_searches,
            "seed": seed,
        },
        notes=(
            "Exchanging at every shared level refreshes shallow reference "
            "sets continuously; expected to densify routing state and raise "
            "success under churn for comparable construction cost."
        ),
    )


# -- AB5: data-driven splitting ---------------------------------------------------------


def run_adaptive_split(
    *,
    n_peers: int = 1024,
    items_per_peer: int = 8,
    key_length: int = 16,
    zipf_exponent: float = 1.0,
    uniform_maxl: int = 7,
    adaptive_maxl: int = 16,
    split_min_items: int = 4,
    meetings_per_peer: int = 80,
    seed: int = 15,
) -> ExperimentResult:
    """AB5: fixed-depth vs. data-driven splitting under Zipf-skewed data.

    Every peer starts holding the index entries for its own items; during
    construction the exchange algorithm redistributes them along with the
    responsibility splits.  The fixed-depth baseline splits every region
    to ``uniform_maxl``; the adaptive variant splits only while a region
    holds at least ``split_min_items`` entries (safety bound
    ``adaptive_maxl``), as §3 hints.
    """
    rows: list[list[object]] = []
    for label, config in (
        (
            "fixed depth",
            PGridConfig(
                maxl=uniform_maxl, refmax=3, recmax=2, recursion_fanout=2
            ),
        ),
        (
            "data-driven",
            PGridConfig(
                maxl=adaptive_maxl,
                refmax=3,
                recmax=2,
                recursion_fanout=2,
                split_min_items=split_min_items,
            ),
        ),
    ):
        grid = PGrid(config, rng=rngmod.derive(seed, f"ab5-{label}"))
        grid.add_peers(n_peers)
        workload = ZipfKeyWorkload(
            key_length,
            rngmod.derive(seed, "ab5-items"),
            exponent=zipf_exponent,
        )
        for peer in grid.peers():
            for key in workload.keys(items_per_peer):
                peer.store.add_ref(DataRef(key=key, holder=peer.address))
        GridBuilder(grid).build(
            threshold_fraction=1.0,
            max_meetings=meetings_per_peer * n_peers,
        )
        storage = [peer.store.ref_count for peer in grid.peers()]
        depths = [peer.depth for peer in grid.peers()]
        # How well does depth track data density?  Split peers by whether
        # their region is in the popular half of the key space (first bit
        # 0 under Zipf ranking).
        dense = [p.depth for p in grid.peers() if p.path.startswith("0")]
        sparse = [p.depth for p in grid.peers() if p.path.startswith("1")]
        rows.append(
            [
                label,
                sum(depths) / len(depths),
                (sum(dense) / len(dense)) if dense else 0.0,
                (sum(sparse) / len(sparse)) if sparse else 0.0,
                gini(storage),
                max(storage),
                sum(storage) / len(storage),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_adaptive_split",
        title="AB5: fixed-depth vs. data-driven splitting under Zipf keys",
        headers=[
            "variant",
            "avg depth",
            "avg depth (dense half)",
            "avg depth (sparse half)",
            "storage gini",
            "max refs/peer",
            "mean refs/peer",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "items_per_peer": items_per_peer,
            "key_length": key_length,
            "zipf_exponent": zipf_exponent,
            "uniform_maxl": uniform_maxl,
            "adaptive_maxl": adaptive_maxl,
            "split_min_items": split_min_items,
            "meetings_per_peer": meetings_per_peer,
            "seed": seed,
        },
        notes=(
            "Expected shape: the data-driven variant splits the dense half "
            "of the key space deeper than the sparse half and yields a "
            "more balanced per-peer index load (lower gini / max) than the "
            "fixed-depth baseline."
        ),
    )


# -- AB6: membership churn with and without repair ----------------------------------------


def run_membership_churn(
    *,
    n_peers: int = 512,
    maxl: int = 6,
    refmax: int = 2,
    replace_fraction: float = 0.5,
    n_searches: int = 1500,
    seed: int = 16,
) -> ExperimentResult:
    """AB6: search success before/after replacing peers, with repair.

    After building, ``replace_fraction`` of the population crash-fails and
    the same number of newcomers join through random bootstraps.  Success
    is measured (everyone online, so losses are purely structural:
    dangling references and shallow newcomers), then a repair sweep runs
    and success is measured again.
    """
    if not 0.0 < replace_fraction < 1.0:
        raise ValueError(
            f"replace_fraction must be in (0, 1), got {replace_fraction}"
        )
    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=rngmod.derive(seed, "ab6"))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(max_exchanges=4_000_000)
    membership = MembershipEngine(grid)
    engine = membership.search

    def success_rate(tag: str) -> float:
        keys = UniformKeyWorkload(maxl - 1, rngmod.derive(seed, f"ab6-k-{tag}"))
        starts = rngmod.derive(seed, f"ab6-s-{tag}")
        addresses = grid.addresses()
        hits = 0
        for _ in range(n_searches):
            result = engine.query_from(starts.choice(addresses), keys.next_key())
            hits += int(result.found)
        return hits / n_searches

    rows: list[list[object]] = []
    rows.append(["intact grid", len(grid), success_rate("before"), 0])

    churn_rng = rngmod.derive(seed, "ab6-churn")
    victims = churn_rng.sample(grid.addresses(), int(replace_fraction * n_peers))
    for victim in victims:
        membership.fail(victim)
    join_messages = 0
    for _ in victims:
        bootstrap = churn_rng.choice(grid.addresses())
        report = membership.join(bootstrap)
        join_messages += report.exchanges
    rows.append(
        [
            f"after replacing {replace_fraction:.0%}",
            len(grid),
            success_rate("after-churn"),
            join_messages,
        ]
    )

    repair_messages = sum(r.messages for r in membership.repair_all())
    rows.append(
        ["after repair sweep", len(grid), success_rate("after-repair"), repair_messages]
    )
    return ExperimentResult(
        experiment_id="ablation_membership_churn",
        title="AB6: membership churn and reference repair",
        headers=["state", "peers", "search success", "messages spent"],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "replace_fraction": replace_fraction,
            "n_searches": n_searches,
            "seed": seed,
        },
        notes=(
            "Expected shape: success dips after mass replacement (dangling "
            "references, shallow newcomers) and recovers after the repair "
            "sweep, approaching the intact grid's level."
        ),
    )


# -- AB7: construction under availability (time-driven) ----------------------------------


def run_construction_under_churn(
    *,
    n_peers: int = 400,
    maxl: int = 5,
    refmax: int = 2,
    probabilities: Sequence[float] = (1.0, 0.7, 0.5, 0.3),
    meeting_rate_per_peer: float = 1.0,
    duration: float = 120.0,
    epoch_length: float = 1.0,
    seed: int = 18,
) -> ExperimentResult:
    """AB7: how availability slows self-organization.

    Construction runs as a Poisson meeting process over virtual time while
    a session-churn model keeps only a fraction of the population online;
    meetings with an offline endpoint never happen.  The paper's
    round-based simulations cannot express this — the event kernel
    (:mod:`repro.sim.events`) can.
    """
    from repro.sim.churn import SessionChurn
    from repro.sim.events import run_timed_construction

    rows: list[list[object]] = []
    for p_online in probabilities:
        config = PGridConfig(
            maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2
        )
        grid = PGrid(config, rng=rngmod.derive(seed, f"ab7-{p_online}"))
        grid.add_peers(n_peers)
        churn = (
            None
            if p_online >= 1.0
            else SessionChurn(
                p_online,
                rngmod.derive(seed, f"ab7-churn-{p_online}"),
                grid.addresses(),
            )
        )
        report = run_timed_construction(
            grid,
            meeting_rate=meeting_rate_per_peer * n_peers,
            duration=duration,
            churn=churn,
            epoch_length=epoch_length,
            rng=rngmod.derive(seed, f"ab7-meet-{p_online}"),
        )
        rows.append(
            [
                p_online,
                report.meetings,
                report.exchanges,
                report.average_depth,
                report.average_depth / maxl,
                report.converged,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_construction_churn",
        title=(
            f"AB7: construction progress vs. availability "
            f"(N={n_peers}, maxl={maxl}, duration={duration:g})"
        ),
        headers=[
            "p_online",
            "meetings",
            "exchanges",
            "avg depth",
            "depth fraction",
            "converged",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "probabilities": list(probabilities),
            "meeting_rate_per_peer": meeting_rate_per_peer,
            "duration": duration,
            "epoch_length": epoch_length,
            "seed": seed,
        },
        notes=(
            "Expected shape: at a fixed virtual duration, the achieved "
            "average depth falls monotonically as availability drops — "
            "offline endpoints waste meeting arrivals (roughly a p^2 "
            "thinning) and case-4 recursion finds fewer live partners."
        ),
    )


# -- AB8: query-adaptive shortcut cache -----------------------------------------------


def run_shortcut_cache(
    *,
    n_peers: int = 1024,
    maxl: int = 7,
    refmax: int = 5,
    p_online: float = 0.5,
    n_queries: int = 6000,
    query_key_length: int | None = None,
    zipf_exponent: float = 1.2,
    cache_capacity: int = 64,
    n_initiators: int = 16,
    seed: int = 19,
) -> ExperimentResult:
    """AB8: does remembering responders pay off on skewed query streams?

    Each peer keeps a small LRU of (query -> last responder).  On a Zipf
    query stream the popular keys repeat at the same initiators often
    enough that most searches collapse to a single direct contact; on a
    uniform stream the cache barely hits.  Message counts include failed
    contact attempts being retried by the fallback search.
    """
    from repro.core.shortcuts import ShortcutSearchEngine

    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    grid, _exchanges = _build(config, n_peers, seed, "ab8")
    # Query keys deeper than the trie so the *key space* is much larger
    # than the cache: a uniform stream then almost never repeats, while a
    # Zipf stream hammers the same popular keys.
    key_length = query_key_length if query_key_length is not None else maxl + 3
    rows: list[list[object]] = []
    for workload_label, exponent in (("uniform", 0.0), (f"zipf({zipf_exponent})", zipf_exponent)):
        for cached in (False, True):
            grid.online_oracle = BernoulliChurn(
                p_online, rngmod.derive(seed, f"ab8-churn-{workload_label}-{cached}")
            )
            plain = SearchEngine(grid)
            engine = (
                ShortcutSearchEngine(grid, search=plain, capacity=cache_capacity)
                if cached
                else plain
            )
            work_rng = rngmod.derive(seed, f"ab8-work-{workload_label}")
            workload = (
                ZipfKeyWorkload(key_length, work_rng, exponent=exponent)
                if exponent
                else UniformKeyWorkload(key_length, work_rng)
            )
            starts = rngmod.derive(seed, f"ab8-starts-{workload_label}")
            # a handful of hot initiators, as in real client populations
            initiators = starts.sample(grid.addresses(), n_initiators)
            messages = 0
            hits = 0
            for _ in range(n_queries):
                result = engine.query_from(
                    starts.choice(initiators), workload.next_key()
                )
                messages += result.messages
                hits += int(result.found)
            hit_rate = (
                engine.stats.hit_rate if cached else 0.0  # type: ignore[union-attr]
            )
            rows.append(
                [
                    workload_label,
                    "shortcut cache" if cached else "plain",
                    hits / n_queries,
                    messages / n_queries,
                    hit_rate,
                ]
            )
    return ExperimentResult(
        experiment_id="ablation_shortcut_cache",
        title=(
            f"AB8: shortcut caching under skewed queries "
            f"(N={n_peers}, {p_online:.0%} online)"
        ),
        headers=[
            "query workload",
            "engine",
            "success rate",
            "avg messages",
            "cache hit rate",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "p_online": p_online,
            "n_queries": n_queries,
            "zipf_exponent": zipf_exponent,
            "cache_capacity": cache_capacity,
            "n_initiators": n_initiators,
            "query_key_length": key_length,
            "seed": seed,
        },
        notes=(
            "Expected shape: on Zipf queries the cache converts most "
            "searches into one direct contact (high hit rate, much lower "
            "average messages) without hurting success; on uniform queries "
            "the cache is nearly useless."
        ),
    )


# -- AB9: native k-ary trie vs. binary reduction for text ---------------------------------


def run_kary_vs_binary(
    *,
    n_peers: int = 2500,
    n_words: int = 400,
    n_lookups: int = 400,
    chars_deep: int = 2,
    binary_refmax: int = 5,
    kary_refmax: int = 3,
    kary_populate_meetings_per_peer: int = 12,
    seed: int = 20,
) -> ExperimentResult:
    """AB9: §6's two roads to text search, head to head.

    The same word corpus is indexed twice: once on a binary P-Grid via the
    order/prefix-preserving 5-bit-per-character encoding, once on a native
    27-ary grid (one character per trie level).  Both tries are
    ``chars_deep`` characters deep (``5 * chars_deep`` binary levels), the
    corpus is seeded identically, and the same lookup stream runs against
    both.  Expected trade-off: the k-ary trie resolves lookups in fewer
    messages (one hop per character instead of up to five), but pays for
    it with far more routing state per peer (k − 1 sibling sets per level)
    and a costlier construction.
    """
    from repro.kary import (
        KaryGrid,
        KaryItem,
        KarySearchEngine,
        KeySpace,
        build_kary_grid,
    )
    from repro.text.encoding import TextEncoder

    encoder = TextEncoder()
    word_rng = rngmod.derive(seed, "ab9-words")
    words = [
        "".join(
            word_rng.choice("abcdefghijklmnopqrstuvwxyz")
            for _ in range(word_rng.randint(3, 8))
        )
        for _ in range(n_words)
    ]
    lookup_rng = rngmod.derive(seed, "ab9-lookups")
    lookups = [lookup_rng.choice(words) for _ in range(n_lookups)]

    rows: list[list[object]] = []

    # -- binary reduction ------------------------------------------------------
    binary_maxl = encoder.bits_per_char * chars_deep
    config = PGridConfig(
        maxl=binary_maxl, refmax=binary_refmax, recmax=2, recursion_fanout=2
    )
    grid = PGrid(config, rng=rngmod.derive(seed, "ab9-binary"))
    grid.add_peers(n_peers)
    report = GridBuilder(grid).build(
        threshold_fraction=0.9, max_exchanges=2_000_000
    )
    from repro.core.storage import DataItem

    grid.seed_index(
        [
            (
                DataItem(
                    key=encoder.encode_truncated(word, binary_maxl),
                    value=word,
                ),
                index % n_peers,
            )
            for index, word in enumerate(words)
        ]
    )
    engine = SearchEngine(grid)
    starts = rngmod.derive(seed, "ab9-binary-starts")
    addresses = grid.addresses()
    hits = 0
    messages = 0
    for word in lookups:
        result = engine.query_from(
            starts.choice(addresses),
            encoder.encode_truncated(word, binary_maxl),
        )
        hits += int(result.found)
        messages += result.messages
    rows.append(
        [
            "binary reduction",
            binary_maxl,
            report.exchanges,
            grid.total_routing_refs() / n_peers,
            hits / n_lookups,
            messages / n_lookups,
        ]
    )

    # -- native k-ary ---------------------------------------------------------------
    kary = KaryGrid(
        KeySpace(),
        maxl=chars_deep,
        refmax=kary_refmax,
        recmax=1,
        rng=rngmod.derive(seed, "ab9-kary"),
    )
    kary.add_peers(n_peers)
    kary_report = build_kary_grid(kary, threshold_fraction=0.9)
    # keep meeting after depth convergence so the k-1 sibling sets fill up
    from repro.kary import KaryExchangeEngine

    populate = KaryExchangeEngine(kary)
    kary_addresses = kary.addresses()
    for _ in range(kary_populate_meetings_per_peer * n_peers):
        a, b = kary.rng.sample(kary_addresses, 2)
        populate.meet(a, b)
    kary.seed_index(
        [
            (KaryItem(key=word[:chars_deep], value=word), index % n_peers)
            for index, word in enumerate(words)
        ]
    )
    kary_engine = KarySearchEngine(kary)
    kary_starts = rngmod.derive(seed, "ab9-kary-starts")
    kary_hits = 0
    kary_messages = 0
    for word in lookups:
        result = kary_engine.query_from(
            kary_starts.choice(kary_addresses), word[:chars_deep]
        )
        kary_hits += int(result.found)
        kary_messages += result.messages
    rows.append(
        [
            "native 27-ary",
            chars_deep,
            kary_report.exchanges + populate.calls,
            kary.total_routing_refs() / n_peers,
            kary_hits / n_lookups,
            kary_messages / n_lookups,
        ]
    )
    return ExperimentResult(
        experiment_id="ablation_kary_vs_binary",
        title=(
            f"AB9: native k-ary trie vs. binary reduction "
            f"(N={n_peers}, {n_words} words, {chars_deep} chars deep)"
        ),
        headers=[
            "approach",
            "trie depth (levels)",
            "construction exchanges",
            "routing refs/peer",
            "lookup success",
            "avg lookup messages",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "n_words": n_words,
            "n_lookups": n_lookups,
            "chars_deep": chars_deep,
            "binary_refmax": binary_refmax,
            "kary_refmax": kary_refmax,
            "kary_populate_meetings_per_peer": kary_populate_meetings_per_peer,
            "seed": seed,
        },
        notes=(
            "Expected shape: the native trie answers lookups in fewer "
            "messages (one per character vs. up to five), at the price of "
            "substantially more routing state per peer and a costlier "
            "construction — §6's 'directly support trie search structures' "
            "is a storage/latency trade, not a free win."
        ),
    )


# -- AB10: proximity-aware routing and reference selection ----------------------------------


def run_proximity(
    *,
    n_peers: int = 1024,
    maxl: int = 7,
    refmax: int = 5,
    p_online: float = 0.7,
    n_searches: int = 3000,
    seed: int = 21,
) -> ExperimentResult:
    """AB10: does topology knowledge (§6) cut search latency?

    Peers get coordinates in the unit square (Euclidean latency).  Four
    configurations: random vs. proximity reference *retention* during
    construction, crossed with random vs. nearest-first *routing* during
    search.  Message counts should barely move (the trie depth fixes the
    hop count); end-to-end latency should drop substantially once both
    levers are on.
    """
    from repro.sim.topology import (
        ProximityExchangeEngine,
        ProximitySearchEngine,
        Topology,
    )
    from repro.core.exchange import ExchangeEngine
    from repro.sim.meetings import UniformMeetings

    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    rows: list[list[object]] = []
    for retention in ("random", "proximity"):
        grid = PGrid(config, rng=rngmod.derive(seed, f"ab10-{retention}"))
        grid.add_peers(n_peers)
        topology = Topology(rngmod.derive(seed, "ab10-coords"))
        topology.place_all(grid.addresses())
        engine = (
            ProximityExchangeEngine(grid, topology)
            if retention == "proximity"
            else ExchangeEngine(grid)
        )
        GridBuilder(grid, engine=engine).build(max_exchanges=4_000_000)

        for routing in ("random", "proximity"):
            grid.online_oracle = BernoulliChurn(
                p_online,
                rngmod.derive(seed, f"ab10-churn-{retention}-{routing}"),
            )
            search = (
                ProximitySearchEngine(grid, topology)
                if routing == "proximity"
                else SearchEngine(grid, topology=topology)
            )
            keys = UniformKeyWorkload(
                maxl - 1, rngmod.derive(seed, f"ab10-keys-{retention}-{routing}")
            )
            starts = rngmod.derive(seed, f"ab10-starts-{retention}-{routing}")
            addresses = grid.addresses()
            hits = 0
            messages = 0
            latency = 0.0
            for _ in range(n_searches):
                result = search.query_from(
                    starts.choice(addresses), keys.next_key()
                )
                if result.found:
                    hits += 1
                    messages += result.messages
                    latency += result.latency
            rows.append(
                [
                    retention,
                    routing,
                    hits / n_searches,
                    messages / max(1, hits),
                    latency / max(1, hits),
                ]
            )
    return ExperimentResult(
        experiment_id="ablation_proximity",
        title=(
            f"AB10: proximity reference selection & routing "
            f"(N={n_peers}, {p_online:.0%} online)"
        ),
        headers=[
            "ref retention",
            "routing",
            "search success",
            "avg messages",
            "avg latency",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "p_online": p_online,
            "n_searches": n_searches,
            "seed": seed,
        },
        notes=(
            "Expected shape: hop counts stay put (the trie fixes them) and "
            "success is unaffected, while end-to-end latency falls once "
            "references are retained and chosen by proximity — §6's "
            "'knowledge on the network topology' lever."
        ),
    )


# -- AB11: meeting schedulers -------------------------------------------------------------


def run_meeting_schedulers(
    *,
    n_peers: int = 500,
    maxl: int = 6,
    refmax: int = 2,
    bias: float = 0.8,
    seed: int = 22,
) -> ExperimentResult:
    """AB11: does *who meets whom* change the construction bill?

    The paper deliberately leaves the meeting process open ("they may meet
    randomly, because they are involved in other operations...").  This
    ablation compares three schedulers: the paper's uniform random pairs, a
    prefix-biased scheduler (meetings triggered by search traffic
    concentrate on related peers), and a round-robin sweep (every peer
    initiates once per round — bounded meeting skew).
    """
    from repro.sim.meetings import (
        BiasedMeetings,
        RoundRobinMeetings,
        UniformMeetings,
    )

    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    rows: list[list[object]] = []
    schedulers = (
        ("uniform (paper)", lambda grid: UniformMeetings(grid)),
        (f"prefix-biased ({bias:.0%})", lambda grid: BiasedMeetings(grid, bias=bias)),
        ("round-robin", lambda grid: RoundRobinMeetings(grid)),
    )
    for label, factory in schedulers:
        grid = PGrid(config, rng=rngmod.derive(seed, f"ab11-{label}"))
        grid.add_peers(n_peers)
        report = GridBuilder(grid, scheduler=factory(grid)).build(
            max_exchanges=4_000_000
        )
        rows.append(
            [
                label,
                report.converged,
                report.meetings,
                report.exchanges,
                report.exchanges / n_peers,
                len(grid.audit_routing()),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_meeting_schedulers",
        title=f"AB11: meeting schedulers (N={n_peers}, maxl={maxl})",
        headers=[
            "scheduler",
            "converged",
            "meetings",
            "e",
            "e/N",
            "audit violations",
        ],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "bias": bias,
            "seed": seed,
        },
        notes=(
            "Measured shape (stable across seeds): round-robin converges "
            "with ~30% fewer exchanges than uniform — fairness of meeting "
            "opportunities matters, because convergence is gated by the "
            "laggards that uniform sampling keeps missing.  Prefix-biased "
            "meetings are ~20-40% *worse* than uniform: already-related "
            "peers mostly trigger case-4 recursion rather than fresh "
            "splits.  The invariant holds under every scheduler."
        ),
    )
