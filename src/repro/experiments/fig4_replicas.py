"""F4 (§5.2, Fig. 4): distribution of replication factors.

On the §5.2 grid, for each peer count how many peers hold exactly the same
path (its replication factor) and histogram the population.  The paper
reports a fairly uniform, unimodal distribution with mean 19.46 ≈ N / 2^maxl
— the exchange algorithm's opposite-bit splitting rule balances the trie.
"""

from __future__ import annotations

from repro.core.grid import PGrid
from repro.experiments.common import (
    ExperimentResult,
    Section52Profile,
    build_section52_grid,
    section52_profile,
)
from repro.report.hist import render_histogram

EXPERIMENT_ID = "fig4"

#: Paper: mean replication factor on the N=20000 / maxl=10 grid.
PAPER_MEAN_REPLICATION = 19.46


def run(
    profile: Section52Profile | None = None,
    *,
    grid: PGrid | None = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Reproduce Fig. 4 on the shared §5.2 grid."""
    profile = profile or section52_profile()
    grid = grid or build_section52_grid(profile, use_cache=use_cache)
    histogram = grid.replication_histogram()
    pairs = sorted(histogram.items())
    mean = grid.average_replication()
    ideal = profile.n_peers / 2**profile.maxl
    rows = [[factor, count] for factor, count in pairs]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Replica distribution (N={profile.n_peers}, maxl={profile.maxl}, "
            f"refmax={profile.refmax})"
        ),
        headers=["replication factor", "peers"],
        rows=rows,
        config={
            "profile": profile.name,
            "n_peers": profile.n_peers,
            "maxl": profile.maxl,
            "refmax": profile.refmax,
            "mean_replication": mean,
            "ideal_mean": ideal,
            "paper_mean_replication": PAPER_MEAN_REPLICATION,
            "average_path_length": grid.average_path_length(),
        },
        notes=(
            f"mean replication {mean:.2f} (uniform ideal N/2^maxl = "
            f"{ideal:.2f}; paper reports {PAPER_MEAN_REPLICATION} at its "
            "scale). Expected shape: unimodal mass around the ideal mean."
        ),
        extra_text=render_histogram(
            pairs,
            title="Fig. 4 — peers per replication factor",
            value_label="replication factor",
            count_label="peers",
        ),
    )
